// alpha_inspect -- decode and pretty-print an ALPHA packet from hex.
//
//   $ alpha_inspect --hex 0101000000010000000701...
//   $ some_capture | alpha_inspect --stdin
#include <cstdio>
#include <iostream>
#include <string>

#include "flags.hpp"
#include "wire/packets.hpp"

using namespace alpha;

namespace {

const char* type_name(wire::PacketType t) {
  switch (t) {
    case wire::PacketType::kS1: return "S1 (pre-signature announcement)";
    case wire::PacketType::kA1: return "A1 (willingness + pre-(n)acks)";
    case wire::PacketType::kS2: return "S2 (payload + key disclosure)";
    case wire::PacketType::kA2: return "A2 ((n)ack disclosure)";
    case wire::PacketType::kHs1: return "HS1 (handshake request)";
    case wire::PacketType::kHs2: return "HS2 (handshake response)";
  }
  return "?";
}

const char* mode_name(wire::Mode m) {
  switch (m) {
    case wire::Mode::kBase: return "base";
    case wire::Mode::kCumulative: return "ALPHA-C";
    case wire::Mode::kMerkle: return "ALPHA-M";
    case wire::Mode::kCumulativeMerkle: return "ALPHA-C+M";
  }
  return "?";
}

void print_digest(const char* label, const crypto::Digest& d) {
  std::printf("  %-18s %s (%zu B)\n", label, d.hex().c_str(), d.size());
}

struct Printer {
  void operator()(const wire::S1Packet& p) const {
    std::printf("  %-18s %s\n", "mode", mode_name(p.mode));
    std::printf("  %-18s %u\n", "chain index", p.chain_index);
    print_digest("chain element", p.chain_element);
    if (p.mode == wire::Mode::kMerkle) {
      print_digest("merkle root", p.merkle_root);
      std::printf("  %-18s %u\n", "leaf count", p.leaf_count);
    } else if (p.mode == wire::Mode::kCumulativeMerkle) {
      std::printf("  %-18s %zu roots, groups of %u, %u messages\n",
                  "merkle roots", p.merkle_roots.size(), p.group_size,
                  p.leaf_count);
      for (const auto& root : p.merkle_roots) print_digest("  root", root);
    } else {
      std::printf("  %-18s %zu\n", "pre-signatures", p.macs.size());
      for (const auto& m : p.macs) print_digest("  MAC", m);
    }
  }
  void operator()(const wire::A1Packet& p) const {
    std::printf("  %-18s %u\n", "ack chain index", p.ack_chain_index);
    print_digest("ack element", p.ack_element);
    switch (p.scheme) {
      case wire::AckScheme::kNone:
        std::printf("  %-18s unreliable (no pre-acks)\n", "scheme");
        break;
      case wire::AckScheme::kPreAck:
        std::printf("  %-18s pre-ack pairs: %zu\n", "scheme", p.pre_acks.size());
        break;
      case wire::AckScheme::kAmt:
        std::printf("  %-18s AMT over %u messages\n", "scheme",
                    p.amt_msg_count);
        print_digest("amt root", p.amt_root);
        break;
    }
  }
  void operator()(const wire::S2Packet& p) const {
    std::printf("  %-18s %s\n", "mode", mode_name(p.mode));
    std::printf("  %-18s %u\n", "chain index", p.chain_index);
    print_digest("disclosed key", p.disclosed_element);
    std::printf("  %-18s %u\n", "msg index", p.msg_index);
    if (p.path.has_value()) {
      std::printf("  %-18s leaf %u, %zu siblings ({Bc})\n", "merkle path",
                  p.path->leaf_index, p.path->siblings.size());
    }
    std::printf("  %-18s %zu B\n", "payload", p.payload.size());
  }
  void operator()(const wire::A2Packet& p) const {
    std::printf("  %-18s %s\n", "kind",
                p.kind == wire::AckKind::kAck ? "ACK" : "NACK");
    std::printf("  %-18s %u\n", "ack chain index", p.ack_chain_index);
    print_digest("disclosed key", p.disclosed_ack_element);
    std::printf("  %-18s %u\n", "msg index", p.msg_index);
    std::printf("  %-18s %zu B\n", "secret", p.secret.size());
    if (p.path.has_value()) {
      std::printf("  %-18s leaf %u, %zu siblings (AMT)\n", "merkle path",
                  p.path->leaf_index, p.path->siblings.size());
    }
  }
  void operator()(const wire::HandshakePacket& p) const {
    std::printf("  %-18s %s\n", "role",
                p.is_response ? "response (HS2)" : "request (HS1)");
    std::printf("  %-18s %s\n", "hash algo",
                std::string(crypto::to_string(p.algo)).c_str());
    std::printf("  %-18s %u\n", "chain length", p.chain_length);
    print_digest("sig anchor", p.sig_anchor);
    print_digest("ack anchor", p.ack_anchor);
    if (p.sig_alg != wire::SigAlg::kNone) {
      const char* alg = p.sig_alg == wire::SigAlg::kRsa         ? "RSA"
                        : p.sig_alg == wire::SigAlg::kDsa       ? "DSA"
                        : p.sig_alg == wire::SigAlg::kEcdsaP160 ? "ECDSA/secp160r1"
                                                                : "ECDSA/P-256";
      std::printf("  %-18s %s, key %zu B, signature %zu B\n", "protected",
                  alg, p.public_key.size(), p.signature.size());
    } else {
      std::printf("  %-18s unprotected (ephemeral anonymous identity)\n",
                  "bootstrap");
    }
  }
};

int inspect(const std::string& hex) {
  crypto::Bytes frame;
  try {
    frame = crypto::from_hex(hex);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad hex input: %s\n", e.what());
    return 2;
  }
  const auto type = wire::peek_type(frame);
  const auto hdr = wire::peek_header(frame);
  if (!type.has_value() || !hdr.has_value()) {
    std::fprintf(stderr, "not an ALPHA packet (bad version/type)\n");
    return 1;
  }
  std::printf("%s, %zu bytes\n", type_name(*type), frame.size());
  std::printf("  %-18s %u\n", "association", hdr->assoc_id);
  std::printf("  %-18s %u\n", "round seq", hdr->seq);
  const auto packet = wire::decode(frame);
  if (!packet.has_value()) {
    std::fprintf(stderr, "  body MALFORMED (would be dropped)\n");
    return 1;
  }
  std::visit(Printer{}, *packet);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags{"alpha_inspect", "decode an ALPHA packet from hex"};
  flags.define("hex", "", "packet bytes as a hex string");
  flags.define("stdin", "false", "read hex lines from stdin");
  flags.parse(argc, argv);

  if (flags.flag("stdin")) {
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      rc |= inspect(line);
      std::printf("\n");
    }
    return rc;
  }
  if (flags.str("hex").empty()) {
    flags.usage();
    return 2;
  }
  return inspect(flags.str("hex"));
}
