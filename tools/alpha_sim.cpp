// alpha_sim -- configurable ALPHA experiment runner.
//
// Sets up a linear multi-hop path of AlphaNode runtimes in the
// deterministic simulator, streams messages through the chosen protocol
// profile -- optionally over many concurrent associations between the same
// end nodes -- and prints a result table: delivery/ack counts, goodput,
// per-role hash work, relay drops, retransmits, runtime demux counters.
//
//   $ alpha_sim --hops 4 --mode cm --batch 32 --group 8 --messages 500
//               --loss 0.1 --reliable --assocs 16
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <string>

#include "core/node.hpp"
#include "core/sharded_node.hpp"
#include "flags.hpp"
#include "net/network.hpp"
#include "trace/build_info.hpp"
#include "trace/flight.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/prof.hpp"
#include "trace/spans.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace.hpp"

using namespace alpha;

namespace {

wire::Mode parse_mode(const std::string& s) {
  if (s == "base") return wire::Mode::kBase;
  if (s == "c") return wire::Mode::kCumulative;
  if (s == "m") return wire::Mode::kMerkle;
  if (s == "cm") return wire::Mode::kCumulativeMerkle;
  std::fprintf(stderr, "unknown mode '%s' (base|c|m|cm)\n", s.c_str());
  std::exit(2);
}

std::size_t platform_path_depth(const core::Config& c) {
  std::size_t leaves = c.mode == wire::Mode::kCumulativeMerkle
                           ? c.merkle_group
                           : c.batch_size;
  std::size_t depth = 0;
  while ((1u << depth) < leaves) ++depth;
  return depth;
}

crypto::HashAlgo parse_algo(const std::string& s) {
  if (s == "sha1") return crypto::HashAlgo::kSha1;
  if (s == "sha256") return crypto::HashAlgo::kSha256;
  if (s == "mmo") return crypto::HashAlgo::kMmo128;
  std::fprintf(stderr, "unknown algo '%s' (sha1|sha256|mmo)\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags{"alpha_sim", "ALPHA protocol experiment runner"};
  flags.define("hops", "3", "number of links on the path");
  flags.define("assocs", "1", "concurrent associations between the end nodes");
  flags.define("mode", "c", "protocol mode: base|c|m|cm");
  flags.define("algo", "sha1", "hash function: sha1|sha256|mmo");
  flags.define("batch", "16", "messages pre-signed per S1");
  flags.define("group", "8", "messages per Merkle root (cm mode)");
  flags.define("messages", "200", "messages to stream per association");
  flags.define("msg-size", "800", "payload bytes per message");
  flags.define("reliable", "false", "use pre-(n)acks / AMT acknowledgments");
  flags.define("loss", "0.0", "per-link frame loss rate");
  flags.define("jitter", "2", "per-link jitter (ms)");
  flags.define("latency", "5", "per-link latency (ms)");
  flags.define("bandwidth", "54000000", "link bandwidth (bit/s)");
  flags.define("mtu", "1500", "link MTU (bytes)");
  flags.define("chain", "4096", "hash-chain length");
  flags.define("max-retries", "50", "retransmit budget per round/handshake");
  flags.define("rekey", "64", "rekey threshold in chain elements (0 = off)");
  flags.define("adaptive", "false",
               "close the adaptivity loop: initiator associations run the "
               "live-telemetry mode/batch controller (--mode/--batch become "
               "the starting profile; switches land at rekey boundaries)");
  flags.define("seed", "1", "simulation seed");
  flags.define("workers", "1",
               "shard workers for the end nodes (sharded runtime; the "
               "simulator drives shards inline, so runs stay deterministic)");
  flags.define("relay-workers", "1",
               "shard workers for interior relay nodes (>1 runs relays on "
               "the sharded runtime, bindings demuxed by assoc-id hash)");
  flags.define("relay-batch", "1",
               "relay S2 verification batch size (>1 selects the batched "
               "RelayPipeline; 1 keeps the scalar RelayEngine)");
  flags.define("corrupt", "0.0", "per-link frame bit-corruption rate");
  flags.define("dup", "0.0", "per-link frame duplication rate");
  flags.define("reorder", "0.0", "per-link frame reordering rate");
  flags.define("reorder-window", "50", "max extra reorder delay (ms)");
  flags.define("burst-loss", "0.0",
               "Gilbert-Elliott bad-state loss rate (0 = off)");
  flags.define("burst-enter", "0.05", "Gilbert-Elliott good->bad rate");
  flags.define("burst-exit", "0.25", "Gilbert-Elliott bad->good rate");
  flags.define("partition", "",
               "cut the middle link: start,duration (seconds)");
  flags.define("chaos-seed", "0",
               "fault-schedule seed (0 = derive from --seed)");
  flags.define("trace", "", "write a JSONL protocol event trace to FILE");
  flags.define("flight-dir", "",
               "spill the event ring to crash-safe flight-recorder segments "
               "under DIR (alpha_inspect --flight replays them)");
  flags.define("timeline", "false", "print a per-frame timeline to stderr");
  flags.define("metrics", "false",
               "print Prometheus-style per-association metrics to stdout");
  flags.define("metrics-port", "-1",
               "serve /metrics + /healthz on 127.0.0.1:PORT (0 = ephemeral, "
               "port printed to stderr; -1 = off)");
  flags.define("serve-seconds", "0",
               "keep the telemetry endpoint up for N wall-clock seconds "
               "after the run (for scrapers)");
  flags.define("identity", "",
               "private key file (alpha_keygen) signing the handshake");
  flags.define("require-protected", "false",
               "responder rejects unsigned handshakes");
  flags.parse(argc, argv);

  const std::size_t hops = static_cast<std::size_t>(flags.num("hops"));
  const std::size_t assocs = static_cast<std::size_t>(flags.num("assocs"));
  const std::size_t messages = static_cast<std::size_t>(flags.num("messages"));
  const std::size_t msg_size = static_cast<std::size_t>(flags.num("msg-size"));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.num("seed"));
  const auto workers = static_cast<std::uint32_t>(flags.num("workers"));
  const auto relay_workers =
      static_cast<std::uint32_t>(flags.num("relay-workers"));
  const auto relay_batch = static_cast<std::size_t>(flags.num("relay-batch"));
  if (hops < 1 || assocs < 1 || workers < 1 || relay_workers < 1 ||
      relay_batch < 1) {
    std::fprintf(stderr,
                 "need --hops >= 1, --assocs >= 1, --workers >= 1, "
                 "--relay-workers >= 1 and --relay-batch >= 1\n");
    return 2;
  }

  net::Simulator sim;
  net::Network network{sim, seed};
  for (net::NodeId id = 0; id <= hops; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = static_cast<net::SimTime>(flags.num("latency")) * net::kMillisecond;
  link.jitter = static_cast<net::SimTime>(flags.num("jitter")) * net::kMillisecond;
  link.loss_rate = flags.real("loss");
  link.bandwidth_bps = static_cast<std::uint64_t>(flags.num("bandwidth"));
  link.mtu = static_cast<std::size_t>(flags.num("mtu"));
  for (net::NodeId id = 0; id < hops; ++id) network.add_link(id, id + 1, link);

  // Adversarial fault schedule, replayable via --chaos-seed.
  if (const auto chaos_seed = static_cast<std::uint64_t>(
          flags.num("chaos-seed"));
      chaos_seed != 0) {
    network.set_chaos_seed(chaos_seed);
  }
  net::FaultConfig faults;
  faults.corrupt_rate = flags.real("corrupt");
  faults.duplicate_rate = flags.real("dup");
  faults.reorder_rate = flags.real("reorder");
  faults.reorder_window =
      static_cast<net::SimTime>(flags.num("reorder-window")) *
      net::kMillisecond;
  if (flags.real("burst-loss") > 0.0) {
    net::BurstLossConfig burst;
    burst.p_enter_bad = flags.real("burst-enter");
    burst.p_exit_bad = flags.real("burst-exit");
    burst.loss_bad = flags.real("burst-loss");
    faults.burst = burst;
  }
  if (faults.any()) {
    for (net::NodeId id = 0; id < hops; ++id) {
      network.set_link_faults(id, id + 1, faults);
    }
  }
  if (const std::string partition = flags.str("partition");
      !partition.empty()) {
    double start_s = 0.0, duration_s = 0.0;
    if (std::sscanf(partition.c_str(), "%lf,%lf", &start_s, &duration_s) != 2 ||
        start_s < 0.0 || duration_s <= 0.0) {
      std::fprintf(stderr, "bad --partition '%s' (want start,duration in "
                   "seconds)\n", partition.c_str());
      return 2;
    }
    const net::NodeId cut = static_cast<net::NodeId>(hops / 2);
    network.schedule_partition(
        cut, cut + 1,
        static_cast<net::SimTime>(start_s * net::kSecond),
        static_cast<net::SimTime>(duration_s * net::kSecond));
  }

  // Typed event trace: install a ring large enough that a smoke-size chaos
  // run cannot wrap it, dump as JSONL at exit (alpha_inspect decodes it).
  // Span stitching and the live telemetry endpoint also need the ring, so
  // --metrics/--metrics-port install it too.
  std::optional<trace::Ring> trace_ring;
  const std::string trace_path = flags.str("trace");
  const std::string flight_dir = flags.str("flight-dir");
  const long metrics_port = flags.num("metrics-port");
  const long serve_seconds = flags.num("serve-seconds");
  // A flight recording embeds the metrics snapshot at finalize, so
  // --flight-dir implies the metrics plumbing.
  const bool want_metrics =
      flags.flag("metrics") || metrics_port >= 0 || !flight_dir.empty();
  if (!trace_path.empty() || want_metrics) {
    trace_ring.emplace(std::size_t{1} << 18);
    trace::install(&*trace_ring);
  }

  if (flags.flag("timeline")) {
    network.set_tracer([](const net::Network::TraceRecord& rec) {
      const char* fate = rec.fate == net::Network::FrameFate::kDelivered
                             ? (rec.corrupted ? "~>" : "->")
                         : rec.fate == net::Network::FrameFate::kLost ? "xx"
                         : rec.fate == net::Network::FrameFate::kOversize
                             ? "!mtu"
                         : rec.fate == net::Network::FrameFate::kLinkDown
                             ? "!down"
                         : rec.fate == net::Network::FrameFate::kDuplicated
                             ? "=>"
                             : "!link";
      std::fprintf(stderr, "%10.3f ms  %u %s %u  %zu B\n",
                   static_cast<double>(rec.sent_at) / 1000.0, rec.from, fate,
                   rec.to, rec.size);
    });
  }

  core::Config config;
  config.mode = parse_mode(flags.str("mode"));
  config.algo = parse_algo(flags.str("algo"));
  config.batch_size = static_cast<std::size_t>(flags.num("batch"));
  config.merkle_group = static_cast<std::size_t>(flags.num("group"));
  config.mtu_hint = link.mtu;  // keep S1/A1 control packets deliverable
  // S2 overhead: header(10)+mode(1)+index(4)+digest(1+h)+msgidx(2)+flags(1)
  // +len(2) plus a Merkle path in tree modes.
  const std::size_t s2_overhead =
      21 + crypto::digest_size(config.algo) +
      (config.uses_trees()
           ? 3 + platform_path_depth(config) *
                     (1 + crypto::digest_size(config.algo))
           : 0);
  if (msg_size + s2_overhead > link.mtu) {
    std::fprintf(stderr,
                 "warning: msg-size %zu + ALPHA overhead ~%zu exceeds the "
                 "MTU (%zu); data packets will be dropped\n",
                 msg_size, s2_overhead, link.mtu);
  }
  config.reliable = flags.flag("reliable");
  config.retransmit_on_nack = config.reliable;
  config.chain_length = static_cast<std::size_t>(flags.num("chain"));
  config.rekey_threshold = static_cast<std::size_t>(flags.num("rekey"));
  config.rto_us = 200 * net::kMillisecond;
  config.max_retries = static_cast<int>(flags.num("max-retries"));

  std::optional<core::Identity> identity;
  core::Host::Options initiator_opts, responder_opts;
  if (!flags.str("identity").empty()) {
    std::ifstream f{flags.str("identity")};
    std::string hex;
    if (!f || !(f >> hex)) {
      std::fprintf(stderr, "cannot read %s\n", flags.str("identity").c_str());
      return 1;
    }
    identity = core::Identity::deserialize_private(crypto::from_hex(hex));
    if (!identity.has_value()) {
      std::fprintf(stderr, "malformed identity key file\n");
      return 1;
    }
    initiator_opts.identity = &*identity;
  }
  responder_opts.require_protected_peer = flags.flag("require-protected");

  // One AlphaNode per path node. Node 0 runs every initiator association;
  // node `hops` accepts the inbound handshakes on demand; interior nodes
  // carry a single relay binding each and demux frames by association id.
  // The end nodes run the sharded runtime (--workers N). Over SimTransport
  // the shards are driven inline -- one thread, virtual-arrival order -- so
  // sharded runs replay bit-identically per seed. Interior relay nodes stay
  // on AlphaNode (relay state is not partitioned by association).
  std::size_t delivered = 0;
  std::size_t acked = 0;
  core::ShardedNode::Options init_opts;
  init_opts.shard.config = config;
  init_opts.shard.seed = seed + 77;
  init_opts.shard.trace_origin = 0;
  init_opts.workers = workers;
  if (flags.flag("adaptive")) {
    init_opts.shard.adaptive = core::AdaptiveController::Options{};
  }
  std::size_t failed_deliveries = 0;

  metrics::Registry registry;
  trace::SpanBuilder span_builder{want_metrics ? &registry : nullptr};
  trace::HealthMonitor health;
  // Stage profiler: the sharded runtimes are driven inline over
  // SimTransport (one thread), so the thread-local install covers every
  // shard-drain / relay-verify / chain-step site in the run.
  trace::StageProfiler profiler;
  if (want_metrics) {
    trace::export_build_info(registry);
    trace::install_profiler(&profiler);
  }
  std::map<std::uint64_t, std::uint64_t> submit_time_us;  // cookie -> t
  std::map<std::uint32_t, std::uint64_t> hs_start_us;     // assoc -> t
  const auto assoc_label = [](std::uint32_t assoc_id) {
    return "assoc=\"" + std::to_string(assoc_id) + "\"";
  };

  core::ShardedNode::Callbacks init_cbs;
  init_cbs.on_delivery = [&](std::uint32_t assoc_id, std::uint64_t cookie,
                             core::DeliveryStatus status) {
    if (status == core::DeliveryStatus::kAcked) ++acked;
    // Budget exhaustion under an adversarial schedule: the signer reports
    // the round failed instead of retransmitting forever.
    if (status == core::DeliveryStatus::kFailed) ++failed_deliveries;
    if (want_metrics) {
      if (const auto it = submit_time_us.find(cookie);
          it != submit_time_us.end()) {
        if (status == core::DeliveryStatus::kAcked) {
          registry
              .histogram("alpha_round_latency_us", assoc_label(assoc_id))
              .record(sim.now() - it->second);
        }
        submit_time_us.erase(it);
      }
    }
  };
  init_cbs.on_established = [&](std::uint32_t assoc_id) {
    if (!want_metrics) return;
    if (const auto it = hs_start_us.find(assoc_id); it != hs_start_us.end()) {
      registry.histogram("alpha_handshake_rtt_us", assoc_label(assoc_id))
          .record(sim.now() - it->second);
      hs_start_us.erase(it);
    }
  };
  core::ShardedNode initiator_node{
      std::make_unique<net::SimTransport>(network, 0), init_opts, init_cbs};

  // Interior relay nodes: the scalar AlphaNode relay by default, or -- with
  // --relay-workers/--relay-batch above 1 -- the sharded runtime with relay
  // bindings demuxed across workers by assoc-id hash and S2 verification
  // amortized by the batched RelayPipeline. Association ids are known up
  // front (1..assocs), which sharded relay bindings require.
  const bool sharded_relays = relay_workers > 1 || relay_batch > 1;
  std::vector<std::unique_ptr<core::AlphaNode>> relay_nodes;
  std::vector<std::unique_ptr<core::ShardedNode>> sharded_relay_nodes;
  std::vector<std::uint32_t> relay_assoc_ids;
  for (std::size_t a = 0; a < assocs; ++a) {
    relay_assoc_ids.push_back(static_cast<std::uint32_t>(a + 1));
  }
  core::AlphaNode::Options relay_node_opts;
  relay_node_opts.config = config;
  for (net::NodeId id = 1; id < hops; ++id) {
    if (sharded_relays) {
      core::ShardedNode::Options ropts;
      ropts.shard.config = config;
      ropts.shard.seed = seed + 100 + id;
      ropts.shard.trace_origin = static_cast<std::uint8_t>(id);
      ropts.workers = relay_workers;
      auto node = std::make_unique<core::ShardedNode>(
          std::make_unique<net::SimTransport>(network, id), ropts);
      node->add_relay(/*upstream=*/id - 1, /*downstream=*/id + 1,
                      relay_assoc_ids, relay_batch);
      sharded_relay_nodes.push_back(std::move(node));
    } else {
      relay_node_opts.trace_origin = static_cast<std::uint8_t>(id);
      auto node = std::make_unique<core::AlphaNode>(
          std::make_unique<net::SimTransport>(network, id), relay_node_opts);
      node->add_relay(/*upstream=*/id - 1, /*downstream=*/id + 1);
      relay_nodes.push_back(std::move(node));
    }
  }

  core::ShardedNode::Options resp_opts;
  resp_opts.shard.config = config;
  resp_opts.shard.seed = seed + 78;
  resp_opts.shard.accept_inbound = true;
  resp_opts.shard.trace_origin = static_cast<std::uint8_t>(hops);
  resp_opts.shard.accept_host_options = responder_opts;
  resp_opts.workers = workers;
  // Forgery oracle: every genuine payload is msg_size bytes of one repeated
  // value, so anything else that reaches the application is a forgery the
  // protocol failed to reject (e.g. a corrupted frame that still verified).
  std::size_t forged = 0;
  core::ShardedNode::Callbacks resp_cbs;
  resp_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
    bool genuine = payload.size() == msg_size && !payload.empty();
    for (std::size_t i = 1; genuine && i < payload.size(); ++i) {
      genuine = payload[i] == payload[0];
    }
    if (genuine) {
      ++delivered;
    } else {
      ++forged;
    }
  };
  core::ShardedNode responder_node{
      std::make_unique<net::SimTransport>(network,
                                          static_cast<net::NodeId>(hops)),
      resp_opts, resp_cbs};

  // One refresh = fold per-association counters from fresh snapshots into
  // the registry (plain assignments, so re-folding per scrape is
  // idempotent), stitch newly-recorded ring events into spans, and feed the
  // health monitor. Called on every scrape and once before printing.
  const auto refresh_observability = [&] {
    if (!want_metrics) return;
    const auto init = initiator_node.snapshot(/*per_assoc=*/true);
    const auto resp = responder_node.snapshot(/*per_assoc=*/true);
    std::vector<trace::AssocHealthSample> samples;
    samples.reserve(init.assocs.size());
    for (const auto& as : init.assocs) {
      const std::string labels = assoc_label(as.assoc_id);
      registry.counter("alpha_messages_submitted", labels) =
          as.signer.messages_submitted;
      registry.counter("alpha_rounds_completed", labels) =
          as.signer.rounds_completed;
      registry.counter("alpha_rounds_failed", labels) =
          as.signer.rounds_failed;
      registry.counter("alpha_rekeys_started", labels) = as.rekeys_started;
      registry.counter("alpha_hs_retransmits", labels) = as.hs_retransmits;
      registry.counter("alpha_corrupt_frames", labels) = as.corrupt_frames;
      registry.counter("alpha_replayed_handshakes", labels) =
          as.replayed_handshakes;
      registry.counter("alpha_duplicate_handshakes", labels) =
          as.duplicate_handshakes;
      registry.counter("alpha_assoc_failed", labels) = as.failed ? 1 : 0;
      // Adaptivity loop (zero without --adaptive): policy activity, the
      // applied profile, and the controller's live loss estimate.
      registry.counter("alpha_adapt_evaluations", labels) =
          as.adapt_evaluations;
      registry.counter("alpha_adapt_switches", labels) = as.adapt_switches;
      registry.counter("alpha_adapt_reconfigs_applied", labels) =
          as.reconfigs_applied;
      registry.counter("alpha_adapt_profile", labels) = as.adapt_profile;
      registry.counter("alpha_adapt_batch", labels) = as.batch;
      registry.counter("alpha_adapt_loss_permille", labels) =
          static_cast<std::uint64_t>(as.adapt_loss_ewma * 1000.0);
      trace::AssocHealthSample sample;
      sample.assoc_id = as.assoc_id;
      sample.established = as.established;
      sample.failed = as.failed;
      sample.round_active = as.round_active;
      sample.round_seq = as.round_seq;
      sample.round_retries = as.round_retries;
      sample.rekeys_started = as.rekeys_started;
      samples.push_back(sample);
    }
    for (const auto& as : resp.assocs) {
      const std::string labels = assoc_label(as.assoc_id);
      registry.counter("alpha_messages_delivered", labels) =
          as.verifier.messages_delivered;
      registry.counter("alpha_invalid_packets", labels) =
          as.verifier.invalid_packets;
      registry.counter("alpha_duplicate_packets", labels) =
          as.verifier.duplicate_packets;
    }
    // Sharded-runtime queue instrumentation: live per-shard depths and
    // overflow counters for both end nodes (assignment per scrape, so the
    // export tracks the rings rather than accumulating).
    const auto fold_shards = [&](const char* node,
                                 const std::vector<core::ShardedNode::ShardStats>&
                                     stats) {
      for (const auto& ss : stats) {
        const std::string labels = "node=\"" + std::string(node) +
                                   "\",shard=\"" + std::to_string(ss.shard) +
                                   "\"";
        registry.counter("alpha_shard_in_depth", labels) = ss.in_depth;
        registry.counter("alpha_shard_out_depth", labels) = ss.out_depth;
        registry.counter("alpha_shard_in_overflows", labels) =
            ss.in_overflows;
        registry.counter("alpha_shard_out_overflows", labels) =
            ss.out_overflows;
        registry.counter("alpha_shard_frames_routed", labels) =
            ss.frames_routed;
        registry.counter("alpha_shard_relay_pending", labels) =
            ss.relay_pending;
      }
    };
    fold_shards("initiator", initiator_node.shard_stats());
    fold_shards("responder", responder_node.shard_stats());
    // Relay attribution: forwarded/extracted totals plus every drop broken
    // out by taxonomy reason, per relay node (assignment per scrape, so
    // re-folding is idempotent). Sharded relays also export their per-shard
    // queue depths through fold_shards above.
    const auto fold_relay = [&](std::size_t idx, const core::RelayStats& rs) {
      const std::string labels = "relay=\"" + std::to_string(idx) + "\"";
      registry.counter("alpha_relay_forwarded", labels) = rs.forwarded;
      registry.counter("alpha_relay_extracted", labels) =
          rs.messages_extracted;
      registry.counter("alpha_relay_acks_verified", labels) =
          rs.acks_verified;
      for (std::size_t r = 1; r < trace::kDropReasonCount; ++r) {
        const std::uint64_t count = rs.dropped_by_reason[r];
        if (count == 0) continue;
        registry.counter(
            "alpha_relay_dropped",
            labels + ",reason=\"" +
                trace::to_string(static_cast<trace::DropReason>(r)) + "\"") =
            count;
      }
    };
    for (std::size_t i = 0; i < relay_nodes.size(); ++i) {
      fold_relay(i, relay_nodes[i]->snapshot().relay);
    }
    for (std::size_t i = 0; i < sharded_relay_nodes.size(); ++i) {
      fold_relay(i, sharded_relay_nodes[i]->snapshot().relay);
      fold_shards(("relay" + std::to_string(i)).c_str(),
                  sharded_relay_nodes[i]->shard_stats());
    }
    trace::export_prof(profiler, registry);
    if (trace_ring.has_value()) span_builder.ingest_new(*trace_ring);
    health.observe(samples, sim.now(),
                   trace_ring.has_value() ? trace_ring->dropped() : 0);
  };

  std::optional<trace::TelemetryServer> telemetry;
  if (metrics_port >= 0) {
    trace::TelemetryServer::Options topts;
    topts.port = static_cast<std::uint16_t>(metrics_port);
    telemetry.emplace(
        topts,
        [&] {
          refresh_observability();
          return registry.render_prometheus();
        },
        [&] {
          refresh_observability();
          return std::pair<int, std::string>{health.http_status(),
                                             health.healthz_json()};
        });
    if (!telemetry->ok()) {
      std::fprintf(stderr, "telemetry: cannot bind 127.0.0.1:%ld\n",
                   metrics_port);
      return 1;
    }
    // Scrapers parse this line to find an ephemeral port (--metrics-port 0).
    std::fprintf(stderr, "telemetry: serving on 127.0.0.1:%u\n",
                 telemetry->port());
    std::fflush(stderr);
  }

  // Flight recorder: crash-safe spill of the same event ring. Installed
  // with the fatal-signal handlers so even a SIGSEGV mid-run leaves a
  // replayable recording behind (alpha_inspect --flight DIR).
  std::optional<trace::FlightRecorder> flight;
  if (!flight_dir.empty()) {
    trace::FlightOptions fopts;
    fopts.dir = flight_dir;
    fopts.node_id = 0;
    fopts.clock_origin_us = sim.now();
    fopts.config_digest = trace::fnv1a64(
        "mode=" + flags.str("mode") + " algo=" + flags.str("algo") +
        " batch=" + std::to_string(config.batch_size) +
        " reliable=" + (config.reliable ? "1" : "0") +
        " hops=" + std::to_string(hops) + " assocs=" + std::to_string(assocs) +
        " seed=" + std::to_string(seed));
    fopts.metrics_snapshot = [&] {
      refresh_observability();
      return registry.render_prometheus();
    };
    flight.emplace(fopts, &*trace_ring);
    if (!flight->ok()) {
      std::fprintf(stderr, "%s\n", flight->error().c_str());
      return 1;
    }
    trace::install_crash_handlers();
  }

  for (std::size_t a = 0; a < assocs; ++a) {
    const auto assoc_id = static_cast<std::uint32_t>(a + 1);
    initiator_node.add_initiator(assoc_id, /*peer=*/1, config,
                                 initiator_opts);
    if (want_metrics) hs_start_us.emplace(assoc_id, sim.now());
    initiator_node.start(assoc_id);
  }
  sim.run_until(30 * net::kSecond);
  // Under an adversarial schedule the handshake itself can be corrupted or
  // partitioned away; restarting replenishes the retransmit budget and
  // reissues the HS1 (same deterministic schedule per seed).
  for (int attempt = 0;
       attempt < 20 && initiator_node.established_count() < assocs;
       ++attempt) {
    const auto snap = initiator_node.snapshot(/*per_assoc=*/true);
    for (const auto& as : snap.assocs) {
      if (!as.established) initiator_node.start(as.assoc_id);
    }
    sim.run_until(sim.now() + 10 * net::kSecond);
  }
  if (initiator_node.established_count() != assocs) {
    std::fprintf(stderr,
                 flags.flag("require-protected") && !identity.has_value()
                     ? "handshake failed: --require-protected needs the "
                       "initiator to sign (--identity)\n"
                     : "handshake failed (loss too high?): %zu/%zu "
                       "associations established\n",
                 initiator_node.established_count(), assocs);
    return 1;
  }

  const std::size_t total = messages * assocs;
  const net::SimTime t0 = sim.now();
  for (std::size_t i = 0; i < messages; ++i) {
    for (std::size_t a = 0; a < assocs; ++a) {
      const std::uint64_t cookie =
          initiator_node.submit(static_cast<std::uint32_t>(a + 1),
                                crypto::Bytes(msg_size,
                                              static_cast<std::uint8_t>(i)));
      if (want_metrics) submit_time_us.emplace(cookie, sim.now());
    }
  }
  net::SimTime last_progress = sim.now();
  std::size_t last_count = 0;
  while (delivered < total) {
    if (config.reliable && delivered + failed_deliveries >= total) {
      break;  // every message settled: delivered or reported failed
    }
    sim.run_until(sim.now() + net::kSecond);
    if (trace_ring.has_value() && want_metrics) {
      span_builder.ingest_new(*trace_ring);  // stitch while the ring is hot
    }
    if (flight.has_value()) flight->drain();  // spill before the ring wraps
    if (telemetry.has_value()) telemetry->poll(0);
    if (delivered != last_count) {
      last_count = delivered;
      last_progress = sim.now();
    } else if (sim.now() - last_progress > 600 * net::kSecond) {
      break;  // stalled (chain exhausted without rekey, or loss too high)
    }
  }
  const double elapsed_s = static_cast<double>(sim.now() - t0) / net::kSecond;

  // Aggregate engine statistics through the runtime snapshots.
  const auto init_snap = initiator_node.snapshot(/*per_assoc=*/true);
  const auto resp_snap = responder_node.snapshot(/*per_assoc=*/true);
  core::SignerStats s;
  for (const auto& as : init_snap.assocs) {
    s.rounds_completed += as.signer.rounds_completed;
    s.rounds_failed += as.signer.rounds_failed;
    s.s1_sent += as.signer.s1_sent;
    s.s2_sent += as.signer.s2_sent;
    s.s1_retransmits += as.signer.s1_retransmits;
    s.s2_retransmits += as.signer.s2_retransmits;
    s.hashes.signature += as.signer.hashes.total();
  }
  std::uint64_t v_invalid = 0, v_hashes = 0;
  for (const auto& as : resp_snap.assocs) {
    v_invalid += as.verifier.invalid_packets;
    v_hashes += as.verifier.hashes.total();
  }

  std::printf("== alpha_sim results ==\n");
  std::printf("profile:        mode=%s algo=%s batch=%zu reliable=%s "
              "hops=%zu assocs=%zu loss=%.2f\n",
              flags.str("mode").c_str(), flags.str("algo").c_str(),
              config.batch_size, config.reliable ? "yes" : "no", hops, assocs,
              link.loss_rate);
  std::printf("delivered:      %zu/%zu messages (%.2f s simulated)\n",
              delivered, total, elapsed_s);
  if (config.reliable) std::printf("acknowledged:   %zu/%zu\n", acked, total);
  std::printf("goodput:        %.3f Mbit/s\n",
              static_cast<double>(delivered * msg_size * 8) /
                  (elapsed_s * 1e6));
  std::printf("signer:         rounds=%llu failed=%llu S1=%llu S2=%llu "
              "retrans=%llu hash-ops=%llu\n",
              static_cast<unsigned long long>(s.rounds_completed),
              static_cast<unsigned long long>(s.rounds_failed),
              static_cast<unsigned long long>(s.s1_sent),
              static_cast<unsigned long long>(s.s2_sent),
              static_cast<unsigned long long>(s.s1_retransmits +
                                              s.s2_retransmits),
              static_cast<unsigned long long>(s.hashes.signature));
  std::printf("verifier:       delivered=%llu invalid=%llu hash-ops=%llu\n",
              static_cast<unsigned long long>(resp_snap.messages_delivered),
              static_cast<unsigned long long>(v_invalid),
              static_cast<unsigned long long>(v_hashes));
  for (std::size_t i = 0; i < relay_nodes.size(); ++i) {
    const auto rs = relay_nodes[i]->snapshot();
    std::printf("relay %zu:        forwarded=%llu verified=%llu dropped=%llu "
                "hash-ops=%llu buffered=%zuB\n",
                i, static_cast<unsigned long long>(rs.relay.forwarded),
                static_cast<unsigned long long>(rs.relay.messages_extracted),
                static_cast<unsigned long long>(rs.relay.dropped_invalid +
                                                rs.relay.dropped_unsolicited),
                static_cast<unsigned long long>(rs.relay.hashes.total()),
                relay_nodes[i]->relay(0).buffered_bytes());
  }
  for (std::size_t i = 0; i < sharded_relay_nodes.size(); ++i) {
    const auto rs = sharded_relay_nodes[i]->snapshot();
    std::size_t pending = 0;
    for (const auto& ss : sharded_relay_nodes[i]->shard_stats()) {
      pending += ss.relay_pending;
    }
    // No wall-clock figures here: the default results table must diff
    // bit-identical across same-seed runs (verify_batch_ns is exported as
    // a histogram under --metrics instead).
    std::printf("relay %zu:        forwarded=%llu verified=%llu dropped=%llu "
                "hash-ops=%llu workers=%u batch=%zu pending=%zu\n",
                i, static_cast<unsigned long long>(rs.relay.forwarded),
                static_cast<unsigned long long>(rs.relay.messages_extracted),
                static_cast<unsigned long long>(rs.relay.dropped_invalid +
                                                rs.relay.dropped_unsolicited),
                static_cast<unsigned long long>(rs.relay.hashes.total()),
                relay_workers, relay_batch, pending);
  }
  std::printf("runtime:        frames in=%llu out=%llu demux-misses=%llu "
              "timer-fires=%llu accepted-handshakes=%llu\n",
              static_cast<unsigned long long>(init_snap.frames_in),
              static_cast<unsigned long long>(init_snap.frames_out),
              static_cast<unsigned long long>(init_snap.demux_misses),
              static_cast<unsigned long long>(init_snap.timer_fires),
              static_cast<unsigned long long>(resp_snap.accepted_handshakes));
  if (workers > 1) {
    std::uint64_t routed = 0, overflows = 0;
    for (const auto& ss : initiator_node.shard_stats()) {
      routed += ss.frames_routed;
      overflows += ss.in_overflows + ss.out_overflows;
    }
    for (const auto& ss : responder_node.shard_stats()) {
      routed += ss.frames_routed;
      overflows += ss.in_overflows + ss.out_overflows;
    }
    std::printf("shards:         workers=%u routed=%llu ring-overflows=%llu\n",
                workers, static_cast<unsigned long long>(routed),
                static_cast<unsigned long long>(overflows));
  }
  if (flags.flag("adaptive")) {
    // Counters only, like the rest of the table: same-seed runs must diff
    // bit-identical. The final profile is what the controller converged on;
    // with several associations each runs its own ladder, so show the rung
    // span alongside the first association's landing profile.
    std::uint64_t evals = 0, switches = 0, reconfigs = 0;
    std::size_t rung_lo = std::numeric_limits<std::size_t>::max();
    std::size_t rung_hi = 0;
    for (const auto& as : init_snap.assocs) {
      evals += as.adapt_evaluations;
      switches += as.adapt_switches;
      reconfigs += as.reconfigs_applied;
      rung_lo = std::min(rung_lo, as.adapt_profile);
      rung_hi = std::max(rung_hi, as.adapt_profile);
    }
    const char* final_mode = "?";
    std::size_t final_batch = 0;
    if (!init_snap.assocs.empty()) {
      switch (init_snap.assocs.front().mode) {
        case core::Mode::kBase: final_mode = "base"; break;
        case core::Mode::kCumulative: final_mode = "C"; break;
        case core::Mode::kMerkle: final_mode = "M"; break;
        case core::Mode::kCumulativeMerkle: final_mode = "C+M"; break;
      }
      final_batch = init_snap.assocs.front().batch;
    }
    std::printf("adaptivity:     evaluations=%llu switches=%llu "
                "reconfigs=%llu final=%s/%zu rungs=%zu..%zu\n",
                static_cast<unsigned long long>(evals),
                static_cast<unsigned long long>(switches),
                static_cast<unsigned long long>(reconfigs), final_mode,
                final_batch, rung_lo == std::numeric_limits<std::size_t>::max()
                                 ? std::size_t{0}
                                 : rung_lo,
                rung_hi);
  }
  const auto total_stats = network.total_stats();
  std::printf("network:        frames=%llu bytes=%llu lost=%llu\n",
              static_cast<unsigned long long>(total_stats.frames_sent),
              static_cast<unsigned long long>(total_stats.bytes_delivered),
              static_cast<unsigned long long>(total_stats.frames_lost));
  if (faults.any() || !flags.str("partition").empty()) {
    std::uint64_t failed_assocs = init_snap.failed + resp_snap.failed;
    std::printf("chaos:          corrupted=%llu duplicated=%llu "
                "reordered=%llu link-down=%llu rejected=%llu "
                "hs-replays=%llu forged-accepted=%zu failed-assocs=%llu\n",
                static_cast<unsigned long long>(total_stats.frames_corrupted),
                static_cast<unsigned long long>(total_stats.frames_duplicated),
                static_cast<unsigned long long>(total_stats.frames_reordered),
                static_cast<unsigned long long>(total_stats.frames_link_down),
                static_cast<unsigned long long>(init_snap.corrupt_frames +
                                                resp_snap.corrupt_frames +
                                                v_invalid),
                static_cast<unsigned long long>(
                    init_snap.replayed_handshakes +
                    resp_snap.replayed_handshakes),
                forged, static_cast<unsigned long long>(failed_assocs));
  }
  if (want_metrics) {
    refresh_observability();
    // One-shot distribution metrics that only make sense after the run.
    for (const auto& as : init_snap.assocs) {
      const std::string labels = assoc_label(as.assoc_id);
      const std::uint64_t packets = as.signer.s1_sent + as.signer.s2_sent;
      if (packets > 0) {
        registry.histogram("alpha_signer_hash_ops_per_packet", labels)
            .record(as.signer.hashes.total() / packets);
      }
      registry.histogram("alpha_retransmits", labels)
          .record(as.signer.s1_retransmits + as.signer.s2_retransmits);
    }
    for (const auto& as : resp_snap.assocs) {
      const std::string labels = assoc_label(as.assoc_id);
      const std::uint64_t packets =
          as.verifier.s1_accepted + as.verifier.s2_accepted;
      if (packets > 0) {
        registry.histogram("alpha_verifier_hash_ops_per_packet", labels)
            .record(as.verifier.hashes.total() / packets);
      }
    }
    // Relay verify-batch latency is cumulative over the run, so merge it
    // once here rather than per scrape (merging in the refresh would
    // double-count samples on every poll).
    for (std::size_t i = 0; i < sharded_relay_nodes.size(); ++i) {
      const auto rs = sharded_relay_nodes[i]->snapshot();
      if (rs.relay.verify_batch_ns.count() > 0) {
        registry
            .histogram("alpha_relay_verify_batch_ns",
                       "relay=\"" + std::to_string(i) + "\"")
            .merge(rs.relay.verify_batch_ns);
      }
    }
    if (span_builder.min_delivery_latency_us() != trace::SpanBuilder::kUnset) {
      std::printf("spans:          rounds=%llu failed=%llu deliveries=%llu "
                  "min-latency=%.3f ms\n",
                  static_cast<unsigned long long>(
                      span_builder.rounds_complete()),
                  static_cast<unsigned long long>(span_builder.rounds_failed()),
                  static_cast<unsigned long long>(span_builder.deliveries()),
                  static_cast<double>(
                      span_builder.min_delivery_latency_us()) / 1000.0);
    }
    std::printf("health:         %s\n", health.healthz_json().c_str());
    if (flags.flag("metrics")) {
      std::printf("== metrics ==\n");
      registry.write_prometheus(stdout);
    }
  }
  // Keep the endpoint alive for scrapers that attach after the run
  // (wall-clock time; the simulation is already over).
  if (telemetry.has_value() && serve_seconds > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(serve_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      telemetry->poll(100);
    }
  }
  if (flight.has_value()) {
    flight->finalize();
    std::fprintf(stderr, "flight: %llu events in %llu segment(s) -> %s\n",
                 static_cast<unsigned long long>(flight->events_written()),
                 static_cast<unsigned long long>(flight->segments_opened()),
                 flight_dir.c_str());
  }
  if (trace_ring.has_value()) {
    trace::install(nullptr);
    trace::install_profiler(nullptr);
    // The ring also serves --metrics/--flight-dir runs with no JSONL sink;
    // only write (and only fail) when a path was actually requested.
    if (!trace_path.empty()) {
      if (!trace::write_jsonl(*trace_ring, trace_path)) {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "trace: %zu events (%llu recorded) -> %s\n",
                   trace_ring->size(),
                   static_cast<unsigned long long>(trace_ring->total()),
                   trace_path.c_str());
    }
  }
  if (forged > 0) {
    std::fprintf(stderr, "FORGERY: %zu unauthentic payloads accepted\n",
                 forged);
    return 1;
  }
  return delivered == total ? 0 : 1;
}
