// Minimal command-line flag parsing for the tools.
//
// Supports --name value and --name=value, plus boolean switches. Unknown
// flags abort with usage; tools declare flags up front so --help is
// generated automatically.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace alpha::tools {

class Flags {
 public:
  Flags(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void define(const std::string& name, const std::string& default_value,
              const std::string& help) {
    values_[name] = default_value;
    help_.emplace_back(name, default_value, help);
  }

  /// Parses argv; on --help or errors prints usage and exits.
  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage();
        std::exit(0);
      }
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        usage();
        std::exit(2);
      }
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else if (i + 1 < argc && values_.contains(arg) &&
                 values_[arg] != "false" && values_[arg] != "true") {
        value = argv[++i];
      } else {
        value = "true";  // boolean switch
      }
      if (!values_.contains(arg)) {
        std::fprintf(stderr, "unknown flag: --%s\n", arg.c_str());
        usage();
        std::exit(2);
      }
      values_[arg] = value;
    }
  }

  std::string str(const std::string& name) const { return values_.at(name); }
  long num(const std::string& name) const {
    return std::strtol(values_.at(name).c_str(), nullptr, 10);
  }
  double real(const std::string& name) const {
    return std::strtod(values_.at(name).c_str(), nullptr);
  }
  bool flag(const std::string& name) const {
    return values_.at(name) == "true";
  }

  void usage() const {
    std::printf("%s -- %s\n\nflags:\n", program_.c_str(),
                description_.c_str());
    for (const auto& [name, def, help] : help_) {
      std::printf("  --%-12s %s (default: %s)\n", name.c_str(), help.c_str(),
                  def.c_str());
    }
  }

 private:
  std::string program_;
  std::string description_;
  std::map<std::string, std::string> values_;
  std::vector<std::tuple<std::string, std::string, std::string>> help_;
};

}  // namespace alpha::tools
