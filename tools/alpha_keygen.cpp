// alpha_keygen -- generate a bootstrap identity keypair.
//
//   $ alpha_keygen --alg p256 --out node.key
//   wrote node.key (private, hex) and node.key.pub (public, hex)
//
// The private file feeds protected handshakes (core::Identity::
// deserialize_private); the .pub file is what peers/relays pin.
#include <cstdio>
#include <fstream>

#include "core/identity.hpp"
#include "flags.hpp"

using namespace alpha;

int main(int argc, char** argv) {
  tools::Flags flags{"alpha_keygen", "generate a bootstrap identity keypair"};
  flags.define("alg", "p256", "rsa | dsa | p160 | p256");
  flags.define("bits", "1024", "modulus bits (rsa only)");
  flags.define("out", "identity.key", "output file (private key, hex)");
  flags.parse(argc, argv);

  crypto::SystemRandom rng;
  const std::string alg = flags.str("alg");

  std::optional<core::Identity> id;
  if (alg == "rsa") {
    id = core::Identity::make_rsa(rng,
                                  static_cast<std::size_t>(flags.num("bits")));
  } else if (alg == "dsa") {
    std::printf("generating DSA parameters (this can take a moment)...\n");
    id = core::Identity::make_dsa(rng, 1024, 160);
  } else if (alg == "p160") {
    id = core::Identity::make_ecdsa(rng, crypto::EcCurve::secp160r1());
  } else if (alg == "p256") {
    id = core::Identity::make_ecdsa(rng, crypto::EcCurve::p256());
  } else {
    std::fprintf(stderr, "unknown --alg '%s'\n", alg.c_str());
    flags.usage();
    return 2;
  }

  const std::string out = flags.str("out");
  {
    std::ofstream f{out};
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << crypto::to_hex(id->serialize_private()) << "\n";
  }
  {
    std::ofstream f{out + ".pub"};
    f << crypto::to_hex(id->encode_public()) << "\n";
  }
  std::printf("wrote %s (private) and %s.pub (public), algorithm %s\n",
              out.c_str(), out.c_str(), alg.c_str());
  std::printf("public key: %s\n",
              crypto::to_hex(id->encode_public()).c_str());
  return 0;
}
