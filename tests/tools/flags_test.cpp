#include "flags.hpp"

#include <gtest/gtest.h>

namespace alpha::tools {
namespace {

Flags make() {
  Flags f{"test", "test flags"};
  f.define("count", "5", "a number");
  f.define("rate", "0.5", "a real");
  f.define("name", "hello", "a string");
  f.define("verbose", "false", "a switch");
  return f;
}

TEST(FlagsTest, DefaultsApply) {
  Flags f = make();
  char prog[] = "test";
  char* argv[] = {prog};
  f.parse(1, argv);
  EXPECT_EQ(f.num("count"), 5);
  EXPECT_DOUBLE_EQ(f.real("rate"), 0.5);
  EXPECT_EQ(f.str("name"), "hello");
  EXPECT_FALSE(f.flag("verbose"));
}

TEST(FlagsTest, SpaceSeparatedValues) {
  Flags f = make();
  char prog[] = "test", a1[] = "--count", a2[] = "42", a3[] = "--name",
       a4[] = "world";
  char* argv[] = {prog, a1, a2, a3, a4};
  f.parse(5, argv);
  EXPECT_EQ(f.num("count"), 42);
  EXPECT_EQ(f.str("name"), "world");
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = make();
  char prog[] = "test", a1[] = "--rate=0.25", a2[] = "--count=7";
  char* argv[] = {prog, a1, a2};
  f.parse(3, argv);
  EXPECT_DOUBLE_EQ(f.real("rate"), 0.25);
  EXPECT_EQ(f.num("count"), 7);
}

TEST(FlagsTest, BooleanSwitch) {
  Flags f = make();
  char prog[] = "test", a1[] = "--verbose";
  char* argv[] = {prog, a1};
  f.parse(2, argv);
  EXPECT_TRUE(f.flag("verbose"));
}

TEST(FlagsTest, BooleanDoesNotSwallowNextFlag) {
  Flags f = make();
  char prog[] = "test", a1[] = "--verbose", a2[] = "--count", a3[] = "9";
  char* argv[] = {prog, a1, a2, a3};
  f.parse(4, argv);
  EXPECT_TRUE(f.flag("verbose"));
  EXPECT_EQ(f.num("count"), 9);
}

}  // namespace
}  // namespace alpha::tools
