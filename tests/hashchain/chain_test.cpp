#include "hashchain/chain.hpp"

#include <gtest/gtest.h>

namespace alpha::hashchain {
namespace {

using crypto::Bytes;
using crypto::HmacDrbg;

class ChainTest : public ::testing::TestWithParam<HashAlgo> {};

INSTANTIATE_TEST_SUITE_P(AllAlgos, ChainTest,
                         ::testing::Values(HashAlgo::kSha1, HashAlgo::kSha256,
                                           HashAlgo::kMmo128),
                         [](const auto& info) {
                           switch (info.param) {
                             case HashAlgo::kSha1: return "Sha1";
                             case HashAlgo::kSha256: return "Sha256";
                             case HashAlgo::kMmo128: return "Mmo128";
                           }
                           return "Unknown";
                         });

TEST_P(ChainTest, ConstructionMatchesManualIteration) {
  const HashAlgo algo = GetParam();
  const Bytes seed(crypto::digest_size(algo), 0x42);
  const HashChain chain{algo, ChainTagging::kRoleBound, seed, 8};

  Digest cur{crypto::ByteView{seed}};
  EXPECT_EQ(chain.element(0), cur);
  for (std::size_t i = 1; i <= 8; ++i) {
    const auto tag = i % 2 == 1 ? crypto::as_bytes("S1") : crypto::as_bytes("S2");
    cur = crypto::hash2(algo, tag, cur.view());
    EXPECT_EQ(chain.element(i), cur) << "element " << i;
  }
  EXPECT_EQ(chain.anchor(), chain.element(8));
}

TEST_P(ChainTest, PlainChainUsesNoTag) {
  const HashAlgo algo = GetParam();
  const Bytes seed(crypto::digest_size(algo), 0x01);
  const HashChain chain{algo, ChainTagging::kPlain, seed, 4};
  Digest cur{crypto::ByteView{seed}};
  for (std::size_t i = 1; i <= 4; ++i) {
    cur = crypto::hash(algo, cur.view());
    EXPECT_EQ(chain.element(i), cur);
  }
}

TEST_P(ChainTest, StorageStrategiesAgree) {
  const HashAlgo algo = GetParam();
  const Bytes seed(crypto::digest_size(algo), 0x99);
  const std::size_t n = 64;
  const HashChain full{algo, ChainTagging::kRoleBound, seed, n,
                       ChainStorage::kFull};
  const HashChain lazy{algo, ChainTagging::kRoleBound, seed, n,
                       ChainStorage::kSeedOnly};
  const HashChain cp{algo, ChainTagging::kRoleBound, seed, n,
                     ChainStorage::kCheckpoint};
  for (std::size_t i = 0; i <= n; ++i) {
    EXPECT_EQ(full.element(i), lazy.element(i)) << i;
    EXPECT_EQ(full.element(i), cp.element(i)) << i;
  }
}

TEST(ChainStorageTest, MemoryFootprintOrdering) {
  HmacDrbg rng{1u};
  const std::size_t n = 256;
  const auto full = HashChain::generate(HashAlgo::kSha1,
                                        ChainTagging::kRoleBound, rng, n,
                                        ChainStorage::kFull);
  HmacDrbg rng2{1u};
  const auto lazy = HashChain::generate(HashAlgo::kSha1,
                                        ChainTagging::kRoleBound, rng2, n,
                                        ChainStorage::kSeedOnly);
  HmacDrbg rng3{1u};
  const auto cp = HashChain::generate(HashAlgo::kSha1,
                                      ChainTagging::kRoleBound, rng3, n,
                                      ChainStorage::kCheckpoint);
  EXPECT_EQ(full.memory_bytes(), (n + 1) * 20);
  EXPECT_EQ(lazy.memory_bytes(), 20u);
  EXPECT_LT(cp.memory_bytes(), full.memory_bytes());
  EXPECT_GT(cp.memory_bytes(), lazy.memory_bytes());
}

TEST(ChainValidationTest, RejectsBadParameters) {
  const Bytes seed(20, 0);
  EXPECT_THROW((HashChain{HashAlgo::kSha1, ChainTagging::kRoleBound, seed, 1}),
               std::invalid_argument);
  EXPECT_THROW((HashChain{HashAlgo::kSha1, ChainTagging::kRoleBound, seed, 7}),
               std::invalid_argument);
  // Plain chains may be odd-length.
  EXPECT_NO_THROW(
      (HashChain{HashAlgo::kSha1, ChainTagging::kPlain, seed, 7}));
}

TEST(ChainValidationTest, ElementBeyondLengthThrows) {
  const Bytes seed(20, 0);
  const HashChain chain{HashAlgo::kSha1, ChainTagging::kRoleBound, seed, 4};
  EXPECT_THROW(chain.element(5), std::out_of_range);
}

TEST(ChainTagsTest, RoleParityHelpers) {
  EXPECT_TRUE(is_s1_index(1));
  EXPECT_TRUE(is_s1_index(63));
  EXPECT_FALSE(is_s1_index(2));
  EXPECT_TRUE(is_s2_index(2));
  EXPECT_FALSE(is_s2_index(0));  // the seed is never disclosed as S2
  EXPECT_FALSE(is_s2_index(3));
}

TEST(ChainTagsTest, ReformattingAttackBlockedByTags) {
  // An S1-tagged element must not verify as the predecessor of another
  // S1-tagged element: H("S1"|h) != H("S2"|h).
  HmacDrbg rng{7u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 8);
  const Digest h5 = chain.element(5);
  const Digest wrong = crypto::hash2(HashAlgo::kSha1, crypto::as_bytes("S1"),
                                     h5.view());
  EXPECT_NE(wrong, chain.element(6));  // element 6 uses the S2 tag
}

TEST(ChainWalkerTest, WalksFromTopMinusOne) {
  HmacDrbg rng{2u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 10);
  ChainWalker walker{chain};
  EXPECT_EQ(walker.next_index(), 9u);
  EXPECT_EQ(walker.remaining(), 9u);
  EXPECT_EQ(walker.take(), chain.element(9));
  EXPECT_EQ(walker.next_index(), 8u);
  EXPECT_EQ(walker.take(), chain.element(8));
}

TEST(ChainWalkerTest, PeekDoesNotConsume) {
  HmacDrbg rng{3u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 6);
  ChainWalker walker{chain};
  EXPECT_EQ(walker.peek(), chain.element(5));
  EXPECT_EQ(walker.peek(1), chain.element(4));
  EXPECT_EQ(walker.next_index(), 5u);
}

TEST(ChainWalkerTest, MultiStepTake) {
  HmacDrbg rng{4u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 10);
  ChainWalker walker{chain};
  EXPECT_EQ(walker.take(2), chain.element(9));  // consumes 9 and 8
  EXPECT_EQ(walker.next_index(), 7u);
}

TEST(ChainWalkerTest, ExhaustionThrows) {
  HmacDrbg rng{5u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 2);
  ChainWalker walker{chain};
  EXPECT_EQ(walker.take(), chain.element(1));
  EXPECT_TRUE(walker.exhausted());
  EXPECT_THROW(walker.take(), std::out_of_range);
  EXPECT_THROW(walker.peek(), std::out_of_range);
}

TEST(ChainVerifierTest, AcceptsSequentialDisclosures) {
  HmacDrbg rng{6u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 10);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 10};
  for (std::size_t i = 9; i >= 1; --i) {
    EXPECT_TRUE(verifier.accept(chain.element(i), i)) << i;
    EXPECT_EQ(verifier.last_index(), i);
  }
}

TEST(ChainVerifierTest, AcceptsGapDisclosures) {
  HmacDrbg rng{7u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 20);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 20};
  EXPECT_TRUE(verifier.accept(chain.element(15), 15));  // gap of 5
  EXPECT_TRUE(verifier.accept(chain.element(14), 14));
}

TEST(ChainVerifierTest, RejectsBeyondMaxGap) {
  HmacDrbg rng{8u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 200);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 200, /*max_gap=*/4};
  EXPECT_FALSE(verifier.accept(chain.element(190), 190));
  EXPECT_TRUE(verifier.accept(chain.element(197), 197));
}

TEST(ChainVerifierTest, RejectsForgedElement) {
  HmacDrbg rng{9u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 10);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 10};
  crypto::Bytes forged(20, 0xee);
  EXPECT_FALSE(verifier.accept(Digest{crypto::ByteView{forged}}, 9));
  // State unchanged: the genuine element still verifies.
  EXPECT_TRUE(verifier.accept(chain.element(9), 9));
}

TEST(ChainVerifierTest, RejectsReplay) {
  HmacDrbg rng{10u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 10);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 10};
  EXPECT_TRUE(verifier.accept(chain.element(9), 9));
  EXPECT_FALSE(verifier.accept(chain.element(9), 9));   // same index replay
  EXPECT_FALSE(verifier.accept(chain.element(10), 10)); // anchor replay
}

TEST(ChainVerifierTest, AutoAcceptFindsIndex) {
  HmacDrbg rng{11u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 20);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 20};
  const auto idx = verifier.accept_auto(chain.element(17));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 17u);
  EXPECT_EQ(verifier.last_index(), 17u);
  EXPECT_FALSE(verifier.accept_auto(chain.element(19)).has_value());
}

TEST(ChainVerifierTest, CrossChainElementsRejected) {
  HmacDrbg rng{12u};
  const auto a = HashChain::generate(HashAlgo::kSha1,
                                     ChainTagging::kRoleBound, rng, 10);
  const auto b = HashChain::generate(HashAlgo::kSha1,
                                     ChainTagging::kRoleBound, rng, 10);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         a.anchor(), 10};
  EXPECT_FALSE(verifier.accept(b.element(9), 9));
}

TEST(ChainVerifierTest, AcceptOrDeriveHandlesBothDirections) {
  HmacDrbg rng{21u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 20);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 20};
  // Advance to index 15.
  ASSERT_TRUE(verifier.accept(chain.element(15), 15));

  // Below the state: behaves like accept (advances).
  EXPECT_TRUE(verifier.accept_or_derive(chain.element(14), 14));
  EXPECT_EQ(verifier.last_index(), 14u);

  // At the state: idempotent match, no advance.
  EXPECT_TRUE(verifier.accept_or_derive(chain.element(14), 14));
  EXPECT_EQ(verifier.last_index(), 14u);

  // Above the state (out-of-order arrival): derivable, no advance.
  EXPECT_TRUE(verifier.accept_or_derive(chain.element(16), 16));
  EXPECT_TRUE(verifier.accept_or_derive(chain.element(19), 19));
  EXPECT_EQ(verifier.last_index(), 14u);

  // Forged elements fail in every direction.
  const Digest forged{crypto::ByteView{crypto::Bytes(20, 0x5e)}};
  EXPECT_FALSE(verifier.accept_or_derive(forged, 13));
  EXPECT_FALSE(verifier.accept_or_derive(forged, 14));
  EXPECT_FALSE(verifier.accept_or_derive(forged, 16));
}

TEST(ChainVerifierTest, AcceptOrDeriveRespectsMaxGapUpward) {
  HmacDrbg rng{22u};
  const auto chain = HashChain::generate(HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 200);
  ChainVerifier verifier{HashAlgo::kSha1, ChainTagging::kRoleBound,
                         chain.anchor(), 200, /*max_gap=*/4};
  // Walk down within the gap bound to index 190.
  ASSERT_TRUE(verifier.accept(chain.element(196), 196));
  ASSERT_TRUE(verifier.accept(chain.element(192), 192));
  ASSERT_TRUE(verifier.accept(chain.element(190), 190));
  EXPECT_TRUE(verifier.accept_or_derive(chain.element(194), 194));
  // Genuine element 5 steps above the state: refused by the gap bound.
  EXPECT_FALSE(verifier.accept_or_derive(chain.element(195), 195));
}

TEST(ChainAdvanceTest, RejectsBackwardRange) {
  const Digest d{crypto::ByteView{crypto::Bytes(20, 1)}};
  EXPECT_THROW(
      chain_advance(HashAlgo::kSha1, ChainTagging::kPlain, d, 5, 4),
      std::invalid_argument);
}

TEST(ChainGenerateTest, DeterministicFromSeededRng) {
  HmacDrbg a{42u}, b{42u};
  const auto c1 = HashChain::generate(HashAlgo::kSha1,
                                      ChainTagging::kRoleBound, a, 8);
  const auto c2 = HashChain::generate(HashAlgo::kSha1,
                                      ChainTagging::kRoleBound, b, 8);
  EXPECT_EQ(c1.anchor(), c2.anchor());
}

}  // namespace
}  // namespace alpha::hashchain
