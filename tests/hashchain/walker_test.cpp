// ChainWalker amortization: the walker must disclose exactly the same
// elements as direct HashChain::element access for every storage strategy,
// and its full-chain sweep over recomputing storages must stay within the
// documented hash-op bounds (<= 2n for kSeedOnly, n + O(interval) for
// kCheckpoint).
#include <gtest/gtest.h>

#include "crypto/counter.hpp"
#include "hashchain/chain.hpp"

namespace alpha::hashchain {
namespace {

using crypto::Bytes;
using crypto::HashOpCounter;
using crypto::ScopedHashOps;

Bytes seed_for(HashAlgo algo) {
  Bytes seed(crypto::digest_size(algo));
  for (std::size_t i = 0; i < seed.size(); ++i) {
    seed[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return seed;
}

TEST(ChainWalker, MatchesReferenceAcrossStoragesAlgosTaggings) {
  constexpr std::size_t kLength = 64;
  for (const auto algo : {HashAlgo::kSha1, HashAlgo::kSha256,
                          HashAlgo::kMmo128}) {
    for (const auto tagging : {ChainTagging::kRoleBound, ChainTagging::kPlain}) {
      const Bytes seed = seed_for(algo);
      const HashChain reference(algo, tagging, seed, kLength,
                                ChainStorage::kFull);
      for (const auto storage : {ChainStorage::kFull, ChainStorage::kSeedOnly,
                                 ChainStorage::kCheckpoint}) {
        const HashChain chain(algo, tagging, seed, kLength, storage);
        ChainWalker walker(chain);
        // peek across segment boundaries before consuming.
        EXPECT_EQ(walker.peek(0), reference.element(kLength - 1));
        EXPECT_EQ(walker.peek(9), reference.element(kLength - 10));
        std::size_t expect_index = kLength - 1;
        while (!walker.exhausted()) {
          EXPECT_EQ(walker.next_index(), expect_index);
          EXPECT_EQ(walker.take(), reference.element(expect_index))
              << "algo=" << crypto::to_string(algo)
              << " storage=" << static_cast<int>(storage)
              << " index=" << expect_index;
          --expect_index;
        }
        EXPECT_EQ(expect_index, 0u);
        EXPECT_THROW(walker.take(), std::out_of_range);
        EXPECT_THROW(walker.peek(), std::out_of_range);
      }
    }
  }
}

TEST(ChainWalker, TakeWithStrideMatchesReference) {
  constexpr std::size_t kLength = 40;
  const auto algo = HashAlgo::kSha1;
  const HashChain reference(algo, ChainTagging::kRoleBound, seed_for(algo),
                            kLength, ChainStorage::kFull);
  for (const auto storage :
       {ChainStorage::kSeedOnly, ChainStorage::kCheckpoint}) {
    const HashChain chain(algo, ChainTagging::kRoleBound, seed_for(algo),
                          kLength, storage);
    ChainWalker walker(chain);
    std::size_t index = kLength - 1;
    while (walker.remaining() >= 2) {
      EXPECT_EQ(walker.take(2), reference.element(index));
      index -= 2;
    }
  }
}

TEST(ChainWalker, SeedOnlyFullSweepWithinTwoNHashOps) {
  constexpr std::size_t kN = std::size_t{1} << 14;
  const auto algo = HashAlgo::kSha1;
  const HashChain chain(algo, ChainTagging::kRoleBound, seed_for(algo), kN,
                        ChainStorage::kSeedOnly);
  const ScopedHashOps ops;
  ChainWalker walker(chain);  // pebbling pass included in the budget
  while (!walker.exhausted()) (void)walker.take();
  const auto total = ops.delta().hash_finalizations;
  EXPECT_LE(total, 2 * kN) << "amortized bound violated";
  EXPECT_GE(total, kN);  // sanity: at least the pebbling pass
}

TEST(ChainWalker, CheckpointFullSweepNearN) {
  constexpr std::size_t kN = 4096;
  const auto algo = HashAlgo::kSha1;
  const HashChain chain(algo, ChainTagging::kRoleBound, seed_for(algo), kN,
                        ChainStorage::kCheckpoint);
  const std::size_t interval = chain.checkpoint_interval();
  ASSERT_GT(interval, 0u);
  const ScopedHashOps ops;
  ChainWalker walker(chain);  // reuses stored checkpoints: no pebbling pass
  while (!walker.exhausted()) (void)walker.take();
  EXPECT_LE(ops.delta().hash_finalizations, kN + interval);
}

TEST(HashChainElement, MemoizedCursorKeepsValuesAndCutsCost) {
  constexpr std::size_t kLength = 256;
  const auto algo = HashAlgo::kSha1;
  const HashChain reference(algo, ChainTagging::kRoleBound, seed_for(algo),
                            kLength, ChainStorage::kFull);
  for (const auto storage :
       {ChainStorage::kSeedOnly, ChainStorage::kCheckpoint}) {
    const HashChain chain(algo, ChainTagging::kRoleBound, seed_for(algo),
                          kLength, storage);
    // Values identical in every access order.
    for (std::size_t i = 0; i <= kLength; ++i) {
      EXPECT_EQ(chain.element(i), reference.element(i));
    }
    for (std::size_t i = kLength + 1; i-- > 0;) {
      EXPECT_EQ(chain.element(i), reference.element(i));
    }
    // Repeated access to the same index is free; an ascending step costs
    // exactly the delta.
    (void)chain.element(100);
    {
      const ScopedHashOps ops;
      (void)chain.element(100);
      EXPECT_EQ(ops.delta().hash_finalizations, 0u);
    }
    {
      const ScopedHashOps ops;
      (void)chain.element(105);
      EXPECT_EQ(ops.delta().hash_finalizations, 5u);
    }
  }
}

}  // namespace
}  // namespace alpha::hashchain
