#include "baselines/hopwise.hpp"

#include <gtest/gtest.h>

namespace alpha::baselines {
namespace {

using crypto::HmacDrbg;

TEST(HopwiseTest, HonestPathDelivers) {
  HmacDrbg rng{1};
  const HopwisePath path{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac, 4,
                         rng};
  const auto result = path.transmit(crypto::as_bytes("hop by hop"));
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.payload, crypto::Bytes(crypto::as_bytes("hop by hop").begin(),
                                          crypto::as_bytes("hop by hop").end()));
}

TEST(HopwiseTest, OutsiderInjectionDetectedAtNextHop) {
  HmacDrbg rng{2};
  const HopwisePath path{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac, 3,
                         rng};
  const crypto::Bytes forged = rng.bytes(64);
  for (std::size_t link = 0; link < path.hops(); ++link) {
    EXPECT_FALSE(path.inject(link, forged)) << "link " << link;
  }
}

TEST(HopwiseTest, InsiderTamperingGoesUndetected) {
  // The scheme's fundamental limitation (paper §2.2: "they cannot mitigate
  // insider attacks"): a malicious relay rewrites the payload and re-MACs
  // with its own valid link key -- the destination accepts the forgery.
  HmacDrbg rng{3};
  const HopwisePath path{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac, 4,
                         rng};
  const auto result = path.transmit(
      crypto::as_bytes("pay 10 to alice"),
      [](crypto::Bytes payload, std::size_t relay) {
        if (relay == 1) {
          const auto evil = crypto::as_bytes("pay 99 to mallet");
          return crypto::Bytes(evil.begin(), evil.end());
        }
        return payload;
      });
  EXPECT_TRUE(result.delivered);  // nothing noticed the substitution
  EXPECT_EQ(result.payload,
            crypto::Bytes(crypto::as_bytes("pay 99 to mallet").begin(),
                          crypto::as_bytes("pay 99 to mallet").end()));
}

TEST(HopwiseTest, CostScalesWithPathLength) {
  HmacDrbg rng{4};
  for (std::size_t hops : {1u, 4u, 16u}) {
    const HopwisePath path{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                           hops, rng};
    EXPECT_EQ(path.mac_ops_per_message(), 2 * hops);
  }
}

}  // namespace
}  // namespace alpha::baselines
