#include "baselines/pk_channel.hpp"

#include <gtest/gtest.h>

namespace alpha::baselines {
namespace {

using crypto::HmacDrbg;

TEST(PkChannelTest, RsaRoundtripVerifiableByAnyone) {
  HmacDrbg rng{1};
  const core::Identity id = core::Identity::make_rsa(rng, 512);
  const PkChannel ch{id, crypto::HashAlgo::kSha1, rng};

  const auto frame = ch.protect(crypto::as_bytes("signed packet"));
  // A relay needs only the public key: per-packet on-path verification works
  // (unlike HMAC) -- the problem is cost, not capability.
  const auto out = PkChannel::verify(frame, wire::SigAlg::kRsa,
                                     id.encode_public(),
                                     crypto::HashAlgo::kSha1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, crypto::Bytes(crypto::as_bytes("signed packet").begin(),
                                crypto::as_bytes("signed packet").end()));
}

TEST(PkChannelTest, DsaRoundtrip) {
  HmacDrbg rng{2};
  const core::Identity id = core::Identity::make_dsa(rng, 512, 160);
  const PkChannel ch{id, crypto::HashAlgo::kSha1, rng};
  const auto frame = ch.protect(crypto::as_bytes("dsa packet"));
  EXPECT_TRUE(PkChannel::verify(frame, wire::SigAlg::kDsa, id.encode_public(),
                                crypto::HashAlgo::kSha1)
                  .has_value());
}

TEST(PkChannelTest, TamperedFrameRejected) {
  HmacDrbg rng{3};
  const core::Identity id = core::Identity::make_rsa(rng, 512);
  const PkChannel ch{id, crypto::HashAlgo::kSha1, rng};
  auto frame = ch.protect(crypto::as_bytes("original"));
  frame[2] ^= 1;  // flips a payload byte
  EXPECT_FALSE(PkChannel::verify(frame, wire::SigAlg::kRsa, id.encode_public(),
                                 crypto::HashAlgo::kSha1)
                   .has_value());
}

TEST(PkChannelTest, WrongKeyRejected) {
  HmacDrbg rng{4};
  const core::Identity signer = core::Identity::make_rsa(rng, 512);
  const core::Identity other = core::Identity::make_rsa(rng, 512);
  const PkChannel ch{signer, crypto::HashAlgo::kSha1, rng};
  const auto frame = ch.protect(crypto::as_bytes("x"));
  EXPECT_FALSE(PkChannel::verify(frame, wire::SigAlg::kRsa,
                                 other.encode_public(), crypto::HashAlgo::kSha1)
                   .has_value());
}

TEST(PkChannelTest, MalformedFrameRejected) {
  EXPECT_FALSE(PkChannel::verify(crypto::Bytes{1}, wire::SigAlg::kRsa,
                                 crypto::Bytes{}, crypto::HashAlgo::kSha1)
                   .has_value());
}

}  // namespace
}  // namespace alpha::baselines
