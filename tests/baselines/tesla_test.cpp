#include "baselines/tesla_like.hpp"

#include <gtest/gtest.h>

namespace alpha::baselines {
namespace {

TeslaConfig small_config() {
  TeslaConfig c;
  c.epoch_us = 100'000;  // 100 ms epochs
  c.disclosure_delay = 2;
  c.chain_length = 64;
  c.max_skew_us = 5'000;
  return c;
}

struct TeslaPair {
  explicit TeslaPair(TeslaConfig c = small_config())
      : config(c),
        sender(c, crypto::Bytes(20, 0x42), /*start_us=*/0),
        receiver(c, sender.anchor(), /*start_us=*/0) {}

  TeslaConfig config;
  TeslaSender sender;
  TeslaReceiver receiver;
};

TEST(TeslaTest, VerificationDelayedByDisclosureDelay) {
  TeslaPair pair;
  // Message sent in epoch 0, arrives promptly.
  const auto frame = pair.sender.protect(crypto::as_bytes("m0"), 10'000);
  auto released = pair.receiver.on_packet(frame, 20'000);
  EXPECT_TRUE(released.empty());  // buffered: key not yet disclosed
  EXPECT_EQ(pair.receiver.buffered(), 1u);

  // Heartbeats in epochs 1 and 2; epoch 2's heartbeat discloses K_0.
  released = pair.receiver.on_packet(pair.sender.heartbeat(110'000), 120'000);
  EXPECT_TRUE(released.empty());
  released = pair.receiver.on_packet(pair.sender.heartbeat(210'000), 220'000);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].epoch, 0u);
  EXPECT_EQ(released[0].payload,
            crypto::Bytes(crypto::as_bytes("m0").begin(),
                          crypto::as_bytes("m0").end()));
  // Verification latency: ~2 epochs = 200 ms. ALPHA needs 1.5 RTT instead.
}

TEST(TeslaTest, LatePacketDroppedBySafetyCondition) {
  TeslaPair pair;
  // Sent in epoch 0 but delayed until after K_0's disclosure time (epoch 2
  // starts at 200 ms): the receiver cannot trust it (§2.1.1 jitter problem).
  const auto frame = pair.sender.protect(crypto::as_bytes("late"), 10'000);
  const auto released = pair.receiver.on_packet(frame, 230'000);
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(pair.receiver.stats().unsafe_dropped, 1u);
  EXPECT_EQ(pair.receiver.buffered(), 0u);
}

TEST(TeslaTest, SkewTightensTheDeadline) {
  TeslaConfig c = small_config();
  c.max_skew_us = 50'000;
  TeslaPair pair{c};
  // Arrives at 160 ms: disclosure time of K_0 is 200 ms; with 50 ms skew
  // the packet is already unsafe.
  const auto frame = pair.sender.protect(crypto::as_bytes("m"), 10'000);
  pair.receiver.on_packet(frame, 160'000);
  EXPECT_EQ(pair.receiver.stats().unsafe_dropped, 1u);
}

TEST(TeslaTest, TamperedPayloadRejectedAtRelease) {
  TeslaPair pair;
  auto frame = pair.sender.protect(crypto::as_bytes("mm"), 10'000);
  frame[frame.size() - 1] ^= 1;  // payload is near the tail before disclosure
  // Tamper detection happens only when the key arrives.
  pair.receiver.on_packet(frame, 20'000);
  pair.receiver.on_packet(pair.sender.heartbeat(210'000), 220'000);
  EXPECT_EQ(pair.receiver.stats().released, 0u);
  EXPECT_EQ(pair.receiver.stats().invalid, 1u);
}

TEST(TeslaTest, ForgedKeyDisclosureRejected) {
  TeslaPair pair;
  // Craft a heartbeat-like frame disclosing a junk key for epoch 0.
  TeslaSender forger{pair.config, crypto::Bytes(20, 0x66), 0};
  const auto forged = forger.heartbeat(210'000);
  pair.receiver.on_packet(forged, 220'000);
  EXPECT_EQ(pair.receiver.stats().invalid, 1u);
}

TEST(TeslaTest, MultipleMessagesPerEpochAllRelease) {
  TeslaPair pair;
  for (int i = 0; i < 5; ++i) {
    pair.receiver.on_packet(
        pair.sender.protect(crypto::as_bytes("x"), 10'000 + i), 20'000);
  }
  EXPECT_EQ(pair.receiver.buffered(), 5u);
  const auto released =
      pair.receiver.on_packet(pair.sender.heartbeat(210'000), 220'000);
  EXPECT_EQ(released.size(), 5u);
  EXPECT_EQ(pair.receiver.stats().buffered_peak, 5u);
}

TEST(TeslaTest, IdleEpochsStillCostDisclosures) {
  // §2.1.1: time-based schemes emit key material even with no payload.
  TeslaPair pair;
  std::size_t disclosures = 0;
  for (std::size_t e = 2; e < 10; ++e) {
    const auto hb =
        pair.sender.heartbeat(e * pair.config.epoch_us + 10'000);
    pair.receiver.on_packet(hb, e * pair.config.epoch_us + 20'000);
    ++disclosures;
  }
  EXPECT_EQ(disclosures, 8u);  // pure overhead: nothing was transmitted
  EXPECT_EQ(pair.receiver.stats().released, 0u);
}

TEST(TeslaTest, OutOfOrderDisclosureStillReleases) {
  TeslaPair pair;
  pair.receiver.on_packet(pair.sender.protect(crypto::as_bytes("a"), 10'000),
                          20'000);
  pair.receiver.on_packet(pair.sender.protect(crypto::as_bytes("b"), 110'000),
                          120'000);
  // Skip epoch 2's heartbeat; epoch 3's discloses K_1, jumping the chain by
  // two elements (gap tolerance).
  const auto released =
      pair.receiver.on_packet(pair.sender.heartbeat(310'000), 320'000);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].epoch, 1u);
}

TEST(TeslaTest, MalformedFrameCountedInvalid) {
  TeslaPair pair;
  pair.receiver.on_packet(crypto::Bytes{1, 2, 3}, 0);
  EXPECT_EQ(pair.receiver.stats().invalid, 1u);
}

}  // namespace
}  // namespace alpha::baselines
