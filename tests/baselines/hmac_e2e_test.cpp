#include "baselines/hmac_e2e.hpp"

#include <gtest/gtest.h>

#include "crypto/random.hpp"

namespace alpha::baselines {
namespace {

using crypto::HmacDrbg;

TEST(HmacChannelTest, ProtectVerifyRoundtrip) {
  HmacDrbg rng{1};
  const HmacChannel ch{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                       rng.bytes(20)};
  const Bytes frame = ch.protect(crypto::as_bytes("end to end"));
  const auto out = ch.verify(frame);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Bytes(crypto::as_bytes("end to end").begin(),
                        crypto::as_bytes("end to end").end()));
}

TEST(HmacChannelTest, TamperedPayloadRejected) {
  HmacDrbg rng{2};
  const HmacChannel ch{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                       rng.bytes(20)};
  Bytes frame = ch.protect(crypto::as_bytes("data"));
  frame[0] ^= 1;
  EXPECT_FALSE(ch.verify(frame).has_value());
}

TEST(HmacChannelTest, WrongKeyRejected) {
  HmacDrbg rng{3};
  const HmacChannel a{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                      rng.bytes(20)};
  const HmacChannel b{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                      rng.bytes(20)};
  EXPECT_FALSE(b.verify(a.protect(crypto::as_bytes("x"))).has_value());
}

TEST(HmacChannelTest, ShortFrameRejected) {
  HmacDrbg rng{4};
  const HmacChannel ch{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                       rng.bytes(20)};
  EXPECT_FALSE(ch.verify(Bytes(5, 0)).has_value());
}

TEST(HmacChannelTest, RelayWithoutKeyCannotFilter) {
  // The paper's core criticism (§1): a relay without the shared secret has
  // no way to distinguish genuine from forged frames -- a forgery looks
  // exactly as opaque as the real thing and must be forwarded.
  HmacDrbg rng{5};
  const Bytes key = rng.bytes(20);
  const HmacChannel endpoints{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                              key};
  const Bytes genuine = endpoints.protect(crypto::as_bytes("real"));
  Bytes forged = rng.bytes(genuine.size());

  // Whatever heuristic a key-less relay applies (here: none -- structural
  // equality of sizes), it cannot authenticate either frame. Only the
  // destination detects the forgery.
  EXPECT_EQ(genuine.size(), forged.size());
  EXPECT_TRUE(endpoints.verify(genuine).has_value());
  EXPECT_FALSE(endpoints.verify(forged).has_value());
}

TEST(HmacChannelTest, KeyHolderCanForge) {
  // Sharing the key with relays (the naive fix) lets any relay forge:
  HmacDrbg rng{6};
  const Bytes key = rng.bytes(20);
  const HmacChannel endpoint{crypto::HashAlgo::kSha1, crypto::MacKind::kHmac,
                             key};
  const HmacChannel malicious_relay{crypto::HashAlgo::kSha1,
                                    crypto::MacKind::kHmac, key};
  const Bytes forged = malicious_relay.protect(crypto::as_bytes("forged!"));
  EXPECT_TRUE(endpoint.verify(forged).has_value());  // accepted as genuine
}

}  // namespace
}  // namespace alpha::baselines
