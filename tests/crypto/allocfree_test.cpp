// Zero-allocation assertions for the signed-packet hot path. This binary
// replaces global operator new/delete with counting versions (alloc_hook.hpp
// must be included by exactly one TU per binary, hence the dedicated test
// executable) and asserts that chain steps, one-shot hashes, prefix MACs,
// cached HMACs, trace-event recording and the UDP datagram loop never touch
// the heap after warmup.
#include "support/alloc_hook.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "crypto/mac.hpp"
#include "hashchain/chain.hpp"
#include "net/udp.hpp"
#include "trace/trace.hpp"

namespace alpha::crypto {
namespace {

using testsupport::ScopedAllocCount;

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i);
  return b;
}

const HashAlgo kAlgos[] = {HashAlgo::kSha1, HashAlgo::kSha256,
                           HashAlgo::kMmo128};

TEST(AllocFree, OneShotHash) {
  for (const auto algo : kAlgos) {
    const Bytes small = pattern_bytes(40);
    const Bytes large = pattern_bytes(512);
    (void)hash(algo, small);  // warm up lazily-initialized state
    (void)hash(algo, large);
    std::uint64_t delta;
    {
      const ScopedAllocCount allocs;
      for (int i = 0; i < 100; ++i) {
        (void)hash(algo, small);
        (void)hash2(algo, small, large);
        (void)hash3(algo, small, small, large);
      }
      delta = allocs.delta();
    }
    EXPECT_EQ(delta, 0u) << to_string(algo);
  }
}

TEST(AllocFree, ChainStep) {
  for (const auto algo : kAlgos) {
    const Digest prev{ByteView{pattern_bytes(digest_size(algo))}};
    (void)hashchain::chain_step(algo, hashchain::ChainTagging::kRoleBound,
                                prev, 3);
    std::uint64_t delta;
    {
      const ScopedAllocCount allocs;
      Digest cur = prev;
      for (std::size_t i = 1; i <= 200; ++i) {
        cur = hashchain::chain_step(algo, hashchain::ChainTagging::kRoleBound,
                                    cur, i);
      }
      delta = allocs.delta();
    }
    EXPECT_EQ(delta, 0u) << to_string(algo);
  }
}

TEST(AllocFree, PrefixMacAndCachedHmac) {
  for (const auto algo : kAlgos) {
    const Bytes key = pattern_bytes(digest_size(algo));
    const Bytes payload = pattern_bytes(256);
    const MacContext prefix(MacKind::kPrefix, algo, key);
    const HmacKey hmac_key(algo, key);
    const MacContext hmac_ctx(MacKind::kHmac, algo, key);
    const Digest tag = prefix.mac(payload);
    const Digest hmac_tag = hmac_key.mac(payload);
    std::uint64_t delta;
    {
      const ScopedAllocCount allocs;
      for (int i = 0; i < 100; ++i) {
        (void)prefix.mac(payload);
        (void)prefix.verify(payload, tag);
        (void)hmac_key.mac(payload);
        (void)hmac_key.verify(payload, hmac_tag);
        (void)hmac_ctx.mac(payload);
      }
      delta = allocs.delta();
    }
    EXPECT_EQ(delta, 0u) << to_string(algo);
  }
}

TEST(AllocFree, TraceEmitWithInstalledRing) {
  // Recording a traced event is a masked index increment plus a 32-byte POD
  // copy; with tracing enabled the hot path must stay allocation-free.
  trace::Ring ring(1024);  // the only allocation happens here, up front
  trace::install(&ring);
  const trace::ScopedContext ctx(/*origin=*/2, /*time_us=*/1000);
  trace::emit(trace::EventKind::kPacketSent, 1, 0, 1);
  std::uint64_t delta;
  {
    const ScopedAllocCount allocs;
    for (std::uint32_t i = 0; i < 5000; ++i) {  // wraps: 5000 > capacity
      trace::emit(trace::EventKind::kPacketSent, 1, i, 1,
                  trace::DropReason::kNone, i);
    }
    delta = allocs.delta();
  }
  trace::install(nullptr);
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(ring.total(), 5001u);
}

TEST(AllocFree, UdpSendReceiveLoop) {
  // The receive path lands datagrams in a per-endpoint buffer allocated
  // once (lazily, on first receive): after one warmup round trip the
  // send/receive loop must not allocate per datagram.
  net::UdpEndpoint a;
  net::UdpEndpoint b;
  const Bytes payload = pattern_bytes(512);

  a.send_to(b.port(), payload);
  auto warm = b.receive(1000);
  ASSERT_TRUE(warm.has_value());
  ASSERT_EQ(warm->data.size(), payload.size());

  std::uint64_t delta;
  {
    const ScopedAllocCount allocs;
    for (int i = 0; i < 50; ++i) {
      a.send_to(b.port(), payload);
      const auto got = b.receive(1000);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->data.size(), payload.size());
    }
    delta = allocs.delta();
  }
  EXPECT_EQ(delta, 0u);
}

TEST(AllocFree, HookCountsAllocations) {
  // Sanity check that the hook is actually installed in this binary.
  const ScopedAllocCount allocs;
  auto* p = new int(7);
  EXPECT_GE(allocs.delta(), 1u);
  delete p;
}

}  // namespace
}  // namespace alpha::crypto
