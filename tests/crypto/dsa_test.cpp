#include "crypto/dsa.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

// Small (512/160) group keeps tests fast; generation logic is size-generic.
class DsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HmacDrbg rng{0xd5au};
    params_ = new DsaParams(dsa_generate_params(rng, 512, 160));
    key_ = new DsaPrivateKey(dsa_generate_key(rng, *params_));
  }
  static void TearDownTestSuite() {
    delete key_;
    delete params_;
    key_ = nullptr;
    params_ = nullptr;
  }

  static const DsaParams& params() { return *params_; }
  static const DsaPrivateKey& key() { return *key_; }

 private:
  static DsaParams* params_;
  static DsaPrivateKey* key_;
};

DsaParams* DsaTest::params_ = nullptr;
DsaPrivateKey* DsaTest::key_ = nullptr;

TEST_F(DsaTest, ParamStructure) {
  HmacDrbg rng{1u};
  EXPECT_EQ(params().p.bit_length(), 512u);
  EXPECT_EQ(params().q.bit_length(), 160u);
  EXPECT_TRUE(is_probable_prime(params().p, rng));
  EXPECT_TRUE(is_probable_prime(params().q, rng));
  // q divides p-1
  EXPECT_TRUE(((params().p - BigInt{1}) % params().q).is_zero());
  // g has order q: g^q = 1 mod p and g != 1
  EXPECT_FALSE(params().g.is_one());
  EXPECT_TRUE(BigInt::modexp(params().g, params().q, params().p).is_one());
}

TEST_F(DsaTest, KeyStructure) {
  EXPECT_FALSE(key().x.is_zero());
  EXPECT_LT(key().x, params().q);
  EXPECT_EQ(key().pub.y, BigInt::modexp(params().g, key().x, params().p));
}

TEST_F(DsaTest, SignVerifyRoundtrip) {
  HmacDrbg rng{7u};
  const auto msg = as_bytes("anchor announcement");
  const DsaSignature sig = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  EXPECT_TRUE(dsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(DsaTest, SignVerifySha256) {
  HmacDrbg rng{8u};
  const auto msg = as_bytes("sha256-digested message");
  const DsaSignature sig = dsa_sign(key(), HashAlgo::kSha256, msg, rng);
  EXPECT_TRUE(dsa_verify(key().pub, HashAlgo::kSha256, msg, sig));
}

TEST_F(DsaTest, SignatureInRange) {
  HmacDrbg rng{9u};
  const DsaSignature sig = dsa_sign(key(), HashAlgo::kSha1, as_bytes("m"), rng);
  EXPECT_FALSE(sig.r.is_zero());
  EXPECT_FALSE(sig.s.is_zero());
  EXPECT_LT(sig.r, params().q);
  EXPECT_LT(sig.s, params().q);
}

TEST_F(DsaTest, TamperedMessageRejected) {
  HmacDrbg rng{10u};
  const DsaSignature sig =
      dsa_sign(key(), HashAlgo::kSha1, as_bytes("payment: 10"), rng);
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, as_bytes("payment: 99"), sig));
}

TEST_F(DsaTest, TamperedSignatureRejected) {
  HmacDrbg rng{11u};
  const auto msg = as_bytes("m");
  DsaSignature sig = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  sig.r = sig.r + BigInt{1};
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(DsaTest, OutOfRangeSignatureRejected) {
  const auto msg = as_bytes("m");
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, msg,
                          {BigInt{}, BigInt{1}}));
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, msg,
                          {BigInt{1}, BigInt{}}));
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, msg,
                          {params().q, BigInt{1}}));
  EXPECT_FALSE(dsa_verify(key().pub, HashAlgo::kSha1, msg,
                          {BigInt{1}, params().q}));
}

TEST_F(DsaTest, WrongKeyRejected) {
  HmacDrbg rng{12u};
  const DsaPrivateKey other = dsa_generate_key(rng, params());
  const auto msg = as_bytes("m");
  const DsaSignature sig = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  EXPECT_FALSE(dsa_verify(other.pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(DsaTest, FreshNoncePerSignature) {
  HmacDrbg rng{13u};
  const auto msg = as_bytes("same message");
  const DsaSignature s1 = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  const DsaSignature s2 = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  EXPECT_NE(s1.r, s2.r);  // randomized signatures
  EXPECT_TRUE(dsa_verify(key().pub, HashAlgo::kSha1, msg, s1));
  EXPECT_TRUE(dsa_verify(key().pub, HashAlgo::kSha1, msg, s2));
}

TEST_F(DsaTest, EncodeDecodeRoundtrip) {
  HmacDrbg rng{14u};
  const auto msg = as_bytes("wire");
  const DsaSignature sig = dsa_sign(key(), HashAlgo::kSha1, msg, rng);
  const Bytes wire = sig.encode(20);
  EXPECT_EQ(wire.size(), 40u);
  const DsaSignature back = DsaSignature::decode(wire);
  EXPECT_EQ(back.r, sig.r);
  EXPECT_EQ(back.s, sig.s);
  EXPECT_TRUE(dsa_verify(key().pub, HashAlgo::kSha1, msg, back));
}

TEST(DsaSignatureTest, DecodeRejectsBadLength) {
  const Bytes odd(41, 0);
  EXPECT_THROW(DsaSignature::decode(odd), std::invalid_argument);
  EXPECT_THROW(DsaSignature::decode({}), std::invalid_argument);
}

TEST(DsaParamsTest, RejectsBadSizes) {
  HmacDrbg rng{1u};
  EXPECT_THROW(dsa_generate_params(rng, 160, 160), std::invalid_argument);
}

}  // namespace
}  // namespace alpha::crypto
