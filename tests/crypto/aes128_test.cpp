#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/bytes.hpp"

namespace alpha::crypto {
namespace {

// FIPS 197 Appendix C.1 example vector.
TEST(Aes128Test, Fips197Vector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Bytes expected_ct = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");

  const Aes128 cipher{key};
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), to_hex(expected_ct));

  std::uint8_t back[16];
  cipher.decrypt_block(ct, back);
  EXPECT_EQ(to_hex({back, 16}), to_hex(pt));
}

// NIST SP 800-38A ECB-AES128 vectors (all four blocks).
TEST(Aes128Test, Sp80038aEcbVectors) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes128 cipher{key};

  const struct {
    const char* pt;
    const char* ct;
  } cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };

  for (const auto& c : cases) {
    const Bytes pt = from_hex(c.pt);
    std::uint8_t ct[16];
    cipher.encrypt_block(pt.data(), ct);
    EXPECT_EQ(to_hex({ct, 16}), c.ct);

    std::uint8_t back[16];
    cipher.decrypt_block(ct, back);
    EXPECT_EQ(to_hex({back, 16}), c.pt);
  }
}

TEST(Aes128Test, InPlaceEncryptDecrypt) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes128 cipher{key};
  std::uint8_t buf[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::uint8_t orig[16];
  std::memcpy(orig, buf, 16);

  cipher.encrypt_block(buf, buf);
  EXPECT_NE(std::memcmp(buf, orig, 16), 0);
  cipher.decrypt_block(buf, buf);
  EXPECT_EQ(std::memcmp(buf, orig, 16), 0);
}

TEST(Aes128Test, RejectsWrongKeySize) {
  const Bytes short_key(15, 0);
  const Bytes long_key(17, 0);
  EXPECT_THROW(Aes128{ByteView{short_key}}, std::invalid_argument);
  EXPECT_THROW(Aes128{ByteView{long_key}}, std::invalid_argument);
}

TEST(Aes128Test, DifferentKeysDifferentCiphertext) {
  const Bytes k1 = from_hex("00000000000000000000000000000000");
  const Bytes k2 = from_hex("00000000000000000000000000000001");
  const Bytes pt = from_hex("00000000000000000000000000000000");
  std::uint8_t c1[16], c2[16];
  Aes128{k1}.encrypt_block(pt.data(), c1);
  Aes128{k2}.encrypt_block(pt.data(), c2);
  EXPECT_NE(std::memcmp(c1, c2, 16), 0);
}

}  // namespace
}  // namespace alpha::crypto
