#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace alpha::crypto {
namespace {

std::string sha256_hex(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finalize().hex();
}

// FIPS 180-4 standard vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(sha256_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(sha256_hex(as_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      sha256_hex(as_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg(200, 'q');
  Sha256 whole;
  whole.update(as_bytes(msg));
  const Digest expected = whole.finalize();

  for (std::size_t split = 0; split <= msg.size(); split += 13) {
    Sha256 h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.update(as_bytes("junk"));
  (void)h.finalize();
  h.reset();
  h.update(as_bytes("abc"));
  EXPECT_EQ(h.finalize().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DigestSizeIs32) {
  Sha256 h;
  EXPECT_EQ(h.digest_size(), 32u);
  h.update(as_bytes("x"));
  EXPECT_EQ(h.finalize().size(), 32u);
}

}  // namespace
}  // namespace alpha::crypto
