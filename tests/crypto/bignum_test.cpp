#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

BigInt bi(std::uint64_t v) { return BigInt{v}; }

TEST(BigIntTest, ZeroBasics) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(bi(1).to_hex(), "1");
  EXPECT_EQ(bi(255).to_hex(), "ff");
  EXPECT_EQ(bi(0x123456789abcdef0ull).to_hex(), "123456789abcdef0");
}

TEST(BigIntTest, BytesRoundtrip) {
  const Bytes raw = from_hex("0102030405060708090a0b0c0d0e0f10");
  const BigInt v = BigInt::from_bytes_be(raw);
  EXPECT_EQ(v.to_bytes_be(), raw);
  EXPECT_EQ(v.to_bytes_be(20).size(), 20u);
  // Leading zeros preserved in padded form.
  EXPECT_EQ(v.to_bytes_be(20)[0], 0u);
}

TEST(BigIntTest, LeadingZerosIgnoredOnDecode) {
  EXPECT_EQ(BigInt::from_hex("000000ff"), bi(255));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(bi(1).bit_length(), 1u);
  EXPECT_EQ(bi(2).bit_length(), 2u);
  EXPECT_EQ(bi(255).bit_length(), 8u);
  EXPECT_EQ(bi(256).bit_length(), 9u);
  EXPECT_EQ((bi(1) << 1000).bit_length(), 1001u);
}

TEST(BigIntTest, BitAccess) {
  const BigInt v = bi(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigIntTest, Comparison) {
  EXPECT_LT(bi(1), bi(2));
  EXPECT_GT(bi(1) << 64, bi(0xffffffffffffffffull));
  EXPECT_EQ(bi(7), bi(7));
}

TEST(BigIntTest, AdditionWithCarry) {
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((a + bi(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigIntTest, SubtractionWithBorrow) {
  const BigInt a = BigInt::from_hex("1000000000000000000000000");
  EXPECT_EQ((a - bi(1)).to_hex(), "ffffffffffffffffffffffff");
}

TEST(BigIntTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(bi(1) - bi(2), std::underflow_error);
}

TEST(BigIntTest, MultiplicationKnown) {
  EXPECT_EQ((bi(0xffffffff) * bi(0xffffffff)).to_hex(), "fffffffe00000001");
  EXPECT_EQ((bi(1000000007) * bi(998244353)).to_hex(),
            (BigInt{1000000007ull * 998244353ull}).to_hex());
}

TEST(BigIntTest, MultiplicationDivisionInverse) {
  HmacDrbg rng{404u};
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 16 + rng.uniform(768));
    const BigInt b = BigInt::random_bits(rng, 16 + rng.uniform(768));
    const BigInt prod = a * b;
    EXPECT_EQ(prod / a, b);
    EXPECT_EQ(prod / b, a);
    EXPECT_TRUE((prod % a).is_zero());
    EXPECT_TRUE((prod % b).is_zero());
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(BigIntTest, ShiftRoundtrip) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe");
  for (std::size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((a << s) >> s, a) << "shift " << s;
  }
}

TEST(BigIntTest, DivmodSmall) {
  const auto [q, r] = BigInt::divmod(bi(100), bi(7));
  EXPECT_EQ(q, bi(14));
  EXPECT_EQ(r, bi(2));
}

TEST(BigIntTest, DivmodByZeroThrows) {
  EXPECT_THROW(BigInt::divmod(bi(1), BigInt{}), std::domain_error);
}

TEST(BigIntTest, DivmodNumSmallerThanDen) {
  const auto [q, r] = BigInt::divmod(bi(3), bi(10));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, bi(3));
}

// Property: for random a, b: a == (a/b)*b + (a%b) and a%b < b.
TEST(BigIntTest, DivmodPropertyRandom) {
  HmacDrbg rng{2024u};
  for (int i = 0; i < 200; ++i) {
    const std::size_t abits = 16 + rng.uniform(512);
    const std::size_t bbits = 8 + rng.uniform(256);
    const BigInt a = BigInt::random_bits(rng, abits);
    const BigInt b = BigInt::random_bits(rng, bbits);
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

// Knuth algorithm D "add back" branch trigger: divisors maximizing qhat
// overestimation.
TEST(BigIntTest, DivmodAddBackCase) {
  const BigInt num = BigInt::from_hex("7fffffff800000010000000000000000");
  const BigInt den = BigInt::from_hex("800000008000000200000005");
  const auto [q, r] = BigInt::divmod(num, den);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigIntTest, ModexpKnown) {
  EXPECT_EQ(BigInt::modexp(bi(2), bi(10), bi(1000)), bi(24));
  EXPECT_EQ(BigInt::modexp(bi(3), bi(0), bi(7)), bi(1));
  EXPECT_EQ(BigInt::modexp(bi(5), bi(117), bi(19)), bi(1));  // 5^18=1 mod 19
}

TEST(BigIntTest, ModexpFermat) {
  // a^(p-1) = 1 mod p for prime p not dividing a.
  const BigInt p = BigInt::from_hex("ffffffffffffffc5");  // 2^64-59, prime
  HmacDrbg rng{5u};
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_below(rng, p - bi(2)) + bi(2);
    EXPECT_TRUE(BigInt::modexp(a, p - bi(1), p).is_one());
  }
}

TEST(BigIntTest, ModexpModulusOne) {
  EXPECT_TRUE(BigInt::modexp(bi(5), bi(5), bi(1)).is_zero());
}

// Cross-checks the Montgomery fast path (odd, multi-limb moduli) against a
// reference square-and-multiply implementation.
TEST(BigIntTest, MontgomeryModexpMatchesReference) {
  const auto reference = [](const BigInt& base, const BigInt& exp,
                            const BigInt& mod) {
    BigInt result{1};
    BigInt b = base % mod;
    for (std::size_t i = 0; i < exp.bit_length(); ++i) {
      if (exp.bit(i)) result = (result * b) % mod;
      b = (b * b) % mod;
    }
    return result;
  };
  HmacDrbg rng{0x40f7u};
  for (int i = 0; i < 60; ++i) {
    const std::size_t mbits = 64 + rng.uniform(512);
    BigInt mod = BigInt::random_bits(rng, mbits);
    if (!mod.is_odd()) mod = mod + bi(1);  // Montgomery path wants odd
    const BigInt base = BigInt::random_bits(rng, 16 + rng.uniform(600));
    const BigInt exp = BigInt::random_bits(rng, 1 + rng.uniform(200));
    EXPECT_EQ(BigInt::modexp(base, exp, mod), reference(base, exp, mod))
        << "iter " << i << " mbits " << mbits;
  }
}

TEST(BigIntTest, ModexpEvenModulusStillCorrect) {
  // Even moduli bypass Montgomery; verify the fallback.
  HmacDrbg rng{0x40f8u};
  for (int i = 0; i < 20; ++i) {
    BigInt mod = BigInt::random_bits(rng, 64 + rng.uniform(128));
    if (mod.is_odd()) mod = mod + bi(1);
    const BigInt base = BigInt::random_bits(rng, 100);
    EXPECT_EQ(BigInt::modexp(base, bi(2), mod), (base * base) % mod);
    EXPECT_EQ(BigInt::modexp(base, bi(3), mod),
              (((base * base) % mod) * base) % mod);
  }
}

TEST(BigIntTest, ModexpEdgeOperands) {
  const BigInt mod = BigInt::from_hex("ffffffffffffffc5");  // odd prime
  EXPECT_TRUE(BigInt::modexp(BigInt{}, bi(5), mod).is_zero());   // 0^e
  EXPECT_TRUE(BigInt::modexp(bi(7), BigInt{}, mod).is_one());    // b^0
  EXPECT_EQ(BigInt::modexp(mod + bi(3), bi(1), mod), bi(3));     // base > mod
  EXPECT_TRUE(BigInt::modexp(mod, bi(4), mod).is_zero());        // base = mod
}

TEST(BigIntTest, GcdKnown) {
  EXPECT_EQ(BigInt::gcd(bi(48), bi(18)), bi(6));
  EXPECT_EQ(BigInt::gcd(bi(17), bi(13)), bi(1));
  EXPECT_EQ(BigInt::gcd(bi(0), bi(5)), bi(5));
}

TEST(BigIntTest, ModinvKnown) {
  // 3 * 4 = 12 = 1 mod 11
  EXPECT_EQ(BigInt::modinv(bi(3), bi(11)), bi(4));
}

TEST(BigIntTest, ModinvPropertyRandom) {
  HmacDrbg rng{31337u};
  const BigInt m = BigInt::from_hex("ffffffffffffffc5");  // prime modulus
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_below(rng, m - bi(1)) + bi(1);
    const BigInt inv = BigInt::modinv(a, m);
    EXPECT_TRUE(((a * inv) % m).is_one());
  }
}

TEST(BigIntTest, ModinvNotInvertibleThrows) {
  EXPECT_THROW(BigInt::modinv(bi(4), bi(8)), std::domain_error);
}

TEST(BigIntTest, RandomBelowStaysBelow) {
  HmacDrbg rng{11u};
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(BigIntTest, RandomBitsExactWidth) {
  HmacDrbg rng{13u};
  for (std::size_t bits : {8u, 17u, 64u, 160u, 512u}) {
    EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(PrimalityTest, KnownPrimes) {
  HmacDrbg rng{1u};
  for (std::uint64_t p : {2ull, 3ull, 5ull, 97ull, 7919ull, 104729ull}) {
    EXPECT_TRUE(is_probable_prime(bi(p), rng)) << p;
  }
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(is_probable_prime(BigInt::from_hex("1fffffffffffffff"), rng));
}

TEST(PrimalityTest, KnownComposites) {
  HmacDrbg rng{1u};
  for (std::uint64_t n : {1ull, 4ull, 100ull, 7917ull}) {
    EXPECT_FALSE(is_probable_prime(bi(n), rng)) << n;
  }
  // Carmichael numbers must be rejected (Fermat liars for all bases).
  for (std::uint64_t n : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(is_probable_prime(bi(n), rng)) << n;
  }
}

TEST(PrimalityTest, GeneratedPrimesHaveRequestedSize) {
  HmacDrbg rng{2718u};
  for (std::size_t bits : {64u, 128u, 256u}) {
    const BigInt p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
    // Top two bits set by construction.
    EXPECT_TRUE(p.bit(bits - 1));
    EXPECT_TRUE(p.bit(bits - 2));
  }
}

TEST(BigIntTest, HexRoundtripLarge) {
  HmacDrbg rng{99u};
  for (int i = 0; i < 20; ++i) {
    const BigInt v = BigInt::random_bits(rng, 1 + rng.uniform(1024));
    EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  }
}

}  // namespace
}  // namespace alpha::crypto
