// Hot-path refactor safety net: the one-shot fast paths, the hardware
// compression backends and the cached-midstate MACs must be bit-identical
// to the streaming/scalar/from-scratch constructions and must not change
// what HashOpCounter reports.
#include <gtest/gtest.h>

#include <string>

#include "crypto/counter.hpp"
#include "crypto/cpu.hpp"
#include "crypto/hash.hpp"
#include "crypto/hasher_ctx.hpp"
#include "crypto/mac.hpp"
#include "crypto/random.hpp"

namespace alpha::crypto {
namespace {

const HashAlgo kAlgos[] = {HashAlgo::kSha1, HashAlgo::kSha256,
                           HashAlgo::kMmo128};

Bytes pattern_bytes(std::size_t n, std::uint8_t base) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(base + i * 7);
  }
  return b;
}

TEST(HotPath, OneShotMatchesStreamingHasher) {
  // Cross the one-block boundary (<=55 bytes) in both directions and with
  // multi-part inputs split at every offset.
  for (const auto algo : kAlgos) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{20},
                          std::size_t{55}, std::size_t{56}, std::size_t{64},
                          std::size_t{100}, std::size_t{1000}}) {
      const Bytes data = pattern_bytes(n, 3);
      const auto hasher = make_hasher(algo);
      hasher->update(data);
      const Digest expect = hasher->finalize();
      EXPECT_EQ(hash(algo, data), expect) << to_string(algo) << " n=" << n;
      for (std::size_t split = 0; split <= n; split += 13) {
        const ByteView a{data.data(), split};
        const ByteView b{data.data() + split, n - split};
        EXPECT_EQ(hash2(algo, a, b), expect)
            << to_string(algo) << " n=" << n << " split=" << split;
        EXPECT_EQ(hash3(algo, a, b, {}), expect);
        EXPECT_EQ(hash3(algo, {}, a, b), expect);
      }
    }
  }
}

TEST(HotPath, HardwareAndScalarBackendsAgree) {
  // With acceleration unavailable this degenerates to scalar-vs-scalar,
  // which still exercises the toggle plumbing.
  for (const auto algo : kAlgos) {
    for (std::size_t n : {std::size_t{0}, std::size_t{20}, std::size_t{55},
                          std::size_t{56}, std::size_t{256},
                          std::size_t{1000}}) {
      const Bytes data = pattern_bytes(n, 11);
      const Digest accelerated = hash(algo, data);
      Digest scalar;
      {
        const ScopedScalarCrypto force_scalar;
        scalar = hash(algo, data);
      }
      EXPECT_EQ(accelerated, scalar) << to_string(algo) << " n=" << n;
    }
  }
}

TEST(HotPath, TlsHasherMatchesOneShot) {
  for (const auto algo : kAlgos) {
    const Bytes data = pattern_bytes(300, 29);
    HasherCtx& ctx = tls_hasher(algo);
    ctx.update(data);
    EXPECT_EQ(ctx.finalize(), hash(algo, data));
    // Handed out reset: immediately reusable.
    HasherCtx& again = tls_hasher(algo);
    again.update(data);
    EXPECT_EQ(again.finalize(), hash(algo, data));
  }
}

TEST(HotPath, OneShotCounterMatchesStreaming) {
  // The fast path must count exactly like the streaming path: input bytes
  // (no padding), one finalization.
  for (const auto algo : kAlgos) {
    for (std::size_t n : {std::size_t{0}, std::size_t{30}, std::size_t{55},
                          std::size_t{56}, std::size_t{500}}) {
      const Bytes data = pattern_bytes(n, 1);
      HashOpCounts fast, streaming;
      {
        const ScopedHashOps ops;
        (void)hash(algo, data);
        fast = ops.delta();
      }
      {
        const ScopedHashOps ops;
        const auto hasher = make_hasher(algo);
        hasher->update(data);
        (void)hasher->finalize();
        streaming = ops.delta();
      }
      EXPECT_EQ(fast.hash_finalizations, streaming.hash_finalizations);
      EXPECT_EQ(fast.bytes_hashed, streaming.bytes_hashed);
      EXPECT_EQ(fast.hash_finalizations, 1u);
      EXPECT_EQ(fast.bytes_hashed, n);
    }
  }
}

TEST(HotPath, HmacKeyMatchesRfcHmac) {
  HmacDrbg rng(7);
  for (const auto algo : kAlgos) {
    for (std::size_t key_len : {std::size_t{1}, std::size_t{16},
                                std::size_t{20}, std::size_t{64},
                                std::size_t{100}}) {
      const Bytes key = rng.bytes(key_len);
      const HmacKey cached(algo, key);
      for (std::size_t n : {std::size_t{0}, std::size_t{40},
                            std::size_t{300}}) {
        const Bytes data = pattern_bytes(n, 5);
        const Digest expect = hmac(algo, key, data);
        EXPECT_EQ(cached.mac(data), expect)
            << to_string(algo) << " key=" << key_len << " n=" << n;
        EXPECT_TRUE(cached.verify(data, expect));
        Digest wrong = expect;
        Bytes flipped = wrong.bytes();
        flipped[0] ^= 1;
        EXPECT_FALSE(cached.verify(data, Digest{ByteView{flipped}}));
      }
    }
  }
}

TEST(HotPath, CachedHmacCounterParity) {
  // Per-MAC accounting must be identical to the from-scratch construction
  // (for keys up to one block; longer keys pay their pre-hash once at
  // construction instead of per call, a documented deviation).
  HmacDrbg rng(9);
  for (const auto algo : kAlgos) {
    // Within one block for every algo (16 bytes for AES-MMO): over-long
    // keys are exactly the documented deviation.
    const Bytes key = rng.bytes(digest_size(algo) > 16 ? 16 : digest_size(algo));
    const Bytes data = rng.bytes(333);
    const HmacKey cached(algo, key);
    HashOpCounts fresh, resumed;
    {
      const ScopedHashOps ops;
      (void)hmac(algo, key, data);
      fresh = ops.delta();
    }
    {
      const ScopedHashOps ops;
      (void)cached.mac(data);
      resumed = ops.delta();
    }
    EXPECT_EQ(resumed.hash_finalizations, fresh.hash_finalizations)
        << to_string(algo);
    EXPECT_EQ(resumed.bytes_hashed, fresh.bytes_hashed) << to_string(algo);
    EXPECT_EQ(fresh.hash_finalizations, 2u);
  }
}

TEST(HotPath, MacContextMatchesFreeFunctions) {
  HmacDrbg rng(11);
  for (const auto algo : kAlgos) {
    const Bytes key = rng.bytes(digest_size(algo));
    const Bytes long_key = rng.bytes(48);  // > Digest::kMaxSize for prefix
    const Bytes data = rng.bytes(200);
    for (const auto kind : {MacKind::kHmac, MacKind::kPrefix}) {
      const MacContext ctx(kind, algo, key);
      EXPECT_EQ(ctx.mac(data), mac(kind, algo, key, data)) << to_string(algo);
      EXPECT_TRUE(ctx.verify(data, mac(kind, algo, key, data)));
      const MacContext long_ctx(kind, algo, long_key);
      EXPECT_EQ(long_ctx.mac(data), mac(kind, algo, long_key, data));
    }
  }
}

TEST(HotPath, ConstantTimeCompareSemantics) {
  // Regression guard for the digest-comparison audit: ct_equals must agree
  // with operator== on every length combination, including empty digests.
  const Digest a{ByteView{pattern_bytes(20, 1)}};
  Digest b = a;
  EXPECT_TRUE(a.ct_equals(b));
  Bytes mut = a.bytes();
  mut[19] ^= 0x80;
  EXPECT_FALSE(a.ct_equals(Digest{ByteView{mut}}));
  EXPECT_FALSE(a.ct_equals(a.truncated(19)));  // length mismatch
  EXPECT_FALSE(a.ct_equals(Digest{}));
  EXPECT_TRUE(Digest{}.ct_equals(Digest{}));
}

}  // namespace
}  // namespace alpha::crypto
