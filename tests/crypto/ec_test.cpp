#include "crypto/ec.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

class EcCurveTest : public ::testing::TestWithParam<const EcCurve*> {};

INSTANTIATE_TEST_SUITE_P(Curves, EcCurveTest,
                         ::testing::Values(&EcCurve::secp160r1(),
                                           &EcCurve::p256()),
                         [](const auto& info) {
                           return info.param->name() == "P-256" ? "P256"
                                                                : "Secp160r1";
                         });

TEST_P(EcCurveTest, GeneratorOnCurve) {
  const EcCurve& c = *GetParam();
  EXPECT_TRUE(c.on_curve(c.generator()));
  EXPECT_FALSE(c.generator().infinity);
}

TEST_P(EcCurveTest, GeneratorHasStatedOrder) {
  const EcCurve& c = *GetParam();
  // n * G = infinity is the defining property of the subgroup order.
  EXPECT_TRUE(c.multiply(c.order(), c.generator()).infinity);
  // (n-1) * G = -G (not infinity).
  const EcPoint almost = c.multiply(c.order() - BigInt{1}, c.generator());
  EXPECT_FALSE(almost.infinity);
  EXPECT_EQ(almost.x, c.generator().x);
  // Adding G to (n-1)G closes the cycle.
  EXPECT_TRUE(c.add(almost, c.generator()).infinity);
}

TEST_P(EcCurveTest, GroupLaws) {
  const EcCurve& c = *GetParam();
  const EcPoint& g = c.generator();
  const EcPoint g2 = c.double_point(g);
  const EcPoint g3a = c.add(g2, g);
  const EcPoint g3b = c.add(g, g2);
  EXPECT_EQ(g3a, g3b);  // commutativity
  EXPECT_TRUE(c.on_curve(g2));
  EXPECT_TRUE(c.on_curve(g3a));
  // 2G + 2G == 4G == double(double(G))
  EXPECT_EQ(c.add(g2, g2), c.double_point(g2));
  // Identity element.
  EXPECT_EQ(c.add(g, EcPoint::at_infinity()), g);
  EXPECT_EQ(c.add(EcPoint::at_infinity(), g), g);
}

TEST_P(EcCurveTest, ScalarMultiplicationDistributes) {
  const EcCurve& c = *GetParam();
  const EcPoint& g = c.generator();
  // (5+7)G == 5G + 7G
  EXPECT_EQ(c.multiply(BigInt{12}, g),
            c.add(c.multiply(BigInt{5}, g), c.multiply(BigInt{7}, g)));
  // 2*(3G) == 6G
  EXPECT_EQ(c.double_point(c.multiply(BigInt{3}, g)),
            c.multiply(BigInt{6}, g));
}

TEST_P(EcCurveTest, EcdsaSignVerifyRoundtrip) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{1};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  EXPECT_TRUE(c.on_curve(key.pub.point));

  const auto msg = as_bytes("anchor: deadbeef, chains: 1024");
  const EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  EXPECT_TRUE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, sig));
  EXPECT_FALSE(ecdsa_verify(key.pub, HashAlgo::kSha1,
                            as_bytes("anchor: deadbeee, chains: 1024"), sig));
}

TEST_P(EcCurveTest, EcdsaSha256Roundtrip) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{2};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const auto msg = as_bytes("modern hash profile");
  const EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha256, msg, rng);
  EXPECT_TRUE(ecdsa_verify(key.pub, HashAlgo::kSha256, msg, sig));
}

TEST_P(EcCurveTest, TamperedSignatureRejected) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{3};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const auto msg = as_bytes("m");
  EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  sig.r = sig.r + BigInt{1};
  EXPECT_FALSE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, sig));
}

TEST_P(EcCurveTest, OutOfRangeSignatureRejected) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{4};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const auto msg = as_bytes("m");
  EXPECT_FALSE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg,
                            {BigInt{}, BigInt{1}}));
  EXPECT_FALSE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg,
                            {c.order(), BigInt{1}}));
}

TEST_P(EcCurveTest, WrongKeyRejected) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{5};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const EcdsaPrivateKey other = ecdsa_generate(c, rng);
  const auto msg = as_bytes("m");
  const EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  EXPECT_FALSE(ecdsa_verify(other.pub, HashAlgo::kSha1, msg, sig));
}

TEST_P(EcCurveTest, PublicKeyEncodeDecodeRoundtrip) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{6};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const Bytes encoded = key.pub.encode();
  EXPECT_EQ(encoded.size(), 1 + 2 * c.field_bytes());
  EXPECT_EQ(encoded[0], 0x04);
  const auto decoded = EcdsaPublicKey::decode(c, encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->point, key.pub.point);
}

TEST_P(EcCurveTest, DecodeRejectsOffCurvePoints) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{7};
  Bytes bad = ecdsa_generate(c, rng).pub.encode();
  bad[bad.size() - 1] ^= 1;  // perturb Y
  EXPECT_FALSE(EcdsaPublicKey::decode(c, bad).has_value());
  EXPECT_FALSE(EcdsaPublicKey::decode(c, Bytes{0x04, 1, 2}).has_value());
  EXPECT_FALSE(EcdsaPublicKey::decode(c, {}).has_value());
}

TEST_P(EcCurveTest, SignatureEncodeDecodeRoundtrip) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{8};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const auto msg = as_bytes("wire");
  const EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  const Bytes wire = sig.encode(c.order_bytes());
  EXPECT_EQ(wire.size(), 2 * c.order_bytes());
  const auto back = EcdsaSignature::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, *back));
}

TEST_P(EcCurveTest, RandomizedNonces) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng{9};
  const EcdsaPrivateKey key = ecdsa_generate(c, rng);
  const auto msg = as_bytes("same message");
  const EcdsaSignature s1 = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  const EcdsaSignature s2 = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  EXPECT_NE(s1.r, s2.r);
  EXPECT_TRUE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, s1));
  EXPECT_TRUE(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, s2));
}

TEST_P(EcCurveTest, JacobianMultiplyMatchesAffineChain) {
  // multiply() uses Jacobian coordinates internally; cross-check against a
  // pure affine repeated-addition ladder for a spread of scalars.
  const EcCurve& c = *GetParam();
  const EcPoint& g = c.generator();
  EcPoint affine_acc = EcPoint::at_infinity();
  for (std::uint64_t k = 1; k <= 40; ++k) {
    affine_acc = c.add(affine_acc, g);  // affine_acc = k*G via additions
    EXPECT_EQ(c.multiply(BigInt{k}, g), affine_acc) << "k=" << k;
  }
}

TEST_P(EcCurveTest, JacobianMultiplyRandomScalarsConsistent) {
  // (a+b)G == aG + bG for random a, b exercises all Jacobian branches.
  const EcCurve& c = *GetParam();
  HmacDrbg rng{0x7ac};
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::random_below(rng, c.order());
    const BigInt b = BigInt::random_below(rng, c.order());
    const EcPoint lhs = c.multiply((a + b) % c.order(), c.generator());
    const EcPoint rhs =
        c.add(c.multiply(a, c.generator()), c.multiply(b, c.generator()));
    EXPECT_EQ(lhs, rhs) << "i=" << i;
  }
}

// Known-answer check for P-256 scalar multiplication: 2G has a well-known
// x-coordinate (from public NIST/SEC test vectors).
TEST(P256KnownAnswerTest, TwoG) {
  const EcCurve& c = EcCurve::p256();
  const EcPoint g2 = c.double_point(c.generator());
  EXPECT_EQ(
      g2.x.to_hex(),
      "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(
      g2.y.to_hex(),
      "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

}  // namespace
}  // namespace alpha::crypto
