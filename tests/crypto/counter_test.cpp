#include "crypto/counter.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"

namespace alpha::crypto {
namespace {

TEST(HashOpCounterTest, CountsFinalizations) {
  const ScopedHashOps scope;
  (void)hash(HashAlgo::kSha1, as_bytes("a"));
  (void)hash(HashAlgo::kSha1, as_bytes("b"));
  (void)hash(HashAlgo::kSha256, as_bytes("c"));
  EXPECT_EQ(scope.delta().hash_finalizations, 3u);
}

TEST(HashOpCounterTest, CountsInputBytesWithoutPadding) {
  const ScopedHashOps scope;
  const Bytes data(100, 0xaa);
  (void)hash(HashAlgo::kSha1, data);
  EXPECT_EQ(scope.delta().bytes_hashed, 100u);
}

TEST(HashOpCounterTest, MmoCountsToo) {
  const ScopedHashOps scope;
  const Bytes data(84, 0x11);
  (void)hash(HashAlgo::kMmo128, data);
  const auto d = scope.delta();
  EXPECT_EQ(d.hash_finalizations, 1u);
  EXPECT_EQ(d.bytes_hashed, 84u);
}

TEST(HashOpCounterTest, NestedScopesSeeInnerOps) {
  const ScopedHashOps outer;
  (void)hash(HashAlgo::kSha1, as_bytes("x"));
  {
    const ScopedHashOps inner;
    (void)hash(HashAlgo::kSha1, as_bytes("y"));
    EXPECT_EQ(inner.delta().hash_finalizations, 1u);
  }
  EXPECT_EQ(outer.delta().hash_finalizations, 2u);
}

TEST(HashOpCounterTest, ResetClears) {
  (void)hash(HashAlgo::kSha1, as_bytes("x"));
  HashOpCounter::reset();
  EXPECT_EQ(HashOpCounter::snapshot().hash_finalizations, 0u);
  EXPECT_EQ(HashOpCounter::snapshot().bytes_hashed, 0u);
}

}  // namespace
}  // namespace alpha::crypto
