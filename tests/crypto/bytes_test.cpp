#include "crypto/bytes.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

TEST(BytesTest, ToHexEmpty) { EXPECT_EQ(to_hex({}), ""); }

TEST(BytesTest, ToHexKnown) {
  const Bytes data{0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(to_hex(data), "deadbeef007f");
}

TEST(BytesTest, FromHexRoundtrip) {
  const Bytes data{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(BytesTest, FromHexUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, CtEqualBasics) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, ConcatOrdersParts) {
  const Bytes a{1, 2};
  const Bytes b{3};
  const Bytes c{4, 5, 6};
  EXPECT_EQ(concat({ByteView{a}, ByteView{b}, ByteView{c}}),
            (Bytes{1, 2, 3, 4, 5, 6}));
}

TEST(BytesTest, ConcatEmptyParts) {
  EXPECT_TRUE(concat({}).empty());
  const Bytes a{9};
  EXPECT_EQ(concat({ByteView{}, ByteView{a}, ByteView{}}), (Bytes{9}));
}

TEST(BytesTest, AsBytesExcludesNul) {
  const auto v = as_bytes("S1");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 'S');
  EXPECT_EQ(v[1], '1');
}

TEST(BytesTest, AppendExtends) {
  Bytes dst{1};
  const Bytes src{2, 3};
  append(dst, src);
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace alpha::crypto
