#include "crypto/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace alpha::crypto {
namespace {

TEST(HmacDrbgTest, DeterministicForSameSeed) {
  HmacDrbg a{42u};
  HmacDrbg b{42u};
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(HmacDrbgTest, DifferentSeedsDiffer) {
  HmacDrbg a{1u};
  HmacDrbg b{2u};
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, StreamAdvances) {
  HmacDrbg a{7u};
  const Bytes first = a.bytes(32);
  const Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbgTest, SplitRequestsMatchSingleRequest) {
  HmacDrbg a{99u};
  HmacDrbg b{99u};
  Bytes whole = a.bytes(48);
  // NOTE: the DRBG reseeds its internal state after each generate call, so
  // two 24-byte requests legitimately differ from one 48-byte request. What
  // must hold is determinism across instances making identical call patterns.
  Bytes w1 = b.bytes(24);
  Bytes w2 = b.bytes(24);
  HmacDrbg c{99u};
  EXPECT_EQ(c.bytes(24), w1);
  EXPECT_EQ(c.bytes(24), w2);
  HmacDrbg d{99u};
  EXPECT_EQ(d.bytes(48), whole);
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  HmacDrbg a{5u};
  HmacDrbg b{5u};
  const Bytes extra{1, 2, 3};
  b.reseed(extra);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbgTest, ByteDistributionIsPlausible) {
  // Crude sanity: 4096 bytes should hit many distinct values.
  HmacDrbg rng{1234u};
  const Bytes data = rng.bytes(4096);
  std::set<std::uint8_t> distinct(data.begin(), data.end());
  EXPECT_GT(distinct.size(), 200u);
}

TEST(RandomSourceTest, UniformStaysBelowBound) {
  HmacDrbg rng{77u};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RandomSourceTest, UniformOneIsAlwaysZero) {
  HmacDrbg rng{3u};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RandomSourceTest, UniformRejectsZeroBound) {
  HmacDrbg rng{3u};
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(RandomSourceTest, UniformCoversRange) {
  HmacDrbg rng{8u};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SystemRandomTest, FillsRequestedBytes) {
  SystemRandom rng;
  const Bytes a = rng.bytes(32);
  const Bytes b = rng.bytes(32);
  EXPECT_EQ(a.size(), 32u);
  // Overwhelmingly likely distinct.
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace alpha::crypto
