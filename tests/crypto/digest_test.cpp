#include "crypto/digest.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace alpha::crypto {
namespace {

TEST(DigestTest, DefaultIsEmpty) {
  const Digest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DigestTest, StoresBytes) {
  const Bytes raw{1, 2, 3, 4, 5};
  const Digest d{ByteView{raw}};
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.bytes(), raw);
  EXPECT_EQ(d.hex(), "0102030405");
}

TEST(DigestTest, RejectsOversize) {
  const Bytes raw(33, 0);
  EXPECT_THROW(Digest{ByteView{raw}}, std::length_error);
}

TEST(DigestTest, MaxSizeAccepted) {
  const Bytes raw(32, 0xab);
  const Digest d{ByteView{raw}};
  EXPECT_EQ(d.size(), 32u);
}

TEST(DigestTest, FromHex) {
  const Digest d = Digest::from_hex("deadbeef");
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.hex(), "deadbeef");
}

TEST(DigestTest, EqualityIncludesLength) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3, 0};
  EXPECT_NE(Digest{ByteView{a}}, Digest{ByteView{b}});
  EXPECT_EQ(Digest{ByteView{a}}, Digest{ByteView{a}});
}

TEST(DigestTest, CtEqualsMatchesEquality) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 4};
  EXPECT_TRUE(Digest{ByteView{a}}.ct_equals(Digest{ByteView{a}}));
  EXPECT_FALSE(Digest{ByteView{a}}.ct_equals(Digest{ByteView{b}}));
}

TEST(DigestTest, Truncation) {
  const Bytes raw{1, 2, 3, 4, 5, 6, 7, 8};
  const Digest d{ByteView{raw}};
  const Digest t = d.truncated(4);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.hex(), "01020304");
  EXPECT_THROW(d.truncated(9), std::length_error);
}

TEST(DigestTest, OrderingIsTotal) {
  const Bytes a{1, 2};
  const Bytes b{1, 3};
  EXPECT_LT(Digest{ByteView{a}}, Digest{ByteView{b}});
  EXPECT_GT(Digest{ByteView{b}}, Digest{ByteView{a}});
}

TEST(DigestTest, UsableInUnorderedContainers) {
  std::unordered_set<Digest, DigestHasher> set;
  const Bytes a{1, 2, 3};
  const Bytes b{4, 5, 6};
  set.insert(Digest{ByteView{a}});
  set.insert(Digest{ByteView{b}});
  set.insert(Digest{ByteView{a}});  // duplicate
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Digest{ByteView{a}}));
}

}  // namespace
}  // namespace alpha::crypto
