#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

// Keygen at 512 bits keeps the suite fast; the construction is size-generic.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HmacDrbg rng{0xa1fau};
    key_ = new RsaPrivateKey(rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }

  static const RsaPrivateKey& key() { return *key_; }

 private:
  static RsaPrivateKey* key_;
};

RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyStructure) {
  EXPECT_EQ(key().pub.n.bit_length(), 512u);
  EXPECT_EQ(key().pub.e, BigInt{65537});
  EXPECT_EQ(key().p * key().q, key().pub.n);
  EXPECT_GT(key().p, key().q);
  // d*e = 1 mod (p-1)(q-1)
  const BigInt phi = (key().p - BigInt{1}) * (key().q - BigInt{1});
  EXPECT_TRUE(((key().d * key().pub.e) % phi).is_one());
  // CRT parameters
  EXPECT_EQ(key().dp, key().d % (key().p - BigInt{1}));
  EXPECT_EQ(key().dq, key().d % (key().q - BigInt{1}));
  EXPECT_TRUE(((key().qinv * key().q) % key().p).is_one());
}

TEST_F(RsaTest, SignVerifyRoundtripSha1) {
  const auto msg = as_bytes("hash chain anchor: deadbeef");
  const Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  EXPECT_EQ(sig.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(RsaTest, SignVerifyRoundtripSha256) {
  const auto msg = as_bytes("protected bootstrap payload");
  const Bytes sig = rsa_sign(key(), HashAlgo::kSha256, msg);
  EXPECT_TRUE(rsa_verify(key().pub, HashAlgo::kSha256, msg, sig));
}

TEST_F(RsaTest, TamperedMessageRejected) {
  const auto msg = as_bytes("original");
  const Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  EXPECT_FALSE(rsa_verify(key().pub, HashAlgo::kSha1, as_bytes("origina1"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  const auto msg = as_bytes("original");
  Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(RsaTest, WrongAlgorithmRejected) {
  const auto msg = as_bytes("original");
  const Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  EXPECT_FALSE(rsa_verify(key().pub, HashAlgo::kSha256, msg, sig));
}

TEST_F(RsaTest, WrongLengthSignatureRejected) {
  const auto msg = as_bytes("original");
  Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(rsa_verify(key().pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(RsaTest, WrongKeyRejected) {
  HmacDrbg rng{777u};
  const RsaPrivateKey other = rsa_generate(rng, 512);
  const auto msg = as_bytes("original");
  const Bytes sig = rsa_sign(key(), HashAlgo::kSha1, msg);
  EXPECT_FALSE(rsa_verify(other.pub, HashAlgo::kSha1, msg, sig));
}

TEST_F(RsaTest, DeterministicSignature) {
  // PKCS#1 v1.5 signing is deterministic: same key + message => same bytes.
  const auto msg = as_bytes("idempotent");
  EXPECT_EQ(rsa_sign(key(), HashAlgo::kSha1, msg),
            rsa_sign(key(), HashAlgo::kSha1, msg));
}

TEST(RsaKeygenTest, RejectsBadSizes) {
  HmacDrbg rng{1u};
  EXPECT_THROW(rsa_generate(rng, 256), std::invalid_argument);
  EXPECT_THROW(rsa_generate(rng, 513), std::invalid_argument);
}

TEST(RsaKeygenTest, DeterministicFromSeed) {
  HmacDrbg a{42u}, b{42u};
  const RsaPrivateKey k1 = rsa_generate(a, 512);
  const RsaPrivateKey k2 = rsa_generate(b, 512);
  EXPECT_EQ(k1.pub.n, k2.pub.n);
  EXPECT_EQ(k1.d, k2.d);
}

TEST(RsaKeygenTest, ModulusTooSmallForDigestThrows) {
  HmacDrbg rng{55u};
  const RsaPrivateKey k = rsa_generate(rng, 512);
  // SHA-256 DigestInfo (51 bytes + 11) fits in 64-byte modulus: boundary ok.
  const Bytes sig = rsa_sign(k, HashAlgo::kSha256, as_bytes("x"));
  EXPECT_TRUE(rsa_verify(k.pub, HashAlgo::kSha256, as_bytes("x"), sig));
}

}  // namespace
}  // namespace alpha::crypto
