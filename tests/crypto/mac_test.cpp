#include "crypto/mac.hpp"

#include <gtest/gtest.h>

namespace alpha::crypto {
namespace {

// RFC 2202 HMAC-SHA1 test vectors.
TEST(HmacTest, Rfc2202Sha1Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac(HashAlgo::kSha1, key, as_bytes("Hi There")).hex(),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacTest, Rfc2202Sha1Case2) {
  EXPECT_EQ(hmac(HashAlgo::kSha1, as_bytes("Jefe"),
                 as_bytes("what do ya want for nothing?"))
                .hex(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc2202Sha1Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac(HashAlgo::kSha1, key, data).hex(),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacTest, Rfc2202Sha1Case4) {
  Bytes key;
  for (std::uint8_t b = 0x01; b <= 0x19; ++b) key.push_back(b);
  const Bytes data(50, 0xcd);
  EXPECT_EQ(hmac(HashAlgo::kSha1, key, data).hex(),
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

TEST(HmacTest, Rfc2202Sha1Case7) {
  const Bytes key(80, 0xaa);
  EXPECT_EQ(hmac(HashAlgo::kSha1, key,
                 as_bytes("Test Using Larger Than Block-Size Key and Larger "
                          "Than One Block-Size Data"))
                .hex(),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
}

TEST(HmacTest, Rfc2202Sha1LongKey) {
  const Bytes key(80, 0xaa);  // key longer than block size -> hashed first
  EXPECT_EQ(hmac(HashAlgo::kSha1, key,
                 as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))
                .hex(),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacTest, Rfc4231Sha256Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac(HashAlgo::kSha256, key, as_bytes("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Sha256Case2) {
  EXPECT_EQ(hmac(HashAlgo::kSha256, as_bytes("Jefe"),
                 as_bytes("what do ya want for nothing?"))
                .hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, MmoHmacWorks) {
  // No standard vectors for HMAC over AES-MMO; check structural properties.
  const Bytes key{1, 2, 3, 4};
  const Digest m1 = hmac(HashAlgo::kMmo128, key, as_bytes("msg"));
  const Digest m2 = hmac(HashAlgo::kMmo128, key, as_bytes("msg"));
  const Digest m3 = hmac(HashAlgo::kMmo128, key, as_bytes("msh"));
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);
  EXPECT_EQ(m1.size(), 16u);
}

TEST(PrefixMacTest, EqualsHashOfKeyConcatMessage) {
  const Bytes key{9, 8, 7};
  const Bytes msg{1, 2, 3};
  EXPECT_EQ(prefix_mac(HashAlgo::kSha1, key, msg),
            hash2(HashAlgo::kSha1, key, msg));
}

TEST(MacDispatchTest, KindSelectsConstruction) {
  const Bytes key{1};
  const Bytes msg{2};
  EXPECT_EQ(mac(MacKind::kHmac, HashAlgo::kSha1, key, msg),
            hmac(HashAlgo::kSha1, key, msg));
  EXPECT_EQ(mac(MacKind::kPrefix, HashAlgo::kSha1, key, msg),
            prefix_mac(HashAlgo::kSha1, key, msg));
  EXPECT_NE(mac(MacKind::kHmac, HashAlgo::kSha1, key, msg),
            mac(MacKind::kPrefix, HashAlgo::kSha1, key, msg));
}

TEST(MacVerifyTest, AcceptsGoodRejectsTampered) {
  const Bytes key{0x10, 0x20};
  const Bytes msg{0x30, 0x40, 0x50};
  for (const MacKind kind : {MacKind::kHmac, MacKind::kPrefix}) {
    for (const HashAlgo algo :
         {HashAlgo::kSha1, HashAlgo::kSha256, HashAlgo::kMmo128}) {
      const Digest tag = mac(kind, algo, key, msg);
      EXPECT_TRUE(verify_mac(kind, algo, key, msg, tag));
      Bytes tampered = msg;
      tampered[0] ^= 1;
      EXPECT_FALSE(verify_mac(kind, algo, key, tampered, tag));
      Bytes wrong_key = key;
      wrong_key[0] ^= 1;
      EXPECT_FALSE(verify_mac(kind, algo, wrong_key, msg, tag));
    }
  }
}

TEST(MacTest, KeyedDifferently) {
  // Different hash-chain elements as keys must produce unrelated MACs.
  const Bytes k1(20, 0x11);
  const Bytes k2(20, 0x12);
  const ByteView msg = as_bytes("location update: node 7 -> cell 3");
  EXPECT_NE(hmac(HashAlgo::kSha1, k1, msg), hmac(HashAlgo::kSha1, k2, msg));
}

}  // namespace
}  // namespace alpha::crypto
