#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace alpha::crypto {
namespace {

std::string sha1_hex(ByteView data) {
  Sha1 h;
  h.update(data);
  return h.finalize().hex();
}

// FIPS 180 / RFC 3174 standard vectors.
TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(sha1_hex({}), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, SingleChar) {
  EXPECT_EQ(sha1_hex(as_bytes("a")),
            "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(sha1_hex(as_bytes("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      sha1_hex(as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(h.finalize().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-overflow path (pad block spills).
  const std::string block(64, 'x');
  Sha1 h;
  h.update(as_bytes(block));
  const Digest one_shot = h.finalize();
  h.reset();
  h.update(as_bytes(block.substr(0, 63)));
  h.update(as_bytes(block.substr(63)));
  EXPECT_EQ(h.finalize(), one_shot);
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog multiple times to span "
      "several SHA-1 blocks and exercise buffered updates thoroughly.";
  Sha1 whole;
  whole.update(as_bytes(msg));
  const Digest expected = whole.finalize();

  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 h;
  h.update(as_bytes("garbage"));
  (void)h.finalize();
  h.reset();
  h.update(as_bytes("abc"));
  EXPECT_EQ(h.finalize().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, DigestSizeIs20) {
  Sha1 h;
  EXPECT_EQ(h.digest_size(), 20u);
  h.update(as_bytes("x"));
  EXPECT_EQ(h.finalize().size(), 20u);
}

// Length extension of padding handling: inputs of every length 0..130 must
// produce distinct digests (sanity of padding across boundary lengths).
TEST(Sha1Test, PaddingBoundarySweep) {
  std::set<std::string> seen;
  for (std::size_t len = 0; len <= 130; ++len) {
    const std::string msg(len, 'a');
    Sha1 h;
    h.update(as_bytes(msg));
    const auto hex = h.finalize().hex();
    EXPECT_TRUE(seen.insert(hex).second) << "duplicate digest at len " << len;
  }
}

}  // namespace
}  // namespace alpha::crypto
