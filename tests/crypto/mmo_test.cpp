#include "crypto/mmo.hpp"

#include <gtest/gtest.h>

#include <set>

#include "crypto/aes128.hpp"

namespace alpha::crypto {
namespace {

// Reference implementation of one MMO compression step, used to verify the
// production padding/chaining logic independently.
void mmo_compress(std::uint8_t state[16], const std::uint8_t block[16]) {
  const Aes128 cipher{ByteView{state, 16}};
  std::uint8_t enc[16];
  cipher.encrypt_block(block, enc);
  for (int i = 0; i < 16; ++i) state[i] = static_cast<std::uint8_t>(enc[i] ^ block[i]);
}

TEST(MmoTest, DigestSizeIs16) {
  MmoHash h;
  EXPECT_EQ(h.digest_size(), 16u);
  h.update(as_bytes("x"));
  EXPECT_EQ(h.finalize().size(), 16u);
}

TEST(MmoTest, MatchesReferenceSingleBlockInput) {
  // 7-byte message fits one padded block:
  // block = msg | 0x80 | 0x00.. | 64-bit bit length.
  const Bytes msg{'p', 'a', 'y', 'l', 'o', 'a', 'd'};
  std::uint8_t block[16] = {};
  std::copy(msg.begin(), msg.end(), block);
  block[7] = 0x80;
  const std::uint64_t bit_len = msg.size() * 8;
  for (int i = 0; i < 8; ++i) {
    block[8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  std::uint8_t state[16] = {};
  mmo_compress(state, block);

  MmoHash h;
  h.update(msg);
  EXPECT_EQ(h.finalize(), Digest(ByteView{state, 16}));
}

TEST(MmoTest, MatchesReferenceExactBlockInput) {
  // 16-byte message: one data block plus a full padding block.
  Bytes msg(16);
  for (int i = 0; i < 16; ++i) msg[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);

  std::uint8_t state[16] = {};
  mmo_compress(state, msg.data());
  std::uint8_t pad[16] = {0x80};
  const std::uint64_t bit_len = 128;
  for (int i = 0; i < 8; ++i) {
    pad[8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  mmo_compress(state, pad);

  MmoHash h;
  h.update(msg);
  EXPECT_EQ(h.finalize(), Digest(ByteView{state, 16}));
}

TEST(MmoTest, Deterministic) {
  MmoHash a, b;
  a.update(as_bytes("sensor reading 42"));
  b.update(as_bytes("sensor reading 42"));
  EXPECT_EQ(a.finalize(), b.finalize());
}

TEST(MmoTest, IncrementalMatchesOneShot) {
  const std::string msg(84, 'z');  // the paper's 84-byte WSN input size
  MmoHash whole;
  whole.update(as_bytes(msg));
  const Digest expected = whole.finalize();

  for (std::size_t split = 0; split <= msg.size(); split += 5) {
    MmoHash h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(MmoTest, DistinctAcrossLengths) {
  std::set<std::string> seen;
  for (std::size_t len = 0; len <= 48; ++len) {
    MmoHash h;
    const std::string msg(len, 'a');
    h.update(as_bytes(msg));
    EXPECT_TRUE(seen.insert(h.finalize().hex()).second)
        << "duplicate digest at len " << len;
  }
}

TEST(MmoTest, LengthPaddingPreventsTrivialCollision) {
  // Without MD strengthening, "" and "\x80..." style inputs could collide.
  MmoHash a, b;
  a.update({});
  Bytes eighty{0x80};
  b.update(eighty);
  EXPECT_NE(a.finalize(), b.finalize());
}

TEST(MmoTest, ResetAllowsReuse) {
  MmoHash h;
  h.update(as_bytes("first"));
  const Digest d1 = h.finalize();
  h.reset();
  h.update(as_bytes("first"));
  EXPECT_EQ(h.finalize(), d1);
}

}  // namespace
}  // namespace alpha::crypto
