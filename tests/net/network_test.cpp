#include "net/network.hpp"

#include <gtest/gtest.h>

namespace alpha::net {
namespace {

struct Inbox {
  std::vector<std::pair<NodeId, Bytes>> frames;
  ReceiveFn handler() {
    return [this](NodeId from, ByteView data) {
      frames.emplace_back(from, Bytes(data.begin(), data.end()));
    };
  }
};

TEST(NetworkTest, DeliversFrameWithLatency) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.latency = 5 * kMillisecond, .jitter = 0});

  EXPECT_TRUE(net.send(1, 2, Bytes{0xab}));
  EXPECT_TRUE(inbox.frames.empty());
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 1u);
  EXPECT_EQ(inbox.frames[0].first, 1u);
  EXPECT_EQ(inbox.frames[0].second, Bytes{0xab});
  EXPECT_GE(sim.now(), 5 * kMillisecond);
}

TEST(NetworkTest, NoLinkNoDelivery) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  net.add_node(2);
  EXPECT_FALSE(net.send(1, 2, Bytes{1}));
}

TEST(NetworkTest, MtuDropsOversizeFrames) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.mtu = 100});

  EXPECT_FALSE(net.send(1, 2, Bytes(101, 0)));
  EXPECT_TRUE(net.send(1, 2, Bytes(100, 0)));
  sim.run();
  EXPECT_EQ(inbox.frames.size(), 1u);
  EXPECT_EQ(net.link_stats(1, 2).frames_oversize, 1u);
}

TEST(NetworkTest, LossRateDropsApproximateFraction) {
  Simulator sim;
  Network net{sim, /*seed=*/7};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.loss_rate = 0.3});

  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) net.send(1, 2, Bytes{1});
  sim.run();
  const auto& stats = net.link_stats(1, 2);
  EXPECT_EQ(stats.frames_sent, static_cast<std::uint64_t>(kFrames));
  const double loss =
      static_cast<double>(stats.frames_lost) / static_cast<double>(kFrames);
  EXPECT_NEAR(loss, 0.3, 0.05);
  EXPECT_EQ(inbox.frames.size(), stats.frames_delivered);
}

TEST(NetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Network net{sim, seed};
    Inbox inbox;
    net.add_node(1);
    net.add_node(2, inbox.handler());
    net.add_link(1, 2, {.loss_rate = 0.5});
    for (int i = 0; i < 100; ++i) net.send(1, 2, Bytes{static_cast<std::uint8_t>(i)});
    sim.run();
    return inbox.frames.size();
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(NetworkTest, BandwidthSerializesBackToBackFrames) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  // 1 Mbit/s: a 1250-byte frame takes 10 ms to serialize.
  net.add_link(1, 2, {.latency = 0, .jitter = 0, .bandwidth_bps = 1'000'000,
                      .mtu = 2000});

  net.send(1, 2, Bytes(1250, 0));
  net.send(1, 2, Bytes(1250, 0));
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 2u);
  // Second frame queues behind the first: ~20 ms total.
  EXPECT_GE(sim.now(), 19 * kMillisecond);
  EXPECT_LE(sim.now(), 21 * kMillisecond);
}

TEST(NetworkTest, JitterVariesDelay) {
  Simulator sim;
  Network net{sim, 3};
  std::vector<SimTime> arrivals;
  net.add_node(1);
  net.add_node(2, [&](NodeId, ByteView) { arrivals.push_back(sim.now()); });
  net.add_link(1, 2, {.latency = kMillisecond, .jitter = 10 * kMillisecond,
                      .bandwidth_bps = 0xffffffff});

  // Send spaced out so serialization queueing does not interfere.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * kSecond, [&net] {
      net.send(1, 2, Bytes{1});
    });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 20u);
  std::set<SimTime> offsets;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    offsets.insert(arrivals[i] - static_cast<SimTime>(i) * kSecond);
  }
  EXPECT_GT(offsets.size(), 5u);  // delays vary
}

TEST(NetworkTest, RouteFindsShortestPath) {
  Simulator sim;
  Network net{sim};
  for (NodeId id = 1; id <= 6; ++id) net.add_node(id);
  // 1-2-3-6 (3 hops) and 1-4-5-6 with shortcut 1-5 (2 hops via 5).
  net.add_link(1, 2);
  net.add_link(2, 3);
  net.add_link(3, 6);
  net.add_link(1, 4);
  net.add_link(4, 5);
  net.add_link(5, 6);
  net.add_link(1, 5);

  const auto path = net.route(1, 6);
  EXPECT_EQ(path, (std::vector<NodeId>{1, 5, 6}));
}

TEST(NetworkTest, RouteUnreachableIsEmpty) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  net.add_node(2);
  EXPECT_TRUE(net.route(1, 2).empty());
  EXPECT_EQ(net.route(1, 1), (std::vector<NodeId>{1}));
}

TEST(NetworkTest, NeighborsListed) {
  Simulator sim;
  Network net{sim};
  for (NodeId id = 1; id <= 4; ++id) net.add_node(id);
  net.add_link(1, 2);
  net.add_link(1, 3);
  const auto n = net.neighbors(1);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_TRUE(net.neighbors(4).empty());
}

TEST(NetworkTest, DuplicateNodeThrows) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  EXPECT_THROW(net.add_node(1), std::invalid_argument);
}

TEST(NetworkTest, BadLinkEndpointsThrow) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  EXPECT_THROW(net.add_link(1, 2), std::invalid_argument);
  EXPECT_THROW(net.add_link(1, 1), std::invalid_argument);
}

TEST(NetworkTest, TracerSeesEveryFate) {
  Simulator sim;
  Network net{sim, /*seed=*/5};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.loss_rate = 0.5, .mtu = 100});

  std::map<Network::FrameFate, int> fates;
  net.set_tracer([&](const Network::TraceRecord& rec) { ++fates[rec.fate]; });

  for (int i = 0; i < 200; ++i) net.send(1, 2, Bytes(10, 0));
  net.send(1, 2, Bytes(200, 0));  // oversize
  net.send(1, 3, Bytes(1, 0));    // no such link
  sim.run();

  EXPECT_GT(fates[Network::FrameFate::kDelivered], 0);
  EXPECT_GT(fates[Network::FrameFate::kLost], 0);
  EXPECT_EQ(fates[Network::FrameFate::kOversize], 1);
  EXPECT_EQ(fates[Network::FrameFate::kNoLink], 1);
  EXPECT_EQ(fates[Network::FrameFate::kDelivered] +
                fates[Network::FrameFate::kLost],
            200);
  // Delivered records carry a future delivery time.
  net.set_tracer([&](const Network::TraceRecord& rec) {
    if (rec.fate == Network::FrameFate::kDelivered) {
      EXPECT_GE(rec.delivery_at, rec.sent_at);
    }
  });
  net.send(1, 2, Bytes(10, 0));
  sim.run();
}

TEST(NetworkTest, TotalStatsAggregates) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_node(3, inbox.handler());
  net.add_link(1, 2);
  net.add_link(1, 3);
  net.send(1, 2, Bytes(10, 0));
  net.send(1, 3, Bytes(20, 0));
  sim.run();
  const auto total = net.total_stats();
  EXPECT_EQ(total.frames_delivered, 2u);
  EXPECT_EQ(total.bytes_delivered, 30u);
}

// ---- Adversarial fault layer ----

TEST(NetworkFaultTest, DuplicationDeliversExtraCopies) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2);
  FaultConfig faults;
  faults.duplicate_rate = 1.0;
  net.set_link_faults(1, 2, faults);

  for (int i = 0; i < 5; ++i) net.send(1, 2, Bytes{std::uint8_t(i)});
  sim.run();
  EXPECT_EQ(inbox.frames.size(), 10u);  // every frame arrives twice
  EXPECT_EQ(net.link_stats(1, 2).frames_duplicated, 5u);
  EXPECT_EQ(net.link_stats(1, 2).frames_delivered, 5u);
}

TEST(NetworkFaultTest, CorruptionFlipsBitsButKeepsLength) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2);
  FaultConfig faults;
  faults.corrupt_rate = 1.0;
  faults.corrupt_max_bits = 3;
  net.set_link_faults(1, 2, faults);

  const Bytes original(32, 0x5a);
  net.send(1, 2, original);
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 1u);
  const Bytes& received = inbox.frames[0].second;
  EXPECT_EQ(received.size(), original.size());
  EXPECT_NE(received, original);
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += __builtin_popcount(original[i] ^ received[i]);
  }
  EXPECT_GE(flipped_bits, 1);
  EXPECT_LE(flipped_bits, 3);
  EXPECT_EQ(net.link_stats(1, 2).frames_corrupted, 1u);
}

TEST(NetworkFaultTest, ReorderingLetsLaterFramesOvertake) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.latency = 1 * kMillisecond, .jitter = 0,
                      .bandwidth_bps = 1'000'000'000});
  FaultConfig faults;
  faults.reorder_rate = 1.0;
  faults.reorder_window = 100 * kMillisecond;
  net.set_link_faults(1, 2, faults);

  net.send(1, 2, Bytes{1});  // held back by up to 100 ms
  net.set_link_faults(1, 2, FaultConfig{});
  net.send(1, 2, Bytes{2});  // sails through at ~1 ms
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 2u);
  EXPECT_EQ(inbox.frames[0].second, Bytes{2});
  EXPECT_EQ(inbox.frames[1].second, Bytes{1});
  EXPECT_EQ(net.link_stats(1, 2).frames_reordered, 1u);
}

TEST(NetworkFaultTest, PartitionSwallowsFramesUntilHealed) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2);

  net.schedule_partition(1, 2, 10 * kMillisecond, 20 * kMillisecond);
  EXPECT_TRUE(net.link_up(1, 2));
  net.send(1, 2, Bytes{1});  // before the cut: delivered

  sim.run_until(15 * kMillisecond);
  EXPECT_FALSE(net.link_up(1, 2));
  // send() still returns true: the sender cannot tell partition from loss.
  EXPECT_TRUE(net.send(1, 2, Bytes{2}));

  sim.run_until(40 * kMillisecond);
  EXPECT_TRUE(net.link_up(1, 2));
  net.send(1, 2, Bytes{3});
  sim.run();

  ASSERT_EQ(inbox.frames.size(), 2u);
  EXPECT_EQ(inbox.frames[0].second, Bytes{1});
  EXPECT_EQ(inbox.frames[1].second, Bytes{3});
  EXPECT_EQ(net.link_stats(1, 2).frames_link_down, 1u);
}

TEST(NetworkFaultTest, BurstLossClustersDrops) {
  Simulator sim;
  Network net{sim, /*seed=*/11};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.latency = 1, .jitter = 0});
  FaultConfig faults;
  faults.burst = BurstLossConfig{/*p_enter_bad=*/0.05, /*p_exit_bad=*/0.2,
                                 /*loss_good=*/0.0, /*loss_bad=*/1.0};
  net.set_link_faults(1, 2, faults);

  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) net.send(1, 2, Bytes{1});
  sim.run();
  const auto& stats = net.link_stats(1, 2);
  EXPECT_EQ(stats.frames_lost + stats.frames_delivered,
            static_cast<std::uint64_t>(kFrames));
  // Loss happened, but the good state let most frames through; with these
  // parameters the stationary bad-state share is 0.05/(0.05+0.2) = 20%.
  EXPECT_GT(stats.frames_lost, kFrames / 10);
  EXPECT_LT(stats.frames_lost, kFrames / 2);
}

TEST(NetworkFaultTest, ChaosScheduleReplaysBitForBitPerSeed) {
  const auto run = [](std::uint64_t chaos_seed) {
    Simulator sim;
    Network net{sim, /*seed=*/3};
    net.set_chaos_seed(chaos_seed);
    Inbox inbox;
    net.add_node(1);
    net.add_node(2, inbox.handler());
    net.add_link(1, 2, {.latency = 1 * kMillisecond, .jitter = 2});
    FaultConfig faults;
    faults.duplicate_rate = 0.2;
    faults.corrupt_rate = 0.2;
    faults.reorder_rate = 0.2;
    faults.burst = BurstLossConfig{};
    net.set_link_faults(1, 2, faults);
    std::vector<std::pair<SimTime, int>> trace;
    net.set_tracer([&](const Network::TraceRecord& r) {
      trace.emplace_back(r.delivery_at, static_cast<int>(r.fate));
    });
    for (int i = 0; i < 500; ++i) net.send(1, 2, Bytes(8, std::uint8_t(i)));
    sim.run();
    return std::make_pair(trace, inbox.frames);
  };

  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // payload bytes incl. corruption patterns
  const auto c = run(43);
  EXPECT_NE(a.first, c.first);  // different seed, different schedule
}

TEST(NetworkFaultTest, EnablingFaultsDoesNotPerturbBenignStream) {
  // The benign jitter/loss draws must be identical with and without a fault
  // schedule installed: faults draw from their own chaos stream.
  const auto run = [](bool with_faults) {
    Simulator sim;
    Network net{sim, /*seed=*/21};
    Inbox inbox;
    net.add_node(1);
    net.add_node(2, inbox.handler());
    net.add_link(1, 2, {.latency = 1 * kMillisecond,
                        .jitter = 5 * kMillisecond, .loss_rate = 0.3});
    if (with_faults) {
      FaultConfig faults;
      faults.duplicate_rate = 0.5;
      net.set_link_faults(1, 2, faults);
    }
    std::vector<std::pair<SimTime, int>> trace;
    net.set_tracer([&](const Network::TraceRecord& r) {
      if (r.fate != Network::FrameFate::kDuplicated) {
        trace.emplace_back(r.delivery_at, static_cast<int>(r.fate));
      }
    });
    for (int i = 0; i < 300; ++i) net.send(1, 2, Bytes{std::uint8_t(i)});
    sim.run();
    return trace;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(NetworkFaultTest, FaultApiRejectsUnknownLinks) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  net.add_node(2);
  EXPECT_THROW(net.set_link_faults(1, 2, FaultConfig{}),
               std::invalid_argument);
  EXPECT_THROW(net.set_link_up(1, 2, false), std::invalid_argument);
  EXPECT_THROW(net.schedule_partition(1, 2, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)net.link_up(1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace alpha::net
