#include "net/network.hpp"

#include <gtest/gtest.h>

namespace alpha::net {
namespace {

struct Inbox {
  std::vector<std::pair<NodeId, Bytes>> frames;
  ReceiveFn handler() {
    return [this](NodeId from, ByteView data) {
      frames.emplace_back(from, Bytes(data.begin(), data.end()));
    };
  }
};

TEST(NetworkTest, DeliversFrameWithLatency) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.latency = 5 * kMillisecond, .jitter = 0});

  EXPECT_TRUE(net.send(1, 2, Bytes{0xab}));
  EXPECT_TRUE(inbox.frames.empty());
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 1u);
  EXPECT_EQ(inbox.frames[0].first, 1u);
  EXPECT_EQ(inbox.frames[0].second, Bytes{0xab});
  EXPECT_GE(sim.now(), 5 * kMillisecond);
}

TEST(NetworkTest, NoLinkNoDelivery) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  net.add_node(2);
  EXPECT_FALSE(net.send(1, 2, Bytes{1}));
}

TEST(NetworkTest, MtuDropsOversizeFrames) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.mtu = 100});

  EXPECT_FALSE(net.send(1, 2, Bytes(101, 0)));
  EXPECT_TRUE(net.send(1, 2, Bytes(100, 0)));
  sim.run();
  EXPECT_EQ(inbox.frames.size(), 1u);
  EXPECT_EQ(net.link_stats(1, 2).frames_oversize, 1u);
}

TEST(NetworkTest, LossRateDropsApproximateFraction) {
  Simulator sim;
  Network net{sim, /*seed=*/7};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.loss_rate = 0.3});

  const int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) net.send(1, 2, Bytes{1});
  sim.run();
  const auto& stats = net.link_stats(1, 2);
  EXPECT_EQ(stats.frames_sent, static_cast<std::uint64_t>(kFrames));
  const double loss =
      static_cast<double>(stats.frames_lost) / static_cast<double>(kFrames);
  EXPECT_NEAR(loss, 0.3, 0.05);
  EXPECT_EQ(inbox.frames.size(), stats.frames_delivered);
}

TEST(NetworkTest, LossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Network net{sim, seed};
    Inbox inbox;
    net.add_node(1);
    net.add_node(2, inbox.handler());
    net.add_link(1, 2, {.loss_rate = 0.5});
    for (int i = 0; i < 100; ++i) net.send(1, 2, Bytes{static_cast<std::uint8_t>(i)});
    sim.run();
    return inbox.frames.size();
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(NetworkTest, BandwidthSerializesBackToBackFrames) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  // 1 Mbit/s: a 1250-byte frame takes 10 ms to serialize.
  net.add_link(1, 2, {.latency = 0, .jitter = 0, .bandwidth_bps = 1'000'000,
                      .mtu = 2000});

  net.send(1, 2, Bytes(1250, 0));
  net.send(1, 2, Bytes(1250, 0));
  sim.run();
  ASSERT_EQ(inbox.frames.size(), 2u);
  // Second frame queues behind the first: ~20 ms total.
  EXPECT_GE(sim.now(), 19 * kMillisecond);
  EXPECT_LE(sim.now(), 21 * kMillisecond);
}

TEST(NetworkTest, JitterVariesDelay) {
  Simulator sim;
  Network net{sim, 3};
  std::vector<SimTime> arrivals;
  net.add_node(1);
  net.add_node(2, [&](NodeId, ByteView) { arrivals.push_back(sim.now()); });
  net.add_link(1, 2, {.latency = kMillisecond, .jitter = 10 * kMillisecond,
                      .bandwidth_bps = 0xffffffff});

  // Send spaced out so serialization queueing does not interfere.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * kSecond, [&net] {
      net.send(1, 2, Bytes{1});
    });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 20u);
  std::set<SimTime> offsets;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    offsets.insert(arrivals[i] - static_cast<SimTime>(i) * kSecond);
  }
  EXPECT_GT(offsets.size(), 5u);  // delays vary
}

TEST(NetworkTest, RouteFindsShortestPath) {
  Simulator sim;
  Network net{sim};
  for (NodeId id = 1; id <= 6; ++id) net.add_node(id);
  // 1-2-3-6 (3 hops) and 1-4-5-6 with shortcut 1-5 (2 hops via 5).
  net.add_link(1, 2);
  net.add_link(2, 3);
  net.add_link(3, 6);
  net.add_link(1, 4);
  net.add_link(4, 5);
  net.add_link(5, 6);
  net.add_link(1, 5);

  const auto path = net.route(1, 6);
  EXPECT_EQ(path, (std::vector<NodeId>{1, 5, 6}));
}

TEST(NetworkTest, RouteUnreachableIsEmpty) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  net.add_node(2);
  EXPECT_TRUE(net.route(1, 2).empty());
  EXPECT_EQ(net.route(1, 1), (std::vector<NodeId>{1}));
}

TEST(NetworkTest, NeighborsListed) {
  Simulator sim;
  Network net{sim};
  for (NodeId id = 1; id <= 4; ++id) net.add_node(id);
  net.add_link(1, 2);
  net.add_link(1, 3);
  const auto n = net.neighbors(1);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_TRUE(net.neighbors(4).empty());
}

TEST(NetworkTest, DuplicateNodeThrows) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  EXPECT_THROW(net.add_node(1), std::invalid_argument);
}

TEST(NetworkTest, BadLinkEndpointsThrow) {
  Simulator sim;
  Network net{sim};
  net.add_node(1);
  EXPECT_THROW(net.add_link(1, 2), std::invalid_argument);
  EXPECT_THROW(net.add_link(1, 1), std::invalid_argument);
}

TEST(NetworkTest, TracerSeesEveryFate) {
  Simulator sim;
  Network net{sim, /*seed=*/5};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_link(1, 2, {.loss_rate = 0.5, .mtu = 100});

  std::map<Network::FrameFate, int> fates;
  net.set_tracer([&](const Network::TraceRecord& rec) { ++fates[rec.fate]; });

  for (int i = 0; i < 200; ++i) net.send(1, 2, Bytes(10, 0));
  net.send(1, 2, Bytes(200, 0));  // oversize
  net.send(1, 3, Bytes(1, 0));    // no such link
  sim.run();

  EXPECT_GT(fates[Network::FrameFate::kDelivered], 0);
  EXPECT_GT(fates[Network::FrameFate::kLost], 0);
  EXPECT_EQ(fates[Network::FrameFate::kOversize], 1);
  EXPECT_EQ(fates[Network::FrameFate::kNoLink], 1);
  EXPECT_EQ(fates[Network::FrameFate::kDelivered] +
                fates[Network::FrameFate::kLost],
            200);
  // Delivered records carry a future delivery time.
  net.set_tracer([&](const Network::TraceRecord& rec) {
    if (rec.fate == Network::FrameFate::kDelivered) {
      EXPECT_GE(rec.delivery_at, rec.sent_at);
    }
  });
  net.send(1, 2, Bytes(10, 0));
  sim.run();
}

TEST(NetworkTest, TotalStatsAggregates) {
  Simulator sim;
  Network net{sim};
  Inbox inbox;
  net.add_node(1);
  net.add_node(2, inbox.handler());
  net.add_node(3, inbox.handler());
  net.add_link(1, 2);
  net.add_link(1, 3);
  net.send(1, 2, Bytes(10, 0));
  net.send(1, 3, Bytes(20, 0));
  sim.run();
  const auto total = net.total_stats();
  EXPECT_EQ(total.frames_delivered, 2u);
  EXPECT_EQ(total.bytes_delivered, 30u);
}

}  // namespace
}  // namespace alpha::net
