#include "net/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace alpha::net {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule_in(10, tick);
  };
  sim.schedule_in(10, tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(SimulatorTest, MaxEventsBound) {
  Simulator sim;
  int count = 0;
  std::function<void()> loop = [&] {
    ++count;
    sim.schedule_in(1, loop);
  };
  sim.schedule_in(1, loop);
  sim.run(100);
  EXPECT_EQ(count, 100);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(50, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(10, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace alpha::net
