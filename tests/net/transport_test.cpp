// Transport adapters: the same interface over the discrete-event simulator
// and over real UDP sockets.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace alpha::net {
namespace {

using crypto::Bytes;

TEST(SimTransportTest, DeliversFramesWithSourceAddress) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  std::vector<std::pair<PeerAddr, Bytes>> at_b;
  b.set_receiver([&](PeerAddr from, crypto::ByteView frame) {
    at_b.emplace_back(from, Bytes(frame.begin(), frame.end()));
  });

  EXPECT_TRUE(a.send(1, Bytes{1, 2, 3}));
  sim.run_until(kSecond);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].first, 0u);
  EXPECT_EQ(at_b[0].second, (Bytes{1, 2, 3}));
}

TEST(SimTransportTest, SendFailsWithoutLink) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(5);  // no link between them

  SimTransport a{network, 0};
  EXPECT_FALSE(a.send(5, Bytes{0xaa}));
}

TEST(SimTransportTest, PollAdvancesVirtualTimeAndCountsFrames) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  b.set_receiver([](PeerAddr, crypto::ByteView) {});

  const std::uint64_t t0 = b.now_us();
  a.send(1, Bytes{0x01});
  a.send(1, Bytes{0x02});
  EXPECT_EQ(b.poll(50), 2u);  // advances 50 virtual ms, counts deliveries
  EXPECT_EQ(b.now_us(), t0 + 50 * kMillisecond);
  EXPECT_EQ(b.now_us(), sim.now());
}

TEST(SimTransportTest, ScheduleFiresFromEventQueue) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  SimTransport a{network, 0};

  std::vector<int> fired;
  a.schedule(10 * kMillisecond, [&] { fired.push_back(1); });
  // A deadline in the past is clamped to now, not dropped.
  sim.run_until(20 * kMillisecond);
  a.schedule(5 * kMillisecond, [&] { fired.push_back(2); });
  sim.run_until(kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimTransportTest, DestructorUnhooksNodeHandler) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);
  {
    SimTransport b{network, 1};
    b.set_receiver([](PeerAddr, crypto::ByteView) {});
  }
  // After the transport is gone, frames to the node must not crash.
  SimTransport a{network, 0};
  a.send(1, Bytes{0x07});
  EXPECT_NO_THROW(sim.run_until(kSecond));
}

TEST(UdpTransportTest, RoundtripViaPoll) {
  UdpTransport a, b;
  std::vector<std::pair<PeerAddr, Bytes>> at_b;
  b.set_receiver([&](PeerAddr from, crypto::ByteView frame) {
    at_b.emplace_back(from, Bytes(frame.begin(), frame.end()));
  });

  EXPECT_TRUE(a.send(b.port(), Bytes{9, 8, 7}));
  std::size_t frames = 0;
  for (int i = 0; i < 100 && frames == 0; ++i) frames += b.poll(20);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].first, a.port());
  EXPECT_EQ(at_b[0].second, (Bytes{9, 8, 7}));
}

TEST(UdpTransportTest, DrainsBurstInOnePoll) {
  UdpTransport a, b;
  std::size_t received = 0;
  b.set_receiver([&](PeerAddr, crypto::ByteView) { ++received; });
  for (int i = 0; i < 5; ++i) a.send(b.port(), Bytes{static_cast<std::uint8_t>(i)});
  const auto deadline = b.now_us() + 2'000'000;
  while (received < 5 && b.now_us() < deadline) b.poll(20);
  EXPECT_EQ(received, 5u);
}

TEST(UdpTransportTest, TimersFireFromPoll) {
  UdpTransport t;
  const std::uint64_t due = t.now_us() + 20'000;
  bool fired = false;
  t.schedule(due, [&] { fired = true; });
  // Poll with a long timeout: the wait is capped by the due timer, so this
  // returns promptly and fires it.
  const auto deadline = t.now_us() + 2'000'000;
  while (!fired && t.now_us() < deadline) t.poll(500);
  EXPECT_TRUE(fired);
  EXPECT_GE(t.now_us(), due);
}

TEST(UdpTransportTest, TimersFireInDeadlineOrder) {
  UdpTransport t;
  const std::uint64_t now = t.now_us();
  std::vector<int> order;
  t.schedule(now + 30'000, [&] { order.push_back(3); });
  t.schedule(now + 10'000, [&] { order.push_back(1); });
  t.schedule(now + 20'000, [&] { order.push_back(2); });
  const auto deadline = now + 2'000'000;
  while (order.size() < 3 && t.now_us() < deadline) t.poll(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(UdpTransportTest, ZeroTimeoutPollIsNonBlockingProbe) {
  UdpTransport t;
  const std::uint64_t t0 = t.now_us();
  EXPECT_EQ(t.poll(0), 0u);
  EXPECT_LT(t.now_us() - t0, 1'000'000u);  // did not block for long
}

}  // namespace
}  // namespace alpha::net
