// Transport adapters: the same interface over the discrete-event simulator
// and over real UDP sockets.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace alpha::net {
namespace {

using crypto::Bytes;

TEST(SimTransportTest, DeliversFramesWithSourceAddress) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  std::vector<std::pair<PeerAddr, Bytes>> at_b;
  b.set_receiver([&](PeerAddr from, crypto::ByteView frame) {
    at_b.emplace_back(from, Bytes(frame.begin(), frame.end()));
  });

  EXPECT_TRUE(a.send(1, Bytes{1, 2, 3}));
  sim.run_until(kSecond);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].first, 0u);
  EXPECT_EQ(at_b[0].second, (Bytes{1, 2, 3}));
}

TEST(SimTransportTest, SendFailsWithoutLink) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(5);  // no link between them

  SimTransport a{network, 0};
  EXPECT_FALSE(a.send(5, Bytes{0xaa}));
}

TEST(SimTransportTest, PollAdvancesVirtualTimeAndCountsFrames) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  b.set_receiver([](PeerAddr, crypto::ByteView) {});

  const std::uint64_t t0 = b.now_us();
  a.send(1, Bytes{0x01});
  a.send(1, Bytes{0x02});
  EXPECT_EQ(b.poll(50), 2u);  // advances 50 virtual ms, counts deliveries
  EXPECT_EQ(b.now_us(), t0 + 50 * kMillisecond);
  EXPECT_EQ(b.now_us(), sim.now());
}

TEST(SimTransportTest, ScheduleFiresFromEventQueue) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  SimTransport a{network, 0};

  std::vector<int> fired;
  a.schedule(10 * kMillisecond, [&] { fired.push_back(1); });
  // A deadline in the past is clamped to now, not dropped.
  sim.run_until(20 * kMillisecond);
  a.schedule(5 * kMillisecond, [&] { fired.push_back(2); });
  sim.run_until(kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimTransportTest, DestructorUnhooksNodeHandler) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);
  {
    SimTransport b{network, 1};
    b.set_receiver([](PeerAddr, crypto::ByteView) {});
  }
  // After the transport is gone, frames to the node must not crash.
  SimTransport a{network, 0};
  a.send(1, Bytes{0x07});
  EXPECT_NO_THROW(sim.run_until(kSecond));
}

TEST(SimTransportTest, RecvBatchBuffersFramesWhenNoReceiverInstalled) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};  // b: no receiver installed
  EXPECT_TRUE(a.send(1, Bytes{1}));
  EXPECT_TRUE(a.send(1, Bytes{2}));
  EXPECT_TRUE(a.send(1, Bytes{3}));

  RxFrame out[8];
  // recv_batch advances virtual time itself (timeout budget) and returns
  // the buffered frames with their virtual arrival timestamps.
  std::size_t got = b.recv_batch(1000, out, 8);
  ASSERT_EQ(got, 3u);
  for (std::size_t i = 0; i < got; ++i) {
    EXPECT_EQ(out[i].from, 0u);
    EXPECT_EQ(out[i].data.size(), 1u);
    EXPECT_EQ(out[i].data[0], static_cast<std::uint8_t>(i + 1));
    EXPECT_LE(out[i].recv_us, b.now_us());
  }
  EXPECT_EQ(b.recv_batch(0, out, 8), 0u);  // drained
}

TEST(SimTransportTest, RecvBatchRespectsMaxAndKeepsRemainder) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_TRUE(a.send(1, Bytes{i}));

  RxFrame out[8];
  ASSERT_EQ(b.recv_batch(1000, out, 2), 2u);
  EXPECT_EQ(out[0].data[0], 0u);
  EXPECT_EQ(out[1].data[0], 1u);
  // The rest stays queued; a non-blocking continuation picks it up in order.
  ASSERT_EQ(b.recv_batch(0, out, 8), 3u);
  EXPECT_EQ(out[0].data[0], 2u);
  EXPECT_EQ(out[2].data[0], 4u);
}

TEST(SimTransportTest, ClockIsNotThreadSafe) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  SimTransport a{network, 0};
  // The sharded runtime keys its drive mode off this: virtual-time
  // transports must be driven inline, never from worker threads.
  EXPECT_FALSE(a.clock_thread_safe());
}

TEST(TransportDefaultsTest, SendBatchFallsBackToSingleSends) {
  Simulator sim;
  Network network{sim, 1};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  SimTransport a{network, 0}, b{network, 1};
  std::size_t received = 0;
  b.set_receiver([&](PeerAddr, crypto::ByteView) { ++received; });

  const Bytes p1{0x01}, p2{0x02, 0x02};
  const TxFrame frames[] = {{1, {p1.data(), p1.size()}},
                            {1, {p2.data(), p2.size()}}};
  // SimTransport doesn't override send_batch: the base class loops send().
  EXPECT_EQ(a.send_batch(frames, 2), 2u);
  sim.run_until(kSecond);
  EXPECT_EQ(received, 2u);
}

TEST(UdpTransportTest, RoundtripViaPoll) {
  UdpTransport a, b;
  std::vector<std::pair<PeerAddr, Bytes>> at_b;
  b.set_receiver([&](PeerAddr from, crypto::ByteView frame) {
    at_b.emplace_back(from, Bytes(frame.begin(), frame.end()));
  });

  EXPECT_TRUE(a.send(b.port(), Bytes{9, 8, 7}));
  std::size_t frames = 0;
  for (int i = 0; i < 100 && frames == 0; ++i) frames += b.poll(20);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].first, a.port());
  EXPECT_EQ(at_b[0].second, (Bytes{9, 8, 7}));
}

TEST(UdpTransportTest, DrainsBurstInOnePoll) {
  UdpTransport a, b;
  std::size_t received = 0;
  b.set_receiver([&](PeerAddr, crypto::ByteView) { ++received; });
  for (int i = 0; i < 5; ++i) a.send(b.port(), Bytes{static_cast<std::uint8_t>(i)});
  const auto deadline = b.now_us() + 2'000'000;
  while (received < 5 && b.now_us() < deadline) b.poll(20);
  EXPECT_EQ(received, 5u);
}

TEST(UdpTransportTest, TimersFireFromPoll) {
  UdpTransport t;
  const std::uint64_t due = t.now_us() + 20'000;
  bool fired = false;
  t.schedule(due, [&] { fired = true; });
  // Poll with a long timeout: the wait is capped by the due timer, so this
  // returns promptly and fires it.
  const auto deadline = t.now_us() + 2'000'000;
  while (!fired && t.now_us() < deadline) t.poll(500);
  EXPECT_TRUE(fired);
  EXPECT_GE(t.now_us(), due);
}

TEST(UdpTransportTest, TimersFireInDeadlineOrder) {
  UdpTransport t;
  const std::uint64_t now = t.now_us();
  std::vector<int> order;
  t.schedule(now + 30'000, [&] { order.push_back(3); });
  t.schedule(now + 10'000, [&] { order.push_back(1); });
  t.schedule(now + 20'000, [&] { order.push_back(2); });
  const auto deadline = now + 2'000'000;
  while (order.size() < 3 && t.now_us() < deadline) t.poll(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(UdpTransportTest, ZeroTimeoutPollIsNonBlockingProbe) {
  UdpTransport t;
  const std::uint64_t t0 = t.now_us();
  EXPECT_EQ(t.poll(0), 0u);
  EXPECT_LT(t.now_us() - t0, 1'000'000u);  // did not block for long
}

TEST(UdpTransportTest, BatchRoundtripOverRealSockets) {
  UdpTransport a, b;
  std::vector<Bytes> msgs;
  std::vector<TxFrame> frames;
  for (std::uint8_t i = 0; i < 6; ++i) {
    msgs.push_back(Bytes(48 + i, i));
    frames.push_back({b.port(), {msgs.back().data(), msgs.back().size()}});
  }
  std::size_t accepted = 0;
  while (accepted < frames.size()) {
    const std::size_t n =
        a.send_batch(frames.data() + accepted, frames.size() - accepted);
    ASSERT_GT(n, 0u);
    accepted += n;
  }

  RxFrame out[8];
  std::vector<Bytes> got;
  const auto deadline = b.now_us() + 2'000'000;
  while (got.size() < msgs.size() && b.now_us() < deadline) {
    const std::size_t n = b.recv_batch(50, out, 8);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].from, a.port());
      EXPECT_GT(out[i].recv_us, 0u);
      got.emplace_back(out[i].data.begin(), out[i].data.end());
    }
  }
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(got[i], msgs[i]);
}

TEST(UdpTransportTest, ClockIsThreadSafe) {
  UdpTransport t;
  // Wall-clock now_us() is safe from any thread: the sharded runtime may
  // run this transport in threaded mode.
  EXPECT_TRUE(t.clock_thread_safe());
}

}  // namespace
}  // namespace alpha::net
