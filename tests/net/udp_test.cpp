#include "net/udp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/bytes.hpp"

namespace alpha::net {
namespace {

using crypto::Bytes;

// Datagram::data is a view into the endpoint's reusable receive buffer;
// copy it out for value comparison.
Bytes to_bytes(crypto::ByteView v) { return Bytes(v.begin(), v.end()); }

TEST(UdpTest, BindsEphemeralPort) {
  UdpEndpoint a;
  EXPECT_GT(a.port(), 0u);
}

TEST(UdpTest, SendReceiveRoundtrip) {
  UdpEndpoint a, b;
  const Bytes msg{1, 2, 3, 4, 5};
  a.send_to(b.port(), msg);
  const auto got = b.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_bytes(got->data), msg);
  EXPECT_EQ(got->from_port, a.port());
}

TEST(UdpTest, BidirectionalExchange) {
  UdpEndpoint a, b;
  a.send_to(b.port(), Bytes{0x01});
  const auto at_b = b.receive(2000);
  ASSERT_TRUE(at_b.has_value());
  b.send_to(at_b->from_port, Bytes{0x02});
  const auto at_a = a.receive(2000);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(to_bytes(at_a->data), Bytes{0x02});
}

TEST(UdpTest, ReceiveTimesOut) {
  UdpEndpoint a;
  EXPECT_FALSE(a.receive(10).has_value());
}

TEST(UdpTest, LargeDatagram) {
  UdpEndpoint a, b;
  const Bytes msg(8000, 0x5a);
  a.send_to(b.port(), msg);
  const auto got = b.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), msg.size());
  EXPECT_EQ(to_bytes(got->data), msg);
}

TEST(UdpTest, MoveTransfersOwnership) {
  UdpEndpoint a;
  const std::uint16_t port = a.port();
  UdpEndpoint moved{std::move(a)};
  EXPECT_EQ(moved.port(), port);
  UdpEndpoint c;
  c.send_to(moved.port(), Bytes{7});
  EXPECT_TRUE(moved.receive(2000).has_value());
}

TEST(UdpTest, MovedFromEndpointDestructsCleanly) {
  auto shell = std::make_unique<UdpEndpoint>();
  UdpEndpoint owner{std::move(*shell)};
  // Destroying the moved-from shell must not close the socket out from
  // under the new owner (double-close would trip ASan / break the fd).
  shell.reset();
  UdpEndpoint peer;
  peer.send_to(owner.port(), Bytes{3});
  EXPECT_TRUE(owner.receive(2000).has_value());
}

TEST(UdpTest, MoveAssignReleasesOldSocketAndAdopts) {
  UdpEndpoint a, b;
  const std::uint16_t b_port = b.port();
  a = std::move(b);  // a's original socket closes, a adopts b's
  EXPECT_EQ(a.port(), b_port);
  UdpEndpoint c;
  c.send_to(a.port(), Bytes{9});
  const auto got = a.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_bytes(got->data), Bytes{9});
}

}  // namespace
}  // namespace alpha::net
