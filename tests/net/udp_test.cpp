#include "net/udp.hpp"

#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <vector>

#include "crypto/bytes.hpp"

namespace alpha::net {
namespace {

using crypto::Bytes;

// Datagram::data is a view into the endpoint's reusable receive buffer;
// copy it out for value comparison.
Bytes to_bytes(crypto::ByteView v) { return Bytes(v.begin(), v.end()); }

TEST(UdpTest, BindsEphemeralPort) {
  UdpEndpoint a;
  EXPECT_GT(a.port(), 0u);
}

TEST(UdpTest, SendReceiveRoundtrip) {
  UdpEndpoint a, b;
  const Bytes msg{1, 2, 3, 4, 5};
  a.send_to(b.port(), msg);
  const auto got = b.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_bytes(got->data), msg);
  EXPECT_EQ(got->from_port, a.port());
}

TEST(UdpTest, BidirectionalExchange) {
  UdpEndpoint a, b;
  a.send_to(b.port(), Bytes{0x01});
  const auto at_b = b.receive(2000);
  ASSERT_TRUE(at_b.has_value());
  b.send_to(at_b->from_port, Bytes{0x02});
  const auto at_a = a.receive(2000);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_EQ(to_bytes(at_a->data), Bytes{0x02});
}

TEST(UdpTest, ReceiveTimesOut) {
  UdpEndpoint a;
  EXPECT_FALSE(a.receive(10).has_value());
}

TEST(UdpTest, LargeDatagram) {
  UdpEndpoint a, b;
  const Bytes msg(8000, 0x5a);
  a.send_to(b.port(), msg);
  const auto got = b.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), msg.size());
  EXPECT_EQ(to_bytes(got->data), msg);
}

TEST(UdpTest, MoveTransfersOwnership) {
  UdpEndpoint a;
  const std::uint16_t port = a.port();
  UdpEndpoint moved{std::move(a)};
  EXPECT_EQ(moved.port(), port);
  UdpEndpoint c;
  c.send_to(moved.port(), Bytes{7});
  EXPECT_TRUE(moved.receive(2000).has_value());
}

TEST(UdpTest, MovedFromEndpointDestructsCleanly) {
  auto shell = std::make_unique<UdpEndpoint>();
  UdpEndpoint owner{std::move(*shell)};
  // Destroying the moved-from shell must not close the socket out from
  // under the new owner (double-close would trip ASan / break the fd).
  shell.reset();
  UdpEndpoint peer;
  peer.send_to(owner.port(), Bytes{3});
  EXPECT_TRUE(owner.receive(2000).has_value());
}

TEST(UdpTest, MoveAssignReleasesOldSocketAndAdopts) {
  UdpEndpoint a, b;
  const std::uint16_t b_port = b.port();
  a = std::move(b);  // a's original socket closes, a adopts b's
  EXPECT_EQ(a.port(), b_port);
  UdpEndpoint c;
  c.send_to(a.port(), Bytes{9});
  const auto got = a.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_bytes(got->data), Bytes{9});
}

// ------------------------------------------------------- batched syscalls

TEST(UdpBatchTest, ReceiveBatchDrainsQueuedDatagramsInOneCall) {
  UdpEndpoint a, b;
  for (std::uint8_t i = 0; i < 5; ++i) {
    a.send_to(b.port(), Bytes{i, static_cast<std::uint8_t>(i + 1)});
  }
  UdpEndpoint::Datagram got[UdpEndpoint::kBatchSize];
  std::vector<Bytes> payloads;
  // recvmmsg may split the drain across calls; loop until all five landed.
  for (int tries = 0; payloads.size() < 5 && tries < 50; ++tries) {
    const std::size_t n = b.receive_batch(2000, got, UdpEndpoint::kBatchSize);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i].from_port, a.port());
      payloads.push_back(to_bytes(got[i].data));
    }
  }
  ASSERT_EQ(payloads.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(payloads[i], (Bytes{i, static_cast<std::uint8_t>(i + 1)}));
  }
}

TEST(UdpBatchTest, ReceiveBatchTimesOutEmpty) {
  UdpEndpoint a;
  UdpEndpoint::Datagram got[4];
  EXPECT_EQ(a.receive_batch(10, got, 4), 0u);
  EXPECT_EQ(a.receive_batch(0, got, 0), 0u);  // max=0 is a no-op
}

TEST(UdpBatchTest, SendManyDeliversWholeBatch) {
  UdpEndpoint a, b;
  std::vector<Bytes> msgs;
  std::vector<UdpEndpoint::OutDatagram> dgs;
  for (std::uint8_t i = 0; i < 10; ++i) {
    msgs.push_back(Bytes(64 + i, i));
    dgs.push_back({b.port(), {msgs.back().data(), msgs.back().size()}});
  }
  std::size_t accepted = 0;
  while (accepted < dgs.size()) {
    const std::size_t n =
        a.send_many(dgs.data() + accepted, dgs.size() - accepted);
    ASSERT_GT(n, 0u);
    accepted += n;
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto got = b.receive(2000);
    ASSERT_TRUE(got.has_value()) << "datagram " << int{i};
    EXPECT_EQ(to_bytes(got->data), msgs[i]);
  }
}

// SendmmsgFn is a plain function pointer (no captures) so the fakes keep
// their knobs in file-scope statics.
namespace fake_sendmmsg {
int accept_limit = 0;    // short-completion fake: accept at most this many
int calls = 0;

int short_completion(int fd, ::mmsghdr* msgs, unsigned n, int flags) {
  ++calls;
  const unsigned take =
      n < static_cast<unsigned>(accept_limit) ? n
                                              : static_cast<unsigned>(accept_limit);
  // Forward the accepted prefix to the real syscall so delivery is
  // observable; report only that prefix as completed.
  if (take == 0) {
    errno = EAGAIN;
    return -1;
  }
  return ::sendmmsg(fd, msgs, take, flags);
}

int backpressure(int, ::mmsghdr*, unsigned, int) {
  ++calls;
  errno = EAGAIN;
  return -1;
}
}  // namespace fake_sendmmsg

TEST(UdpBatchTest, SendManySurfacesPartialCompletions) {
  UdpEndpoint a, b;
  std::vector<Bytes> msgs;
  std::vector<UdpEndpoint::OutDatagram> dgs;
  for (std::uint8_t i = 0; i < 8; ++i) {
    msgs.push_back(Bytes(32, i));
    dgs.push_back({b.port(), {msgs.back().data(), msgs.back().size()}});
  }
  fake_sendmmsg::accept_limit = 3;
  fake_sendmmsg::calls = 0;
  a.set_sendmmsg_for_test(&fake_sendmmsg::short_completion);

  // First submit: the kernel "accepts" only 3 of 8. The caller contract is
  // to resubmit the tail, so datagrams [3, 8) must NOT have been sent.
  EXPECT_EQ(a.send_many(dgs.data(), dgs.size()), 3u);
  // Resubmitting the unsent tail makes progress 3 at a time.
  std::size_t accepted = 3;
  while (accepted < dgs.size()) {
    const std::size_t n =
        a.send_many(dgs.data() + accepted, dgs.size() - accepted);
    ASSERT_LE(n, 3u);
    accepted += n;
  }
  a.set_sendmmsg_for_test(nullptr);
  EXPECT_EQ(fake_sendmmsg::calls, 3);  // 3 + 3 + 2

  // Exactly-once: every datagram arrives once, in order, none duplicated.
  for (std::uint8_t i = 0; i < 8; ++i) {
    const auto got = b.receive(2000);
    ASSERT_TRUE(got.has_value()) << "datagram " << int{i};
    EXPECT_EQ(to_bytes(got->data), msgs[i]);
  }
  EXPECT_FALSE(b.receive(50).has_value());
}

TEST(UdpBatchTest, SendManyTreatsZeroProgressBackpressureAsEmptyCompletion) {
  UdpEndpoint a, b;
  const Bytes msg(16, 0x7e);
  const UdpEndpoint::OutDatagram dg{b.port(), {msg.data(), msg.size()}};
  fake_sendmmsg::calls = 0;
  a.set_sendmmsg_for_test(&fake_sendmmsg::backpressure);
  EXPECT_EQ(a.send_many(&dg, 1), 0u);  // EAGAIN with no progress: 0, no throw
  EXPECT_EQ(fake_sendmmsg::calls, 1);
  a.set_sendmmsg_for_test(nullptr);
  // The endpoint stays usable with the real syscall restored.
  EXPECT_EQ(a.send_many(&dg, 1), 1u);
  const auto got = b.receive(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_bytes(got->data), msg);
}

}  // namespace
}  // namespace alpha::net
