#include "wire/packets.hpp"

#include <gtest/gtest.h>

#include "../support/seed.hpp"
#include "crypto/random.hpp"

namespace alpha::wire {
namespace {

using crypto::HmacDrbg;

Digest digest_of(std::uint8_t fill, std::size_t size = 20) {
  return Digest{ByteView{Bytes(size, fill)}};
}

TEST(S1PacketTest, BaseModeRoundtrip) {
  S1Packet p;
  p.hdr = {0xaabbccdd, 7};
  p.mode = Mode::kBase;
  p.chain_index = 101;
  p.chain_element = digest_of(0x11);
  p.macs = {digest_of(0x22)};

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto* s1 = std::get_if<S1Packet>(&*decoded);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->hdr.assoc_id, 0xaabbccddu);
  EXPECT_EQ(s1->hdr.seq, 7u);
  EXPECT_EQ(s1->mode, Mode::kBase);
  EXPECT_EQ(s1->chain_index, 101u);
  EXPECT_EQ(s1->chain_element, p.chain_element);
  ASSERT_EQ(s1->macs.size(), 1u);
  EXPECT_EQ(s1->macs[0], p.macs[0]);
}

TEST(S1PacketTest, CumulativeModeManyMacs) {
  S1Packet p;
  p.hdr = {1, 2};
  p.mode = Mode::kCumulative;
  p.chain_index = 9;
  p.chain_element = digest_of(0x01);
  for (int i = 0; i < 20; ++i) p.macs.push_back(digest_of(static_cast<std::uint8_t>(i)));

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& s1 = std::get<S1Packet>(*decoded);
  EXPECT_EQ(s1.mode, Mode::kCumulative);
  EXPECT_EQ(s1.macs.size(), 20u);
}

TEST(S1PacketTest, MerkleModeRoundtrip) {
  S1Packet p;
  p.hdr = {3, 4};
  p.mode = Mode::kMerkle;
  p.chain_index = 5;
  p.chain_element = digest_of(0x31);
  p.merkle_root = digest_of(0x32);
  p.leaf_count = 64;

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& s1 = std::get<S1Packet>(*decoded);
  EXPECT_EQ(s1.mode, Mode::kMerkle);
  EXPECT_EQ(s1.merkle_root, p.merkle_root);
  EXPECT_EQ(s1.leaf_count, 64u);
  EXPECT_TRUE(s1.macs.empty());
}

TEST(A1PacketTest, UnreliableRoundtrip) {
  A1Packet p;
  p.hdr = {10, 20};
  p.ack_chain_index = 55;
  p.ack_element = digest_of(0x41);
  p.scheme = AckScheme::kNone;

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& a1 = std::get<A1Packet>(*decoded);
  EXPECT_EQ(a1.scheme, AckScheme::kNone);
  EXPECT_EQ(a1.ack_element, p.ack_element);
  EXPECT_EQ(a1.ack_chain_index, 55u);
}

TEST(A1PacketTest, PreAckRoundtrip) {
  A1Packet p;
  p.hdr = {10, 21};
  p.ack_chain_index = 54;
  p.ack_element = digest_of(0x42);
  p.scheme = AckScheme::kPreAck;
  p.pre_acks = {digest_of(0x43), digest_of(0x45)};
  p.pre_nacks = {digest_of(0x44), digest_of(0x46)};

  const auto decoded = decode(p.encode());
  const auto& a1 = std::get<A1Packet>(*decoded);
  EXPECT_EQ(a1.pre_acks, p.pre_acks);
  EXPECT_EQ(a1.pre_nacks, p.pre_nacks);
}

TEST(A1PacketTest, PreAckListLengthsMustMatch) {
  A1Packet p;
  p.ack_element = digest_of(0x42);
  p.scheme = AckScheme::kPreAck;
  p.pre_acks = {digest_of(1)};
  p.pre_nacks = {};
  EXPECT_THROW(p.encode(), std::length_error);
}

TEST(A1PacketTest, AmtRoundtrip) {
  A1Packet p;
  p.hdr = {10, 22};
  p.ack_chain_index = 53;
  p.ack_element = digest_of(0x45);
  p.scheme = AckScheme::kAmt;
  p.amt_root = digest_of(0x46);
  p.amt_msg_count = 16;

  const auto decoded = decode(p.encode());
  const auto& a1 = std::get<A1Packet>(*decoded);
  EXPECT_EQ(a1.amt_root, p.amt_root);
  EXPECT_EQ(a1.amt_msg_count, 16u);
}

TEST(S2PacketTest, BaseRoundtrip) {
  S2Packet p;
  p.hdr = {100, 3};
  p.mode = Mode::kBase;
  p.chain_index = 100;
  p.disclosed_element = digest_of(0x51);
  p.payload = {9, 8, 7, 6};

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& s2 = std::get<S2Packet>(*decoded);
  EXPECT_EQ(s2.payload, p.payload);
  EXPECT_FALSE(s2.path.has_value());
  EXPECT_EQ(s2.disclosed_element, p.disclosed_element);
}

TEST(S2PacketTest, MerklePathRoundtrip) {
  S2Packet p;
  p.hdr = {100, 4};
  p.mode = Mode::kMerkle;
  p.chain_index = 98;
  p.disclosed_element = digest_of(0x52);
  p.msg_index = 5;
  WirePath path;
  path.leaf_index = 5;
  path.siblings = {digest_of(1), digest_of(2), digest_of(3)};
  p.path = path;
  p.payload = Bytes(100, 0xee);

  const auto decoded = decode(p.encode());
  const auto& s2 = std::get<S2Packet>(*decoded);
  ASSERT_TRUE(s2.path.has_value());
  EXPECT_EQ(s2.path->leaf_index, 5u);
  ASSERT_EQ(s2.path->siblings.size(), 3u);
  EXPECT_EQ(s2.path->siblings[2], digest_of(3));
  EXPECT_EQ(s2.msg_index, 5u);
}

TEST(A2PacketTest, BasicAckRoundtrip) {
  A2Packet p;
  p.hdr = {200, 9};
  p.ack_chain_index = 41;
  p.disclosed_ack_element = digest_of(0x61);
  p.scheme = AckScheme::kPreAck;
  p.kind = AckKind::kAck;
  p.secret = {1, 2, 3, 4, 5, 6, 7, 8};

  const auto decoded = decode(p.encode());
  const auto& a2 = std::get<A2Packet>(*decoded);
  EXPECT_EQ(a2.kind, AckKind::kAck);
  EXPECT_EQ(a2.secret, p.secret);
  EXPECT_FALSE(a2.path.has_value());
}

TEST(A2PacketTest, AmtNackRoundtrip) {
  A2Packet p;
  p.hdr = {200, 10};
  p.ack_chain_index = 40;
  p.disclosed_ack_element = digest_of(0x62);
  p.scheme = AckScheme::kAmt;
  p.kind = AckKind::kNack;
  p.msg_index = 11;
  p.secret = Bytes(16, 0xcc);
  WirePath path;
  path.leaf_index = 27;
  path.siblings = {digest_of(7), digest_of(8)};
  p.path = path;

  const auto decoded = decode(p.encode());
  const auto& a2 = std::get<A2Packet>(*decoded);
  EXPECT_EQ(a2.kind, AckKind::kNack);
  EXPECT_EQ(a2.msg_index, 11u);
  ASSERT_TRUE(a2.path.has_value());
  EXPECT_EQ(a2.path->leaf_index, 27u);
}

TEST(HandshakePacketTest, UnprotectedRoundtrip) {
  HandshakePacket p;
  p.hdr = {0x01020304, 0};
  p.is_response = false;
  p.algo = crypto::HashAlgo::kSha1;
  p.chain_length = 1024;
  p.sig_anchor_index = 1024;
  p.ack_anchor_index = 1024;
  p.sig_anchor = digest_of(0x71);
  p.ack_anchor = digest_of(0x72);

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& hs = std::get<HandshakePacket>(*decoded);
  EXPECT_FALSE(hs.is_response);
  EXPECT_EQ(hs.chain_length, 1024u);
  EXPECT_EQ(hs.sig_anchor, p.sig_anchor);
  EXPECT_EQ(hs.sig_alg, SigAlg::kNone);
}

TEST(HandshakePacketTest, ProtectedResponseRoundtrip) {
  HandshakePacket p;
  p.hdr = {0x01020304, 0};
  p.is_response = true;
  p.algo = crypto::HashAlgo::kMmo128;
  p.chain_length = 64;
  p.sig_anchor_index = 64;
  p.ack_anchor_index = 64;
  p.sig_anchor = digest_of(0x73, 16);
  p.ack_anchor = digest_of(0x74, 16);
  p.sig_alg = SigAlg::kRsa;
  p.public_key = Bytes(140, 0xab);
  p.signature = Bytes(128, 0xcd);

  const auto decoded = decode(p.encode());
  const auto& hs = std::get<HandshakePacket>(*decoded);
  EXPECT_TRUE(hs.is_response);
  EXPECT_EQ(hs.algo, crypto::HashAlgo::kMmo128);
  EXPECT_EQ(hs.sig_alg, SigAlg::kRsa);
  EXPECT_EQ(hs.public_key, p.public_key);
  EXPECT_EQ(hs.signature, p.signature);
}

TEST(HandshakePacketTest, ReconfigAnnounceRoundtrip) {
  HandshakePacket p;
  p.hdr = {0x0a0b0c0d, 3};
  p.is_response = false;
  p.chain_length = 256;
  p.sig_anchor_index = 256;
  p.ack_anchor_index = 256;
  p.sig_anchor = digest_of(0x81);
  p.ack_anchor = digest_of(0x82);
  ReconfigAnnounce r;
  r.mode = Mode::kCumulativeMerkle;
  r.batch_size = 64;
  r.merkle_group = 8;
  r.max_retries = 7;
  r.rekey_threshold = 12;
  p.reconfig = r;

  const auto decoded = decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& hs = std::get<HandshakePacket>(*decoded);
  ASSERT_TRUE(hs.reconfig.has_value());
  EXPECT_EQ(hs.reconfig->mode, Mode::kCumulativeMerkle);
  EXPECT_EQ(hs.reconfig->batch_size, 64u);
  EXPECT_EQ(hs.reconfig->merkle_group, 8u);
  EXPECT_EQ(hs.reconfig->max_retries, 7u);
  EXPECT_EQ(hs.reconfig->rekey_threshold, 12u);
  EXPECT_EQ(*hs.reconfig, r);

  // Absence round-trips too (the common non-rekey handshake).
  p.reconfig.reset();
  const auto plain = decode(p.encode());
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(std::get<HandshakePacket>(*plain).reconfig.has_value());
}

TEST(HandshakePacketTest, ReconfigIsCoveredBySignedPayload) {
  // The announcement must be inside the protected-bootstrap signature: an
  // on-path attacker rewriting the announced profile (e.g. forcing batch 1
  // forever) has to break the public-key signature, not just the CRC.
  HandshakePacket p;
  p.sig_anchor = digest_of(0x83);
  p.ack_anchor = digest_of(0x84);
  const Bytes without = p.signed_payload();
  ReconfigAnnounce r;
  r.mode = Mode::kCumulative;
  r.batch_size = 16;
  p.reconfig = r;
  const Bytes with = p.signed_payload();
  EXPECT_NE(with, without);
  p.reconfig->batch_size = 8;
  EXPECT_NE(p.signed_payload(), with);
}

TEST(HandshakePacketTest, ReconfigValidationRejectsBadFields) {
  HandshakePacket base;
  base.hdr = {1, 2};
  base.chain_length = 64;
  base.sig_anchor = digest_of(0x85);
  base.ack_anchor = digest_of(0x86);
  base.reconfig = ReconfigAnnounce{};

  const auto encode_with = [&](auto&& mutate) {
    HandshakePacket p = base;
    mutate(*p.reconfig);
    return p.encode();
  };
  // The untouched announcement is fine.
  ASSERT_TRUE(decode(base.encode()).has_value());
  // A zero or over-limit batch, zero tree group, or zero retry budget would
  // wedge the association at the rekey boundary -- the decoder rejects them
  // before they can reach Host::apply_reconfig.
  EXPECT_FALSE(decode(encode_with([](ReconfigAnnounce& r) {
                 r.batch_size = 0;
               })).has_value());
  EXPECT_FALSE(decode(encode_with([](ReconfigAnnounce& r) {
                 r.batch_size = 4097;
               })).has_value());
  EXPECT_FALSE(decode(encode_with([](ReconfigAnnounce& r) {
                 r.merkle_group = 0;
               })).has_value());
  EXPECT_FALSE(decode(encode_with([](ReconfigAnnounce& r) {
                 r.max_retries = 0;
               })).has_value());
  EXPECT_FALSE(decode(encode_with([](ReconfigAnnounce& r) {
                 r.mode = static_cast<Mode>(7);
               })).has_value());
}

TEST(HandshakePacketTest, SignedPayloadExcludesSignature) {
  HandshakePacket p;
  p.sig_anchor = digest_of(0x75);
  p.ack_anchor = digest_of(0x76);
  const Bytes without = p.signed_payload();
  p.signature = Bytes(64, 0xff);
  EXPECT_EQ(p.signed_payload(), without);
  // But flipping a covered field changes it.
  p.chain_length = 5;
  EXPECT_NE(p.signed_payload(), without);
}

TEST(PeekTest, TypeAndHeader) {
  S1Packet p;
  p.hdr = {0xdeadbeef, 0x12345678};
  p.mode = Mode::kBase;
  p.chain_element = digest_of(1);
  p.macs = {digest_of(2)};
  const Bytes data = p.encode();

  EXPECT_EQ(peek_type(data), PacketType::kS1);
  const auto hdr = peek_header(data);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->assoc_id, 0xdeadbeefu);
  EXPECT_EQ(hdr->seq, 0x12345678u);
}

TEST(PeekTest, AssocIdWithoutFullDecode) {
  S1Packet p;
  p.hdr = {0xdeadbeef, 0x12345678};
  p.mode = Mode::kBase;
  p.chain_element = digest_of(1);
  p.macs = {digest_of(2)};
  const Bytes data = p.encode();

  EXPECT_EQ(peek_assoc_id(data), 0xdeadbeefu);
  // The peek needs only the 6-byte prefix, unlike peek_header (10) and
  // decode (the whole frame).
  EXPECT_EQ(peek_assoc_id(ByteView{data.data(), 6}), 0xdeadbeefu);
}

TEST(PeekTest, TotalOverEveryPrefixLength) {
  // All three peeks must be total over every prefix of a valid frame:
  // nullopt below their threshold, the right value at and above it.
  A2Packet p;
  p.hdr = {0xcafe0001, 7};
  p.disclosed_ack_element = digest_of(0x21);
  p.secret = Bytes(16, 0x44);
  const Bytes full = p.encode();

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const ByteView prefix{full.data(), len};
    if (len < 2) {
      EXPECT_FALSE(peek_type(prefix).has_value()) << len;
    } else {
      EXPECT_EQ(peek_type(prefix), PacketType::kA2) << len;
    }
    if (len < 6) {
      EXPECT_FALSE(peek_assoc_id(prefix).has_value()) << len;
    } else {
      EXPECT_EQ(peek_assoc_id(prefix), 0xcafe0001u) << len;
    }
    if (len < 10) {
      EXPECT_FALSE(peek_header(prefix).has_value()) << len;
    } else {
      ASSERT_TRUE(peek_header(prefix).has_value()) << len;
      EXPECT_EQ(peek_header(prefix)->seq, 7u) << len;
    }
  }
}

TEST(PeekTest, AssocIdRejectsGarbage) {
  EXPECT_FALSE(peek_assoc_id({}).has_value());
  const Bytes bad_version{0x02, 0x01, 0, 0, 0, 1};
  EXPECT_FALSE(peek_assoc_id(bad_version).has_value());
  const Bytes bad_type{0x01, 0x09, 0, 0, 0, 1};
  EXPECT_FALSE(peek_assoc_id(bad_type).has_value());
  const Bytes type_zero{0x01, 0x00, 0, 0, 0, 1};
  EXPECT_FALSE(peek_assoc_id(type_zero).has_value());
}

TEST(FrameChecksumTest, MatchesIeeeCrc32Vector) {
  const char* msg = "123456789";
  const ByteView v{reinterpret_cast<const std::uint8_t*>(msg), 9};
  EXPECT_EQ(frame_checksum(v), 0xcbf43926u);
}

TEST(FrameChecksumTest, EverySingleBitFlipIsRejected) {
  // CRC-32 detects all single-bit errors, so no corrupted frame -- header,
  // body or trailer -- may survive to engine state. This is load-bearing
  // for fields that are unauthenticated on arrival by design (the A1's
  // pre-ack commitments, only checkable once the A2 discloses the key).
  A1Packet p;
  p.hdr = {9, 4};
  p.ack_chain_index = 17;
  p.ack_element = digest_of(0x31);
  p.scheme = AckScheme::kPreAck;
  p.pre_acks = {digest_of(0x41), digest_of(0x42)};
  p.pre_nacks = {digest_of(0x51), digest_of(0x52)};
  const Bytes base = p.encode();
  ASSERT_TRUE(decode(base).has_value());

  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = base;
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(decode(mutated).has_value())
          << "accepted flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameChecksumTest, ResealedMutationDecodesAgain) {
  // The trailer is what rejects, not an accident of body parsing: patch a
  // payload byte, recompute the CRC, and the frame is well-formed again.
  S2Packet p;
  p.hdr = {3, 8};
  p.disclosed_element = digest_of(0x61);
  p.payload = Bytes(24, 0xee);
  Bytes frame = p.encode();
  frame[frame.size() - kFrameChecksumSize - 1] ^= 0xff;
  EXPECT_FALSE(decode(frame).has_value());

  const ByteView body{frame.data(), frame.size() - kFrameChecksumSize};
  const std::uint32_t crc = frame_checksum(body);
  for (std::size_t i = 0; i < kFrameChecksumSize; ++i) {
    frame[body.size() + i] = static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  const auto decoded = decode(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get<S2Packet>(*decoded).payload, p.payload);
}

TEST(DecodeRobustnessTest, RejectsGarbage) {
  EXPECT_FALSE(decode({}).has_value());
  const Bytes junk{0xff, 0xff, 0xff};
  EXPECT_FALSE(decode(junk).has_value());
  const Bytes bad_version{0x02, 0x01, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bad_version).has_value());
  const Bytes bad_type{0x01, 0x09, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bad_type).has_value());
}

TEST(DecodeRobustnessTest, RejectsTruncationsAtEveryByte) {
  S2Packet p;
  p.hdr = {1, 2};
  p.mode = Mode::kMerkle;
  p.disclosed_element = digest_of(0x11);
  WirePath path;
  path.siblings = {digest_of(1), digest_of(2)};
  p.path = path;
  p.payload = Bytes(33, 0xaa);
  const Bytes full = p.encode();

  ASSERT_TRUE(decode(full).has_value());
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(decode(ByteView{full.data(), len}).has_value())
        << "accepted truncation at " << len;
  }
}

TEST(DecodeRobustnessTest, RejectsTrailingBytes) {
  A1Packet p;
  p.ack_element = digest_of(0x42);
  Bytes data = p.encode();
  data.push_back(0x00);
  EXPECT_FALSE(decode(data).has_value());
}

TEST(DecodeRobustnessTest, RandomFuzzNeverCrashes) {
  HmacDrbg rng{31415u};
  for (int i = 0; i < 2000; ++i) {
    const Bytes junk = rng.bytes(1 + rng.uniform(120));
    (void)decode(junk);  // must not crash or throw
  }
}

TEST(DecodeRobustnessTest, BitFlipFuzzNeverCrashes) {
  S1Packet p;
  p.hdr = {1, 2};
  p.mode = Mode::kCumulative;
  p.chain_element = digest_of(0x11);
  for (int i = 0; i < 5; ++i) p.macs.push_back(digest_of(static_cast<std::uint8_t>(i)));
  const Bytes base = p.encode();

  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = base;
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      (void)decode(mutated);  // must not crash or throw
    }
  }
}

// Property sweep: the demux hot path (peek_assoc_id, no full decode) must
// agree with the full decoder on every frame -- genuine, truncated, or
// bit-flipped. Concretely: whenever decode accepts, the peek must have
// accepted too and returned the decoded header's assoc_id; whenever the
// peek rejects, decode must reject as well. Otherwise the node runtime
// would route a frame to one association and authenticate it as another,
// or drop frames the hosts would have accepted.
TEST(PeekPropertyTest, PeekAssocIdAgreesWithFullDecodeOnAdversarialFrames) {
  const std::uint64_t seed = alpha::testing::chaos_seed(0xa55'0c1d);
  alpha::testing::SeedReporter reporter{seed};
  HmacDrbg rng{seed};

  // A small pool of genuine encodings to mutate (every packet type).
  std::vector<Bytes> pool;
  {
    S1Packet s1;
    s1.hdr = {static_cast<std::uint32_t>(rng.uniform(1u << 16)), 3};
    s1.mode = Mode::kCumulative;
    s1.chain_element = digest_of(0x21);
    for (int i = 0; i < 4; ++i) {
      s1.macs.push_back(digest_of(static_cast<std::uint8_t>(i)));
    }
    pool.push_back(s1.encode());

    A1Packet a1;
    a1.hdr = {static_cast<std::uint32_t>(rng.uniform(1u << 16)), 4};
    a1.ack_element = digest_of(0x22);
    a1.scheme = AckScheme::kPreAck;
    a1.pre_acks = {digest_of(1), digest_of(2)};
    a1.pre_nacks = {digest_of(3), digest_of(4)};
    pool.push_back(a1.encode());

    S2Packet s2;
    s2.hdr = {static_cast<std::uint32_t>(rng.uniform(1u << 16)), 5};
    s2.mode = Mode::kMerkle;
    s2.disclosed_element = digest_of(0x23);
    WirePath path;
    path.leaf_index = 1;
    path.siblings = {digest_of(5), digest_of(6)};
    s2.path = path;
    s2.payload = rng.bytes(48);
    pool.push_back(s2.encode());

    A2Packet a2;
    a2.hdr = {static_cast<std::uint32_t>(rng.uniform(1u << 16)), 6};
    a2.disclosed_ack_element = digest_of(0x24);
    a2.secret = rng.bytes(20);
    pool.push_back(a2.encode());

    HandshakePacket hs;
    hs.hdr = {static_cast<std::uint32_t>(rng.uniform(1u << 16)), 1};
    hs.chain_length = 64;
    hs.sig_anchor = digest_of(0x25);
    hs.ack_anchor = digest_of(0x26);
    pool.push_back(hs.encode());
  }

  for (int i = 0; i < 10000; ++i) {
    Bytes frame;
    switch (rng.uniform(3)) {
      case 0:  // pure random junk, including very short frames
        frame = rng.bytes(rng.uniform(96));
        break;
      case 1: {  // truncated genuine frame
        const Bytes& base = pool[rng.uniform(pool.size())];
        frame.assign(base.begin(), base.begin() + rng.uniform(base.size() + 1));
        break;
      }
      default: {  // genuine frame with 1..4 random bit flips
        frame = pool[rng.uniform(pool.size())];
        const std::uint32_t flips = 1 + rng.uniform(4);
        for (std::uint32_t f = 0; f < flips; ++f) {
          frame[rng.uniform(frame.size())] ^=
              static_cast<std::uint8_t>(1u << rng.uniform(8));
        }
        break;
      }
    }

    const auto peeked = peek_assoc_id(frame);
    const auto decoded = decode(frame);
    if (decoded.has_value()) {
      ASSERT_TRUE(peeked.has_value())
          << "decode accepted a frame the assoc-id peek rejected (iter " << i
          << ", " << frame.size() << " bytes)";
      const std::uint32_t decoded_id =
          std::visit([](const auto& p) { return p.hdr.assoc_id; }, *decoded);
      ASSERT_EQ(*peeked, decoded_id)
          << "demux would misroute: peek and decode disagree (iter " << i
          << ")";
    }
    if (!peeked.has_value()) {
      ASSERT_FALSE(decoded.has_value())
          << "peek rejected a decodable frame (iter " << i << ")";
    }
  }
}

TEST(WirePathTest, ConvertsToAuthPath) {
  WirePath wp;
  wp.leaf_index = 9;
  wp.siblings = {digest_of(1), digest_of(2)};
  const auto ap = wp.to_auth_path();
  EXPECT_EQ(ap.leaf_index, 9u);
  EXPECT_EQ(ap.siblings.size(), 2u);
  const auto back = WirePath::from_auth_path(ap);
  EXPECT_EQ(back.leaf_index, 9u);
  EXPECT_EQ(back.siblings, wp.siblings);
}

}  // namespace
}  // namespace alpha::wire
