// Property tests: encode/decode is the identity on randomly generated
// well-formed packets of every type and shape.
#include <gtest/gtest.h>

#include "crypto/random.hpp"
#include "wire/packets.hpp"

namespace alpha::wire {
namespace {

using crypto::HmacDrbg;

Digest random_digest(HmacDrbg& rng, std::size_t size) {
  return Digest{ByteView{rng.bytes(size)}};
}

std::size_t random_digest_size(HmacDrbg& rng) {
  const std::size_t sizes[] = {16, 20, 32};
  return sizes[rng.uniform(3)];
}

WirePath random_path(HmacDrbg& rng, std::size_t h) {
  WirePath path;
  path.leaf_index = static_cast<std::uint16_t>(rng.uniform(1024));
  const std::size_t depth = rng.uniform(12);
  for (std::size_t i = 0; i < depth; ++i) {
    path.siblings.push_back(random_digest(rng, h));
  }
  return path;
}

TEST(WirePropertyTest, S1RoundtripRandom) {
  HmacDrbg rng{101};
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t h = random_digest_size(rng);
    S1Packet p;
    p.hdr = {static_cast<std::uint32_t>(rng.uniform(UINT32_MAX)),
             static_cast<std::uint32_t>(rng.uniform(UINT32_MAX))};
    p.chain_index = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    p.chain_element = random_digest(rng, h);
    switch (rng.uniform(3)) {
      case 0:
        p.mode = Mode::kBase;
        p.macs = {random_digest(rng, h)};
        break;
      case 1: {
        p.mode = Mode::kCumulative;
        const std::size_t n = 1 + rng.uniform(40);
        for (std::size_t i = 0; i < n; ++i) {
          p.macs.push_back(random_digest(rng, h));
        }
        break;
      }
      case 2:
        p.mode = Mode::kMerkle;
        p.merkle_root = random_digest(rng, h);
        p.leaf_count = static_cast<std::uint16_t>(1 + rng.uniform(1024));
        break;
    }
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<S1Packet>(*decoded);
    EXPECT_EQ(q.hdr.assoc_id, p.hdr.assoc_id);
    EXPECT_EQ(q.hdr.seq, p.hdr.seq);
    EXPECT_EQ(q.mode, p.mode);
    EXPECT_EQ(q.chain_index, p.chain_index);
    EXPECT_EQ(q.chain_element, p.chain_element);
    EXPECT_EQ(q.macs, p.macs);
    EXPECT_EQ(q.merkle_root, p.merkle_root);
    EXPECT_EQ(q.leaf_count, p.leaf_count);
  }
}

TEST(WirePropertyTest, CumulativeMerkleS1RoundtripRandom) {
  HmacDrbg rng{102};
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t h = random_digest_size(rng);
    S1Packet p;
    p.mode = Mode::kCumulativeMerkle;
    p.chain_element = random_digest(rng, h);
    p.group_size = static_cast<std::uint16_t>(1 + rng.uniform(16));
    const std::size_t groups = 1 + rng.uniform(8);
    // leaf_count must land in (groups-1, groups] * group_size.
    const std::size_t full = (groups - 1) * p.group_size;
    p.leaf_count = static_cast<std::uint16_t>(
        full + 1 + rng.uniform(p.group_size));
    for (std::size_t i = 0; i < groups; ++i) {
      p.merkle_roots.push_back(random_digest(rng, h));
    }
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<S1Packet>(*decoded);
    EXPECT_EQ(q.merkle_roots, p.merkle_roots);
    EXPECT_EQ(q.group_size, p.group_size);
    EXPECT_EQ(q.leaf_count, p.leaf_count);
  }
}

TEST(WirePropertyTest, A1RoundtripRandom) {
  HmacDrbg rng{103};
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t h = random_digest_size(rng);
    A1Packet p;
    p.hdr = {7, static_cast<std::uint32_t>(iter)};
    p.ack_chain_index = static_cast<std::uint32_t>(rng.uniform(1 << 20));
    p.ack_element = random_digest(rng, h);
    switch (rng.uniform(3)) {
      case 0:
        p.scheme = AckScheme::kNone;
        break;
      case 1: {
        p.scheme = AckScheme::kPreAck;
        const std::size_t n = 1 + rng.uniform(20);
        for (std::size_t i = 0; i < n; ++i) {
          p.pre_acks.push_back(random_digest(rng, h));
          p.pre_nacks.push_back(random_digest(rng, h));
        }
        break;
      }
      case 2:
        p.scheme = AckScheme::kAmt;
        p.amt_root = random_digest(rng, h);
        p.amt_msg_count = static_cast<std::uint16_t>(1 + rng.uniform(256));
        break;
    }
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<A1Packet>(*decoded);
    EXPECT_EQ(q.scheme, p.scheme);
    EXPECT_EQ(q.pre_acks, p.pre_acks);
    EXPECT_EQ(q.pre_nacks, p.pre_nacks);
    EXPECT_EQ(q.amt_root, p.amt_root);
    EXPECT_EQ(q.amt_msg_count, p.amt_msg_count);
  }
}

TEST(WirePropertyTest, S2RoundtripRandom) {
  HmacDrbg rng{104};
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t h = random_digest_size(rng);
    S2Packet p;
    p.hdr = {9, static_cast<std::uint32_t>(iter)};
    p.mode = static_cast<Mode>(1 + rng.uniform(4));
    p.chain_index = static_cast<std::uint32_t>(rng.uniform(1 << 16));
    p.disclosed_element = random_digest(rng, h);
    p.msg_index = static_cast<std::uint16_t>(rng.uniform(1024));
    if (rng.uniform(2) == 1) p.path = random_path(rng, h);
    p.payload = rng.bytes(rng.uniform(2000));
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<S2Packet>(*decoded);
    EXPECT_EQ(q.payload, p.payload);
    EXPECT_EQ(q.msg_index, p.msg_index);
    EXPECT_EQ(q.path.has_value(), p.path.has_value());
    if (p.path.has_value()) {
      EXPECT_EQ(q.path->leaf_index, p.path->leaf_index);
      EXPECT_EQ(q.path->siblings, p.path->siblings);
    }
  }
}

TEST(WirePropertyTest, A2RoundtripRandom) {
  HmacDrbg rng{105};
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t h = random_digest_size(rng);
    A2Packet p;
    p.hdr = {11, static_cast<std::uint32_t>(iter)};
    p.ack_chain_index = static_cast<std::uint32_t>(rng.uniform(1 << 16));
    p.disclosed_ack_element = random_digest(rng, h);
    p.scheme = rng.uniform(2) == 0 ? AckScheme::kPreAck : AckScheme::kAmt;
    p.kind = rng.uniform(2) == 0 ? AckKind::kAck : AckKind::kNack;
    p.msg_index = static_cast<std::uint16_t>(rng.uniform(512));
    p.secret = rng.bytes(1 + rng.uniform(64));
    if (p.scheme == AckScheme::kAmt) p.path = random_path(rng, h);
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<A2Packet>(*decoded);
    EXPECT_EQ(q.kind, p.kind);
    EXPECT_EQ(q.secret, p.secret);
    EXPECT_EQ(q.msg_index, p.msg_index);
  }
}

TEST(WirePropertyTest, HandshakeRoundtripRandom) {
  HmacDrbg rng{106};
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t h = random_digest_size(rng);
    HandshakePacket p;
    p.hdr = {13, static_cast<std::uint32_t>(iter)};
    p.is_response = rng.uniform(2) == 1;
    p.algo = static_cast<crypto::HashAlgo>(1 + rng.uniform(3));
    p.chain_length = static_cast<std::uint32_t>(4 + rng.uniform(1 << 16));
    p.sig_anchor_index = p.chain_length;
    p.ack_anchor_index = p.chain_length;
    p.sig_anchor = random_digest(rng, h);
    p.ack_anchor = random_digest(rng, h);
    if (rng.uniform(2) == 1) {
      p.sig_alg = rng.uniform(2) == 0 ? SigAlg::kRsa : SigAlg::kDsa;
      p.public_key = rng.bytes(20 + rng.uniform(300));
      p.signature = rng.bytes(40 + rng.uniform(200));
    }
    const auto decoded = decode(p.encode());
    ASSERT_TRUE(decoded.has_value()) << "iter " << iter;
    const auto& q = std::get<HandshakePacket>(*decoded);
    EXPECT_EQ(q.is_response, p.is_response);
    EXPECT_EQ(q.algo, p.algo);
    EXPECT_EQ(q.sig_anchor, p.sig_anchor);
    EXPECT_EQ(q.public_key, p.public_key);
    EXPECT_EQ(q.signature, p.signature);
    EXPECT_EQ(q.signed_payload(), p.signed_payload());
  }
}

TEST(WirePropertyTest, RandomizedTruncationNeverDecodes) {
  // Any strict prefix of a valid packet must be rejected (no partial
  // acceptance that could desynchronize relays).
  HmacDrbg rng{107};
  for (int iter = 0; iter < 100; ++iter) {
    S2Packet p;
    p.hdr = {1, 1};
    p.mode = Mode::kBase;
    p.disclosed_element = random_digest(rng, 20);
    p.payload = rng.bytes(1 + rng.uniform(100));
    const crypto::Bytes full = p.encode();
    const std::size_t cut = rng.uniform(full.size());
    EXPECT_FALSE(decode(ByteView{full.data(), cut}).has_value());
  }
}

}  // namespace
}  // namespace alpha::wire
