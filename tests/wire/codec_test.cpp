#include "wire/codec.hpp"

#include <gtest/gtest.h>

namespace alpha::wire {
namespace {

TEST(WriterTest, BigEndianIntegers) {
  Writer w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0102030405060708ull);
  EXPECT_EQ(crypto::to_hex(w.bytes()), "123456789abcde0102030405060708");
}

TEST(ReaderTest, RoundtripIntegers) {
  Writer w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0xdeadbeef);
  w.u64(0xfeedfacecafef00dull);
  Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0xfeedfacecafef00dull);
  EXPECT_TRUE(r.at_end());
}

TEST(ReaderTest, ShortReadThrows) {
  const Bytes data{0x01};
  Reader r{data};
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(ReaderTest, ExpectEndRejectsTrailing) {
  const Bytes data{0x01, 0x02};
  Reader r{data};
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_end());
}

TEST(CodecTest, Blob16Roundtrip) {
  Writer w;
  const Bytes payload{1, 2, 3, 4, 5};
  w.blob16(payload);
  Reader r{w.bytes()};
  EXPECT_EQ(r.blob16(), payload);
}

TEST(CodecTest, EmptyBlobRoundtrip) {
  Writer w;
  w.blob16({});
  Reader r{w.bytes()};
  EXPECT_TRUE(r.blob16().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(CodecTest, TruncatedBlobThrows) {
  Writer w;
  w.u16(10);  // claims 10 bytes but provides none
  Reader r{w.bytes()};
  EXPECT_THROW(r.blob16(), DecodeError);
}

TEST(CodecTest, DigestRoundtrip) {
  Writer w;
  const Digest d{crypto::ByteView{Bytes(20, 0x7f)}};
  w.digest(d);
  Reader r{w.bytes()};
  EXPECT_EQ(r.digest(), d);
}

TEST(CodecTest, OversizeDigestRejected) {
  Bytes data{33};  // claims 33-byte digest
  data.resize(34, 0);
  Reader r{data};
  EXPECT_THROW(r.digest(), DecodeError);
}

TEST(CodecTest, OversizeBlobThrowsOnEncode) {
  Writer w;
  const Bytes huge(0x10000, 0);  // 65536 > u16 max
  EXPECT_THROW(w.blob16(huge), std::length_error);
}

TEST(CodecTest, WriterTakeMovesBuffer) {
  Writer w;
  w.u32(0xaabbccdd);
  const Bytes taken = w.take();
  EXPECT_EQ(taken.size(), 4u);
}

TEST(CodecTest, RawAndRemaining) {
  const Bytes data{1, 2, 3, 4};
  Reader r{data};
  EXPECT_EQ(r.remaining(), 4u);
  const auto v = r.raw(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.raw(2), DecodeError);
}

}  // namespace
}  // namespace alpha::wire
