// Cross-node postmortem merge: two real processes exchange ALPHA traffic
// over loopback UDP, each writing its own flight recording -- with a large
// artificial clock skew injected into one of them. The parent merges the
// recordings offline and must (a) recover the injected skew from matched
// send/receive pairs, (b) restore causality that the skew destroyed, and
// (c) produce hop latencies consistent with the live span-derived RTT
// measured inside the sender process.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/node.hpp"
#include "net/transport.hpp"
#include "trace/flight.hpp"
#include "trace/spans.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

constexpr int kMessages = 12;
/// Injected wall-clock skew on node B: 2 s, ~4 orders of magnitude above
/// loopback latency, so recovery cannot be luck.
constexpr std::uint64_t kSkewUs = 2'000'000;

std::uint64_t wall_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

std::string fresh_dir(const char* tag) {
  std::string dir = ::testing::TempDir() + "alpha_merge_" + tag + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

struct SenderReport {
  double live_rtt_med_us = 0.0;  // median S2-send -> A2-accept from spans
  std::uint64_t acked = 0;
};

core::Config tunnel_config() {
  core::Config config;
  config.reliable = true;
  config.rto_us = 100'000;
  return config;
}

/// Node B: accepts the inbound association, runs with its recorder's wall
/// epoch shifted +kSkewUs, exits after delivering all messages plus grace.
[[noreturn]] void run_receiver(const std::string& dir, int port_fd) {
  Ring ring(std::size_t{1} << 16);
  install(&ring);
  auto transport = std::make_unique<net::UdpTransport>();
  net::UdpTransport* udp = transport.get();

  FlightOptions fopts;
  fopts.dir = dir;
  fopts.node_id = 2;
  fopts.clock_origin_us = udp->now_us();
  fopts.wall_epoch_us = wall_now_us() + kSkewUs;  // the injected skew
  FlightRecorder recorder(fopts, &ring);
  if (!recorder.ok()) _exit(61);

  core::AlphaNode::Options opts;
  opts.config = tunnel_config();
  opts.seed = 2;
  opts.accept_inbound = true;
  opts.trace_origin = 2;
  int delivered = 0;
  core::AlphaNode::Callbacks cbs;
  cbs.on_message = [&](std::uint32_t, crypto::ByteView) { ++delivered; };
  core::AlphaNode node{std::move(transport), opts, cbs};

  const std::uint16_t port =
      static_cast<net::UdpTransport&>(node.transport()).port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(62);

  const std::uint64_t deadline = udp->now_us() + 30'000'000ull;
  while (delivered < kMessages && udp->now_us() < deadline) {
    node.poll(5);
    recorder.drain();
  }
  // Grace: keep acking retransmits while the sender wraps up.
  const std::uint64_t grace_until = udp->now_us() + 1'500'000ull;
  while (udp->now_us() < grace_until) {
    node.poll(5);
    recorder.drain();
  }
  recorder.finalize();
  install(nullptr);
  _exit(delivered == kMessages ? 0 : 63);
}

/// Node A: initiates, sends kMessages one at a time (waiting for the ack),
/// reports its live span-derived RTT, records with an unskewed clock.
[[noreturn]] void run_sender(const std::string& dir, std::uint16_t peer_port,
                             int report_fd) {
  Ring ring(std::size_t{1} << 16);
  install(&ring);
  auto transport = std::make_unique<net::UdpTransport>();
  net::UdpTransport* udp = transport.get();

  FlightOptions fopts;
  fopts.dir = dir;
  fopts.node_id = 1;
  fopts.clock_origin_us = udp->now_us();
  FlightRecorder recorder(fopts, &ring);
  if (!recorder.ok()) _exit(71);

  core::AlphaNode::Options opts;
  opts.config = tunnel_config();
  opts.seed = 1;
  opts.trace_origin = 1;
  std::uint64_t acked = 0;
  core::AlphaNode::Callbacks cbs;
  cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                        core::DeliveryStatus status) {
    if (status == core::DeliveryStatus::kAcked) ++acked;
  };
  core::AlphaNode node{std::move(transport), opts, cbs};
  node.add_initiator(/*assoc_id=*/1, /*peer=*/peer_port, tunnel_config());
  node.start(1);

  const std::uint64_t deadline = udp->now_us() + 30'000'000ull;
  while (node.established_count() == 0 && udp->now_us() < deadline) {
    node.poll(5);
    recorder.drain();
  }
  if (node.established_count() == 0) _exit(72);

  const auto payload = crypto::as_bytes("merge-test datagram");
  for (int i = 0; i < kMessages; ++i) {
    const std::uint64_t want = acked + 1;
    node.submit(1, crypto::Bytes(payload.begin(), payload.end()));
    while (acked < want && udp->now_us() < deadline) {
      node.poll(5);
      recorder.drain();
    }
  }
  recorder.finalize();

  // Live span-derived RTT: S2 first send -> last accepted A2, per round.
  SpanBuilder spans;
  spans.ingest_new(ring);
  std::vector<double> rtts;
  for (const RoundSpan& span : spans.spans()) {
    if (span.s2_first_sent_us != RoundSpan::kUnset &&
        span.last_a2_us != RoundSpan::kUnset &&
        span.last_a2_us > span.s2_first_sent_us) {
      rtts.push_back(
          static_cast<double>(span.last_a2_us - span.s2_first_sent_us));
    }
  }
  SenderReport report;
  report.acked = acked;
  if (!rtts.empty()) {
    std::sort(rtts.begin(), rtts.end());
    report.live_rtt_med_us = rtts[rtts.size() / 2];
  }
  install(nullptr);
  if (::write(report_fd, &report, sizeof(report)) != sizeof(report)) _exit(73);
  _exit(acked == kMessages ? 0 : 74);
}

double median_of(std::vector<double> v) {
  EXPECT_FALSE(v.empty());
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

TEST(FlightMerge, TwoProcessUdpRecordingsMergeIntoOneTimeline) {
  const std::string dir_a = fresh_dir("a");
  const std::string dir_b = fresh_dir("b");

  int b_pipe[2], a_pipe[2];
  ASSERT_EQ(::pipe(b_pipe), 0);
  ASSERT_EQ(::pipe(a_pipe), 0);

  const pid_t pid_b = ::fork();
  ASSERT_GE(pid_b, 0);
  if (pid_b == 0) {
    ::close(b_pipe[0]);
    ::close(a_pipe[0]);
    ::close(a_pipe[1]);
    run_receiver(dir_b, b_pipe[1]);
  }
  ::close(b_pipe[1]);
  std::uint16_t port_b = 0;
  ASSERT_EQ(::read(b_pipe[0], &port_b, sizeof(port_b)),
            static_cast<ssize_t>(sizeof(port_b)));
  ::close(b_pipe[0]);
  ASSERT_NE(port_b, 0);

  const pid_t pid_a = ::fork();
  ASSERT_GE(pid_a, 0);
  if (pid_a == 0) {
    ::close(a_pipe[0]);
    run_sender(dir_a, port_b, a_pipe[1]);
  }
  ::close(a_pipe[1]);
  SenderReport report;
  ASSERT_EQ(::read(a_pipe[0], &report, sizeof(report)),
            static_cast<ssize_t>(sizeof(report)));
  ::close(a_pipe[0]);

  int status = 0;
  ASSERT_EQ(::waitpid(pid_a, &status, 0), pid_a);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "sender status " << status;
  ASSERT_EQ(::waitpid(pid_b, &status, 0), pid_b);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "receiver status " << status;
  ASSERT_EQ(report.acked, static_cast<std::uint64_t>(kMessages));
  ASSERT_GT(report.live_rtt_med_us, 0.0);

  FlightRecording rec_a, rec_b;
  std::string err;
  ASSERT_TRUE(read_flight_dir(dir_a, rec_a, &err)) << err;
  ASSERT_TRUE(read_flight_dir(dir_b, rec_b, &err)) << err;
  EXPECT_EQ(rec_a.node_id(), 1u);
  EXPECT_EQ(rec_b.node_id(), 2u);
  EXPECT_EQ(rec_a.segments.back().header.finalized, 1u);
  EXPECT_EQ(rec_b.segments.back().header.finalized, 1u);

  // Uncorrected, the injected skew destroys causality on the B->A leg:
  // B stamps its sends ~2 s in the future, so A receives "before" B sent.
  {
    std::vector<double> rev_raw;
    std::map<std::uint64_t, std::uint64_t> b_sent, a_recv;
    const auto key = [](const Event& e) {
      return (static_cast<std::uint64_t>(e.assoc_id) << 40) ^
             (static_cast<std::uint64_t>(e.seq) << 8) ^ e.packet_type;
    };
    for (const FlightSegment& seg : rec_b.segments) {
      for (const Event& e : seg.events) {
        if (e.kind == EventKind::kTransportSent) {
          b_sent.emplace(key(e), flight_wall_us(seg.header, e.time_us));
        }
      }
    }
    for (const FlightSegment& seg : rec_a.segments) {
      for (const Event& e : seg.events) {
        if (e.kind == EventKind::kTransportReceived) {
          a_recv.emplace(key(e), flight_wall_us(seg.header, e.time_us));
        }
      }
    }
    for (const auto& [k, sent] : b_sent) {
      const auto it = a_recv.find(k);
      if (it != a_recv.end()) {
        rev_raw.push_back(static_cast<double>(it->second) -
                          static_cast<double>(sent));
      }
    }
    ASSERT_FALSE(rev_raw.empty());
    EXPECT_LT(median_of(rev_raw), 0.0) << "skew injection had no effect?";
  }

  MergeResult merged;
  ASSERT_TRUE(merge_recordings({rec_a, rec_b}, merged, &err)) << err;
  ASSERT_EQ(merged.links.size(), 1u);
  const ClockLink& link = merged.links.front();
  EXPECT_EQ(link.node_id, 2u);
  ASSERT_TRUE(link.refined) << "no matched send/receive pairs";
  EXPECT_GE(link.matched_pairs, static_cast<std::size_t>(kMessages));

  // (a) The estimator recovers the injected skew. Tolerance: half the live
  // RTT (the asymmetry bound of the two-sample estimate) plus scheduling
  // noise -- orders of magnitude below the 2 s skew.
  const double skew_err =
      std::abs(link.offset_us - static_cast<double>(kSkewUs));
  EXPECT_LT(skew_err, report.live_rtt_med_us / 2.0 + 5000.0)
      << "estimated offset " << link.offset_us;

  // (b) Corrected one-way latency is positive and physically sensible.
  EXPECT_GT(link.latency_us, 0.0);

  // (c) Merged hop latency vs the live span-derived value: the round trip
  // reassembled from the two recordings (forward + reverse medians =
  // 2 * latency_us) must agree with the RTT the sender's own span builder
  // measured live, within 5% (plus a small absolute floor for scheduler
  // jitter on sub-millisecond loopback numbers).
  const double merged_rtt = 2.0 * link.latency_us;
  const double tolerance =
      std::max(0.05 * report.live_rtt_med_us, 250.0);
  EXPECT_NEAR(merged_rtt, report.live_rtt_med_us, tolerance);

  // The merged timeline interleaves both nodes in corrected order, and
  // spans reconstruct across processes: A's sends + B's deliveries.
  ASSERT_EQ(merged.timeline.size(),
            rec_a.total_events() + rec_b.total_events());
  bool saw_a = false, saw_b = false;
  std::uint64_t prev_wall = 0;
  SpanBuilder spans;
  for (const MergedEvent& me : merged.timeline) {
    saw_a |= me.node_id == 1;
    saw_b |= me.node_id == 2;
    EXPECT_GE(me.wall_us, prev_wall);
    prev_wall = me.wall_us;
    spans.ingest(me.event);
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_EQ(spans.deliveries(), static_cast<std::uint64_t>(kMessages));
}

}  // namespace
}  // namespace alpha::trace
