// TelemetryServer over real TCP, and the live acceptance claims: the
// span-derived minimum delivery latency scraped from /metrics reads the
// paper's 1.5 RTT (±5%) on the 1/2/4-hop simulator, and a wedged round
// (budget burning with no progress) flips /healthz to 503 "degraded".
#include "trace/telemetry.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/path.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

using core::Config;
using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;

/// Blocking-free HTTP client: sends `request`, then alternates pumping the
/// single-threaded server with draining the socket until the server closes.
std::string http_exchange(TelemetryServer& server, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  std::string response;
  for (int i = 0; i < 2000; ++i) {
    server.poll(1);
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // server closed: response complete (Connection: close)
    }
  }
  ::close(fd);
  return response;
}

std::string http_get(TelemetryServer& server, const std::string& path) {
  return http_exchange(server,
                       "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// Raw connected non-blocking client socket to the server's loopback port.
int connect_client(TelemetryServer& server) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

/// Drains whatever `fd` has ready, pumping the server between reads, until
/// the server closes the connection or `max_rounds` polls elapse. Reads at
/// most `chunk` bytes per round (slow-reader simulation).
std::string drain_response(TelemetryServer& server, int fd,
                           std::size_t chunk = 4096, int max_rounds = 5000) {
  std::string response;
  std::vector<char> buf(chunk);
  for (int i = 0; i < max_rounds; ++i) {
    server.poll(0);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      response.append(buf.data(), static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // server closed: response complete
    }
  }
  return response;
}

/// Value of an un-labelled counter line ("name 123") in Prometheus text.
double metric_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

TEST(Telemetry, ServesMetricsHealthzAnd404) {
  int metrics_calls = 0;
  TelemetryServer server{
      TelemetryServer::Options{},  // port 0: ephemeral
      [&] {
        ++metrics_calls;
        return std::string("alpha_up 1\n");
      },
      [] {
        return std::make_pair(200, std::string("{\"status\":\"ok\"}"));
      }};
  ASSERT_TRUE(server.ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("alpha_up 1"), std::string::npos);
  EXPECT_EQ(metrics_calls, 1);

  const std::string health = http_get(server, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("application/json"), std::string::npos);
  EXPECT_NE(health.find("{\"status\":\"ok\"}"), std::string::npos);

  EXPECT_NE(http_get(server, "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // Non-GET requests fall through to 404 instead of crashing the poller.
  EXPECT_NE(http_exchange(server, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404"),
            std::string::npos);
}

TEST(Telemetry, HealthzStatusFollowsCallback) {
  int status = 200;
  TelemetryServer server{
      TelemetryServer::Options{}, [] { return std::string(); },
      [&] {
        return std::make_pair(status,
                              std::string("{\"status\":\"degraded\"}"));
      }};
  ASSERT_TRUE(server.ok());
  status = 503;
  const std::string resp = http_get(server, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(resp.find("degraded"), std::string::npos);
}

TEST(Telemetry, RefusesPortInUse) {
  TelemetryServer first{TelemetryServer::Options{},
                        [] { return std::string(); },
                        [] { return std::make_pair(200, std::string()); }};
  ASSERT_TRUE(first.ok());
  TelemetryServer::Options clash;
  clash.port = first.port();
  TelemetryServer second{clash, [] { return std::string(); },
                         [] { return std::make_pair(200, std::string()); }};
  EXPECT_FALSE(second.ok());
}

/// Runs one message over an N-hop protected path (10 ms links, no jitter)
/// and returns the span-derived minimum delivery latency scraped from a
/// live /metrics endpoint.
double live_min_latency_us(std::size_t hops) {
  Ring ring(std::size_t{1} << 14);
  metrics::Registry registry;
  SpanBuilder spans{&registry};

  net::Simulator sim;
  net::Network network{sim, 2};
  std::vector<net::NodeId> nodes;
  for (net::NodeId id = 0; id <= hops; ++id) {
    network.add_node(id);
    nodes.push_back(id);
  }
  net::LinkConfig link;
  link.latency = 10 * kMillisecond;
  link.bandwidth_bps = 1'000'000'000;
  for (net::NodeId id = 0; id < hops; ++id) network.add_link(id, id + 1, link);

  Config config;
  core::ProtectedPath path{network, nodes, config, 1, /*seed=*/3};
  path.start();
  sim.run_until(kSecond);
  EXPECT_TRUE(path.initiator().established());

  install(&ring);
  // Submit through the node runtime: it opens the trace context that stamps
  // kRoundStart/kPacketSent with the submit-time clock.
  path.node(0).submit(/*assoc_id=*/1, Bytes(100, 1));
  const net::SimTime deadline = sim.now() + 10 * kSecond;
  while (sim.now() < deadline && path.delivered_to_responder().empty()) {
    sim.run_until(sim.now() + kMillisecond);
  }
  install(nullptr);
  EXPECT_EQ(path.delivered_to_responder().size(), 1u);
  spans.ingest_new(ring);

  TelemetryServer server{TelemetryServer::Options{},
                         [&] { return registry.render_prometheus(); },
                         [] { return std::make_pair(200, std::string()); }};
  EXPECT_TRUE(server.ok());
  const std::string text = http_get(server, "/metrics");
  EXPECT_NE(text.find("alpha_span_delivery_latency_us_bucket"),
            std::string::npos);
  return metric_value(text, "alpha_span_delivery_latency_min_us");
}

TEST(Telemetry, LiveMinDeliveryLatencyReads1Point5Rtt) {
  // §3.2.2: minimum delivery latency of a signature round is 1.5 RTT
  // (S1 out, A1 back, S2 out). Asserted from the live endpoint, per hop
  // count, within ±5%.
  for (const std::size_t hops : {1u, 2u, 4u}) {
    const double rtt_us =
        2.0 * static_cast<double>(hops) * (10.0 * kMillisecond);
    const double min_us = live_min_latency_us(hops);
    ASSERT_GT(min_us, 0) << hops << " hops: metric missing";
    EXPECT_GE(min_us, 1.5 * rtt_us * 0.95) << hops << " hops";
    EXPECT_LE(min_us, 1.5 * rtt_us * 1.05) << hops << " hops";
  }
}

TEST(Telemetry, WedgedRoundFlipsHealthzTo503) {
  // Seeded retry-budget-exhaustion shape: the handshake completes, then a
  // permanent partition wedges the first signature round -- retries climb
  // with zero progress while the budget keeps the association alive.
  Ring ring(std::size_t{1} << 12);
  net::Simulator sim;
  net::Network network{sim, 2};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 5 * kMillisecond;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, link);

  Config config;
  config.reliable = true;
  config.max_retries = 1000;  // budget outlives the watchdog threshold
  core::ProtectedPath path{network, {0, 1, 2}, config, 1, /*seed=*/5};
  path.start();
  sim.run_until(kSecond);
  ASSERT_TRUE(path.initiator().established());

  network.schedule_partition(0, 1, sim.now(), 3600 * kSecond);
  path.node(0).submit(/*assoc_id=*/1, Bytes(64, 1));

  HealthMonitor health;
  install(&ring);
  TelemetryServer server{
      TelemetryServer::Options{}, [] { return std::string(); },
      [&] {
        const auto snap = path.node(0).snapshot(true);
        std::vector<AssocHealthSample> samples;
        for (const auto& a : snap.assocs) {
          AssocHealthSample s;
          s.assoc_id = a.assoc_id;
          s.established = a.established;
          s.failed = a.failed;
          s.round_active = a.round_active;
          s.round_seq = a.round_seq;
          s.round_retries = a.round_retries;
          s.rekeys_started = a.rekeys_started;
          samples.push_back(s);
        }
        health.observe(samples, sim.now(), ring.dropped());
        return std::make_pair(health.http_status(), health.healthz_json());
      }};
  ASSERT_TRUE(server.ok());

  // Healthy before the retries accumulate...
  EXPECT_NE(http_get(server, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);

  // ...then the partition lets the retry counter climb past the threshold.
  for (int i = 0; i < 600; ++i) {
    sim.run_until(sim.now() + kSecond);
    const auto snap = path.node(0).snapshot(true);
    if (!snap.assocs.empty() && snap.assocs[0].round_retries >= 4) break;
  }
  const std::string resp = http_get(server, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(resp.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(resp.find("\"wedged_round\""), std::string::npos);
  install(nullptr);

  // The transition itself was traced for offline forensics.
  bool saw_degraded_event = false;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring.at(i).kind == EventKind::kHealthDegraded) {
      saw_degraded_event = true;
      EXPECT_NE(ring.at(i).detail & kHealthWedgedRound, 0u);
    }
  }
  EXPECT_TRUE(saw_degraded_event);
}

// A trickling client must neither wedge the server nor corrupt the request:
// the request arrives one byte per poll() round, and the response must still
// be a complete, correct scrape.
TEST(Telemetry, SlowClientSendsRequestByteAtATime) {
  int metrics_calls = 0;
  TelemetryServer server{TelemetryServer::Options{},
                         [&] {
                           ++metrics_calls;
                           return std::string("alpha_up 1\n");
                         },
                         [] { return std::make_pair(200, std::string("{}")); }};
  ASSERT_TRUE(server.ok());

  const int fd = connect_client(server);
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  for (std::size_t i = 0; i < request.size(); ++i) {
    EXPECT_EQ(::send(fd, &request[i], 1, 0), 1);
    server.poll(0);
    // No response may be emitted before the request terminator arrives.
    if (i + 1 < request.size()) {
      char peek;
      EXPECT_LE(::recv(fd, &peek, 1, MSG_PEEK), 0);
    }
  }
  const std::string response = drain_response(server, fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("alpha_up 1"), std::string::npos);
  EXPECT_EQ(metrics_calls, 1);
}

// A client that reads its response a few bytes at a time forces the server
// through many partial non-blocking writes on a large body; every byte must
// arrive, in order, without blocking the poll loop.
TEST(Telemetry, SlowReaderDrainsLargeBodyInTinyChunks) {
  // Big enough to overflow any socket buffer several times over.
  std::string body;
  for (int i = 0; i < 20000; ++i) {
    body += "alpha_row_" + std::to_string(i) + " 1\n";
  }
  TelemetryServer server{TelemetryServer::Options{}, [&] { return body; },
                         [] { return std::make_pair(200, std::string("{}")); }};
  ASSERT_TRUE(server.ok());

  const int fd = connect_client(server);
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const std::string response =
      drain_response(server, fd, /*chunk=*/311, /*max_rounds=*/200000);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  const auto body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(response.substr(body_at + 4), body);
}

// Two scrapes in flight at once: requests arrive interleaved, and each
// connection must get its own complete response.
TEST(Telemetry, TwoConcurrentScrapes) {
  int metrics_calls = 0;
  TelemetryServer server{TelemetryServer::Options{},
                         [&] {
                           ++metrics_calls;
                           return "alpha_scrape " +
                                  std::to_string(metrics_calls) + "\n";
                         },
                         [] { return std::make_pair(200, std::string("{}")); }};
  ASSERT_TRUE(server.ok());

  const int fd_a = connect_client(server);
  const int fd_b = connect_client(server);
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::size_t half = request.size() / 2;
  // First halves, then a poll, then the rest: the server sees two partially
  // read requests concurrently.
  EXPECT_EQ(::send(fd_a, request.data(), half, 0), static_cast<ssize_t>(half));
  EXPECT_EQ(::send(fd_b, request.data(), half, 0), static_cast<ssize_t>(half));
  server.poll(0);
  EXPECT_EQ(metrics_calls, 0);
  EXPECT_EQ(::send(fd_a, request.data() + half, request.size() - half, 0),
            static_cast<ssize_t>(request.size() - half));
  EXPECT_EQ(::send(fd_b, request.data() + half, request.size() - half, 0),
            static_cast<ssize_t>(request.size() - half));

  const std::string resp_a = drain_response(server, fd_a);
  const std::string resp_b = drain_response(server, fd_b);
  ::close(fd_a);
  ::close(fd_b);
  EXPECT_NE(resp_a.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp_b.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp_a.find("alpha_scrape "), std::string::npos);
  EXPECT_NE(resp_b.find("alpha_scrape "), std::string::npos);
  EXPECT_EQ(metrics_calls, 2);
}

}  // namespace
}  // namespace alpha::trace
