// StageProfiler: hook cost discipline (no-op without install), sampling
// cadence, fallback behaviour where perf counters are unavailable, and the
// alpha_prof_* metric export. Hardware counter values are only asserted
// when the kernel actually granted the perf group -- CI containers often
// run with perf_event_paranoid locked down.
#include "trace/prof.hpp"

#include <gtest/gtest.h>

#include "hashchain/chain.hpp"
#include "trace/metrics.hpp"

namespace alpha::trace {
namespace {

TEST(Prof, ScopedStageIsNoopWithoutProfiler) {
  install_profiler(nullptr);
  for (int i = 0; i < 100; ++i) {
    ScopedStage stage(Stage::kChainStep);
  }
  // Nothing to observe -- the point is that this compiles to a pointer
  // check and cannot crash or leak.
  SUCCEED();
}

TEST(Prof, CountsCallsAndSamplesAtTheConfiguredCadence) {
  StageProfiler::Options opts;
  opts.sample_every = 8;
  StageProfiler prof(opts);
  install_profiler(&prof);
  for (int i = 0; i < 100; ++i) {
    ScopedStage stage(Stage::kRelayVerify);
  }
  install_profiler(nullptr);

  const auto& t = prof.totals(Stage::kRelayVerify);
  EXPECT_EQ(t.calls, 100u);
  EXPECT_EQ(t.samples, 13u);  // entries 0, 8, 16, ..., 96
  EXPECT_EQ(prof.totals(Stage::kShardDrain).calls, 0u);
}

TEST(Prof, SampledStagesAccumulateWallTimeAndCounters) {
  StageProfiler::Options opts;
  opts.sample_every = 1;  // sample everything
  StageProfiler prof(opts);
  install_profiler(&prof);
  // Real work inside the stage: the chain-step hook itself, driven through
  // the production call site in hashchain::chain_step.
  const crypto::Bytes seed(20, 0xAB);
  crypto::Digest d{crypto::ByteView{seed}};
  for (std::size_t i = 1; i <= 200; ++i) {
    d = hashchain::chain_step(crypto::HashAlgo::kSha1,
                              hashchain::ChainTagging::kRoleBound, d, i);
  }
  install_profiler(nullptr);

  const auto& t = prof.totals(Stage::kChainStep);
  EXPECT_EQ(t.calls, 200u);
  EXPECT_EQ(t.samples, 200u);
  EXPECT_GT(t.wall_ns, 0u);
  if (prof.hw_available()) {
    EXPECT_GT(t.cycles, 0u);
    EXPECT_GT(t.instructions, 0u);
  } else {
    EXPECT_EQ(t.cycles, 0u);
  }
}

TEST(Prof, ExportsPerStageMetrics) {
  StageProfiler prof;
  install_profiler(&prof);
  {
    ScopedStage stage(Stage::kShardDrain);
  }
  install_profiler(nullptr);

  metrics::Registry registry;
  export_prof(prof, registry);
  EXPECT_EQ(registry.counter("alpha_prof_calls", "stage=\"shard_drain\""), 1u);
  EXPECT_EQ(registry.counter("alpha_prof_samples", "stage=\"shard_drain\""),
            1u);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("alpha_prof_hw_available"), std::string::npos);
  EXPECT_NE(text.find("alpha_prof_cycles{stage=\"chain_step\"}"),
            std::string::npos);
  // Idempotent re-export (telemetry refresh loops fold repeatedly).
  export_prof(prof, registry);
  EXPECT_EQ(registry.counter("alpha_prof_calls", "stage=\"shard_drain\""), 1u);
}

}  // namespace
}  // namespace alpha::trace
