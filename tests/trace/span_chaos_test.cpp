// Span reconciliation under seeded chaos: every payload the verifier
// delivered maps to exactly one complete span, retransmitted rounds carry
// attempt-tagged sub-spans, and span-derived latency agrees with a direct
// wall-clock measurement of the same delivery.
#include <gtest/gtest.h>

#include "core/path.hpp"
#include "trace/spans.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

using core::Config;
using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;

TEST(SpanChaos, EveryDeliveryReconcilesToExactlyOneCompleteSpan) {
  // Same adversarial schedule as the completeness test: loss, duplication,
  // corruption and a scheduled partition over a 3-hop path.
  Ring ring(std::size_t{1} << 18);
  install(&ring);

  net::Simulator sim;
  net::Network network{sim, /*seed=*/1337};
  network.set_chaos_seed(0xa11ce);
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.jitter = 3 * kMillisecond;
  link.loss_rate = 0.05;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);
  net::FaultConfig faults;
  faults.duplicate_rate = 0.1;
  faults.corrupt_rate = 0.03;
  for (net::NodeId id = 0; id < 3; ++id) {
    network.set_link_faults(id, id + 1, faults);
  }
  network.schedule_partition(1, 2, 10 * kSecond, 3 * kSecond);

  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;
  core::ProtectedPath path{network, {0, 1, 2, 3}, config, 1, /*seed=*/99};

  path.start();
  sim.run_until(sim.now() + 5 * kSecond);
  for (int attempt = 0; attempt < 50 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(path.initiator().established());

  constexpr std::size_t kMessages = 25;
  for (std::size_t i = 0; i < kMessages; ++i) {
    // Via the node runtime so submit-time trace context is opened.
    path.node(0).submit(/*assoc_id=*/1, Bytes(64, static_cast<std::uint8_t>(i)));
    sim.run_until(sim.now() + kSecond);
  }
  sim.run_until(sim.now() + 120 * kSecond);
  install(nullptr);

  ASSERT_EQ(path.delivered_to_responder().size(), kMessages);
  ASSERT_EQ(ring.total(), ring.size()) << "ring wrapped; grow it";

  SpanBuilder builder;
  builder.ingest_new(ring);
  EXPECT_EQ(builder.lost_events(), 0u);

  // Exactly-once: span-level deliveries reconcile 1:1 with the payloads the
  // application saw, despite chaos duplicates and retransmissions.
  EXPECT_EQ(builder.deliveries(), kMessages);
  std::size_t delivered_in_spans = 0;
  std::size_t retransmitted_rounds = 0;
  for (const RoundSpan& span : builder.spans()) {
    EXPECT_TRUE(span.terminal())
        << "assoc " << span.assoc_id << " seq " << span.seq << " unfinished";
    delivered_in_spans += span.delivered;
    if (span.complete()) {
      EXPECT_EQ(span.delivered, span.batch);
      // Every delivered message sub-span is individually closed.
      for (const MessageSpan& m : span.messages) {
        EXPECT_NE(m.delivered_us, MessageSpan::kUnset);
        EXPECT_NE(m.s2_sent_us, MessageSpan::kUnset);
        EXPECT_GE(m.delivered_us, m.s2_sent_us);
      }
      // Decomposition accounting: queue + retransmit-wait + propagation
      // covers the whole journey (retransmit-wait can overshoot e2e when S2
      // retransmits continue past the last delivery, until the A2 lands --
      // propagation then saturates at zero).
      EXPECT_GE(span.queue_us + span.retransmit_wait_us() +
                    span.propagation_us(),
                span.e2e_us());
      EXPECT_GE(span.e2e_us(), span.queue_us + span.propagation_us());
    }
    if (!span.attempts.empty()) {
      ++retransmitted_rounds;
      std::uint64_t prev = 0;
      for (const AttemptSpan& a : span.attempts) {
        EXPECT_GE(a.attempt, 1u);
        EXPECT_TRUE(a.packet_type == 1 || a.packet_type == 3)
            << "attempt on non-S1/S2 leg";
        EXPECT_GE(a.time_us, prev);  // attempts are time-ordered
        prev = a.time_us;
      }
    }
  }
  EXPECT_EQ(delivered_in_spans, kMessages);
  EXPECT_EQ(builder.rounds_failed(), 0u);
  // The chaos schedule actually forced retransmissions (the partition alone
  // guarantees it), so attempt-tagged sub-spans exist.
  EXPECT_GT(retransmitted_rounds, 0u);

  // Latency floor: nothing can beat 1.5 RTT on the base (jitter-free)
  // latency -- chaos only ever adds time.
  const double floor_us = 1.5 * 2.0 * 3.0 * (2.0 * kMillisecond);
  EXPECT_GE(static_cast<double>(builder.min_delivery_latency_us()), floor_us);
}

TEST(SpanChaos, SpanLatencyAgreesWithDirectMeasurement) {
  Ring ring(std::size_t{1} << 14);
  net::Simulator sim;
  net::Network network{sim, 2};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 10 * kMillisecond;
  link.bandwidth_bps = 1'000'000'000;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, link);

  Config config;
  core::ProtectedPath path{network, {0, 1, 2}, config, 1, /*seed=*/3};
  path.start();
  sim.run_until(kSecond);
  ASSERT_TRUE(path.initiator().established());

  install(&ring);
  const net::SimTime t0 = sim.now();
  path.node(0).submit(/*assoc_id=*/1, Bytes(100, 1));
  net::SimTime delivered_at = 0;
  while (sim.now() < t0 + 10 * kSecond) {
    sim.run_until(sim.now() + kMillisecond);
    if (!path.delivered_to_responder().empty()) {
      delivered_at = sim.now();
      break;
    }
  }
  install(nullptr);
  ASSERT_NE(delivered_at, 0u);
  const std::uint64_t direct_us = delivered_at - t0;

  SpanBuilder builder;
  builder.ingest_new(ring);
  const std::uint64_t span_us = builder.min_delivery_latency_us();
  ASSERT_NE(span_us, SpanBuilder::kUnset);
  // The direct measurement polls at millisecond granularity and so can only
  // overshoot the exact event-timestamped span latency.
  EXPECT_LE(span_us, direct_us);
  EXPECT_GE(span_us + 2 * kMillisecond, direct_us);
}

}  // namespace
}  // namespace alpha::trace
