// Trace completeness under seeded chaos: every frame the network accepts
// must terminate in exactly one traced fate.
//
// The invariant the observability layer sells is "no silent packet loss":
// for each send() the simulated network emits exactly one terminal event
// (kNetDelivered or kNetDropped-with-reason), plus one kNetDuplicated per
// injected extra copy. This test runs the full stack (ProtectedPath over
// the chaos fault layer with loss, duplication, corruption and a scheduled
// partition) and reconciles the trace ring against the network's own
// counters event by event.
#include <gtest/gtest.h>

#include <map>

#include "core/path.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

using core::Config;
using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;

TEST(TraceCompleteness, EveryFrameTerminatesInExactlyOneFate) {
  // Big enough that nothing wraps: reconciliation needs every event.
  Ring ring(std::size_t{1} << 18);
  install(&ring);

  net::Simulator sim;
  net::Network network{sim, /*seed=*/1337};
  network.set_chaos_seed(0xa11ce);
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.jitter = 3 * kMillisecond;
  link.loss_rate = 0.05;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  net::FaultConfig faults;
  faults.duplicate_rate = 0.1;
  faults.corrupt_rate = 0.03;
  for (net::NodeId id = 0; id < 3; ++id) {
    network.set_link_faults(id, id + 1, faults);
  }
  network.schedule_partition(1, 2, 10 * kSecond, 3 * kSecond);

  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;
  core::ProtectedPath path{network, {0, 1, 2, 3}, config, 1, /*seed=*/99};

  path.start(/*tick_horizon_us=*/600 * kSecond);
  sim.run_until(sim.now() + 5 * kSecond);
  for (int attempt = 0; attempt < 50 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(path.initiator().established());

  for (int i = 0; i < 25; ++i) {
    path.initiator().submit(Bytes(64, static_cast<std::uint8_t>(i)),
                            sim.now());
    sim.run_until(sim.now() + kSecond);
  }
  sim.run_until(sim.now() + 120 * kSecond);
  install(nullptr);

  EXPECT_EQ(path.delivered_to_responder().size(), 25u);

  // No wrap: the ring retained every event it ever recorded.
  ASSERT_EQ(ring.total(), ring.size());

  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
  std::uint64_t net_duplicated = 0;
  std::uint64_t corrupted_deliveries = 0;
  std::map<DropReason, std::uint64_t> drop_reasons;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Event& e = ring.at(i);
    switch (e.kind) {
      case EventKind::kNetDelivered:
        ++net_delivered;
        if (e.reason == DropReason::kChaosCorrupted) ++corrupted_deliveries;
        break;
      case EventKind::kNetDropped:
        ++net_dropped;
        // A dropped frame without a reason is exactly the silent loss the
        // taxonomy exists to rule out.
        EXPECT_NE(e.reason, DropReason::kNone) << "unattributed drop";
        ++drop_reasons[e.reason];
        break;
      case EventKind::kNetDuplicated:
        ++net_duplicated;
        break;
      default:
        break;
    }
  }

  const net::LinkStats stats = network.total_stats();
  ASSERT_GT(stats.frames_sent, 0u);
  // The chaos schedule actually exercised every fault class.
  EXPECT_GT(stats.frames_lost, 0u);
  EXPECT_GT(stats.frames_duplicated, 0u);
  EXPECT_GT(stats.frames_corrupted, 0u);
  EXPECT_GT(stats.frames_link_down, 0u);

  // Event counts reconcile 1:1 with the network's own accounting...
  EXPECT_EQ(net_delivered, stats.frames_delivered);
  EXPECT_EQ(net_duplicated, stats.frames_duplicated);
  EXPECT_EQ(net_dropped,
            stats.frames_lost + stats.frames_oversize + stats.frames_link_down);
  EXPECT_EQ(corrupted_deliveries, stats.frames_corrupted);
  // ...and every send() has exactly one terminal fate: the duplicated
  // extras are accounted separately, so delivered + dropped == sent.
  EXPECT_EQ(net_delivered + net_dropped, stats.frames_sent);
  // Per-reason attribution matches the per-cause counters.
  EXPECT_EQ(drop_reasons[DropReason::kLost], stats.frames_lost);
  EXPECT_EQ(drop_reasons[DropReason::kLinkDown], stats.frames_link_down);
}

}  // namespace
}  // namespace alpha::trace
