// SpanBuilder semantics over synthetic event streams: component
// decomposition, attempt tagging, generation splitting on seq reuse,
// exactly-once delivery accounting and the ring-wrap-safe cursor.
#include "trace/spans.hpp"

#include <gtest/gtest.h>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

constexpr std::uint8_t kS1 = 1;
constexpr std::uint8_t kA1 = 2;
constexpr std::uint8_t kS2 = 3;
constexpr std::uint8_t kA2 = 4;

Event ev(EventKind kind, std::uint64_t t, std::uint32_t assoc,
         std::uint32_t seq, std::uint8_t type = 0, std::uint64_t detail = 0,
         DropReason reason = DropReason::kNone) {
  Event e;
  e.time_us = t;
  e.detail = detail;
  e.assoc_id = assoc;
  e.seq = seq;
  e.kind = kind;
  e.reason = reason;
  e.packet_type = type;
  return e;
}

TEST(Spans, HappyPathDecomposesComponents) {
  metrics::Registry registry;
  SpanBuilder builder{&registry};

  // Round opened at t=1000 after 400 us of queueing and 25 us of crypto.
  builder.ingest(ev(EventKind::kRoundStart, 1000, 7, 1, 0,
                    pack_round_detail(400, 25'000)));
  builder.ingest(ev(EventKind::kPacketSent, 1000, 7, 1, kS1, /*batch=*/2));
  builder.ingest(ev(EventKind::kPacketAccepted, 1010, 7, 1, kS1));
  builder.ingest(ev(EventKind::kPacketSent, 1010, 7, 1, kA1));
  builder.ingest(ev(EventKind::kPacketAccepted, 1020, 7, 1, kA1));
  builder.ingest(ev(EventKind::kPacketSent, 1020, 7, 1, kS2, /*msg=*/0));
  builder.ingest(ev(EventKind::kPacketSent, 1021, 7, 1, kS2, /*msg=*/1));
  builder.ingest(ev(EventKind::kDelivered, 1030, 7, 1, kS2, /*msg=*/0));
  EXPECT_EQ(builder.rounds_complete(), 0u);  // one message still in flight
  builder.ingest(ev(EventKind::kDelivered, 1032, 7, 1, kS2, /*msg=*/1));

  ASSERT_EQ(builder.spans().size(), 1u);
  const RoundSpan& span = builder.spans()[0];
  EXPECT_TRUE(span.complete());
  EXPECT_EQ(span.batch, 2u);
  EXPECT_EQ(span.delivered, 2u);
  // Origin backs up to submission: round open minus queue wait.
  EXPECT_EQ(span.origin_us(), 600u);
  EXPECT_EQ(span.e2e_us(), 1032u - 600u);
  EXPECT_EQ(span.queue_us, 400u);
  EXPECT_EQ(span.crypto_ns, 25'000u);
  EXPECT_EQ(span.retransmit_wait_us(), 0u);
  EXPECT_EQ(span.propagation_us(), span.e2e_us() - span.queue_us);

  EXPECT_EQ(builder.deliveries(), 2u);
  EXPECT_EQ(builder.rounds_complete(), 1u);
  EXPECT_EQ(builder.min_delivery_latency_us(), 1030u - 600u);
  EXPECT_EQ(registry.counter("alpha_span_deliveries"), 2u);
  EXPECT_EQ(registry.counter("alpha_span_rounds_complete"), 1u);
  EXPECT_EQ(registry.counter("alpha_span_delivery_latency_min_us"), 430u);
  EXPECT_EQ(
      registry.histogram("alpha_span_delivery_latency_us", "assoc=\"7\"")
          .count(),
      2u);
  EXPECT_EQ(registry.histogram("alpha_span_queue_wait_us").count(), 1u);
  EXPECT_EQ(registry.histogram("alpha_span_propagation_us").count(), 1u);
}

TEST(Spans, DuplicateDeliveryCountsOnce) {
  SpanBuilder builder;
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS1, 1));
  builder.ingest(ev(EventKind::kDelivered, 200, 1, 1, kS2, 0));
  builder.ingest(ev(EventKind::kDelivered, 250, 1, 1, kS2, 0));  // dup S2
  EXPECT_EQ(builder.deliveries(), 1u);
  EXPECT_EQ(builder.spans()[0].delivered, 1u);
  EXPECT_EQ(builder.rounds_complete(), 1u);  // finished exactly once
}

TEST(Spans, RetransmitAttemptsAreTagged) {
  SpanBuilder builder;
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS1, 1));
  builder.ingest(ev(EventKind::kRetransmit, 300, 1, 1, kS1, /*attempt=*/1));
  builder.ingest(ev(EventKind::kRetransmit, 500, 1, 1, kS1, /*attempt=*/2));
  builder.ingest(ev(EventKind::kPacketSent, 520, 1, 1, kS2, 0));
  builder.ingest(ev(EventKind::kRetransmit, 560, 1, 1, kS2, /*attempt=*/3));
  // Handshake retransmits carry no round context and must be ignored.
  builder.ingest(ev(EventKind::kRetransmit, 570, 1, 1, /*hs1=*/5, 1));
  builder.ingest(ev(EventKind::kDelivered, 600, 1, 1, kS2, 0));

  const RoundSpan& span = builder.spans()[0];
  ASSERT_EQ(span.attempts.size(), 3u);
  EXPECT_EQ(span.attempts[0].packet_type, kS1);
  EXPECT_EQ(span.attempts[0].attempt, 1u);
  EXPECT_EQ(span.attempts[1].attempt, 2u);
  EXPECT_EQ(span.attempts[2].packet_type, kS2);
  // S1 waited 500-100, S2 waited 560-520.
  EXPECT_EQ(span.retransmit_wait_us(), 400u + 40u);
  EXPECT_EQ(span.e2e_us(), 500u);
  EXPECT_EQ(span.propagation_us(), 500u - 440u);
}

TEST(Spans, SeqReuseAfterTerminalOpensNewGeneration) {
  SpanBuilder builder;
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS1, 1));
  builder.ingest(ev(EventKind::kDelivered, 200, 1, 1, kS2, 0));
  // Rekey restarted the sequence space: a fresh S1 reuses (assoc=1, seq=1).
  builder.ingest(ev(EventKind::kPacketSent, 900, 1, 1, kS1, 1));
  builder.ingest(ev(EventKind::kDelivered, 950, 1, 1, kS2, 0));

  ASSERT_EQ(builder.spans().size(), 2u);
  EXPECT_EQ(builder.spans()[0].generation, 0u);
  EXPECT_EQ(builder.spans()[1].generation, 1u);
  EXPECT_TRUE(builder.spans()[1].complete());
  EXPECT_EQ(builder.spans()[1].e2e_us(), 50u);
  EXPECT_EQ(builder.rounds_complete(), 2u);
}

TEST(Spans, FailedRoundRecordsReason) {
  metrics::Registry registry;
  SpanBuilder builder{&registry};
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 3, kS1, 2));
  builder.ingest(ev(EventKind::kRoundFailed, 900, 1, 3, 0, 2,
                    DropReason::kBudgetExhausted));
  const RoundSpan& span = builder.spans()[0];
  EXPECT_TRUE(span.failed);
  EXPECT_TRUE(span.terminal());
  EXPECT_FALSE(span.complete());
  EXPECT_EQ(span.fail_reason, DropReason::kBudgetExhausted);
  EXPECT_EQ(builder.rounds_failed(), 1u);
  EXPECT_EQ(registry.counter("alpha_span_rounds_failed"), 1u);
}

TEST(Spans, AckAndNackAccounting) {
  SpanBuilder builder;
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS1, 2));
  builder.ingest(ev(EventKind::kPacketAccepted, 300, 1, 1, kA2, /*ack=*/1));
  builder.ingest(ev(EventKind::kPacketAccepted, 320, 1, 1, kA2, /*nack=*/0));
  const RoundSpan& span = builder.spans()[0];
  EXPECT_EQ(span.acks, 1u);
  EXPECT_EQ(span.nacks, 1u);
  EXPECT_EQ(span.last_a2_us, 320u);
}

TEST(Spans, HopAttributionFromNetChains) {
  metrics::Registry registry;
  SpanBuilder builder{&registry};
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS1, 1));
  // S1 journeys 0 -> 1 -> 2; the relay forwards on arrival, so the second
  // net event's time minus the first's is link 0->1's latency.
  builder.ingest(ev(EventKind::kNetDelivered, 100, 1, 1, kS1,
                    pack_net_detail(0, 1, 500)));
  builder.ingest(ev(EventKind::kNetDelivered, 105, 1, 1, kS1,
                    pack_net_detail(1, 2, 500)));
  // Terminal accept at node 2 closes link 1->2.
  builder.ingest(ev(EventKind::kPacketAccepted, 112, 1, 1, kS1));
  const auto& h01 = registry.histogram("alpha_span_hop_us", "link=\"0->1\"");
  const auto& h12 = registry.histogram("alpha_span_hop_us", "link=\"1->2\"");
  EXPECT_EQ(h01.count(), 1u);
  EXPECT_EQ(h01.sum(), 5u);
  EXPECT_EQ(h12.count(), 1u);
  EXPECT_EQ(h12.sum(), 7u);
}

TEST(Spans, IngestNewSurvivesRingWrapAndCountsLoss) {
  metrics::Registry registry;
  SpanBuilder builder{&registry};
  Ring ring(4);
  // 10 recorded, capacity 4: the oldest 6 are gone before the first read.
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.record(ev(EventKind::kPacketSent, 100 + i, 1, i + 1, kS1, 1));
  }
  EXPECT_EQ(builder.ingest_new(ring), 4u);
  EXPECT_EQ(builder.lost_events(), 6u);
  EXPECT_EQ(builder.spans().size(), 4u);
  EXPECT_EQ(registry.counter("alpha_trace_events_dropped"), 6u);

  // Incremental: only the two new events are consumed.
  ring.record(ev(EventKind::kPacketSent, 200, 1, 11, kS1, 1));
  ring.record(ev(EventKind::kPacketSent, 201, 1, 12, kS1, 1));
  EXPECT_EQ(builder.ingest_new(ring), 2u);
  EXPECT_EQ(builder.lost_events(), 6u);

  // A cleared ring resets the cursor instead of reading garbage.
  ring.clear();
  ring.record(ev(EventKind::kPacketSent, 300, 1, 13, kS1, 1));
  EXPECT_EQ(builder.ingest_new(ring), 1u);
  EXPECT_EQ(builder.spans().back().seq, 13u);
}

TEST(Spans, IngestNewDetectsClearedRingRefilledPastCursor) {
  // The regression this pins: clear() followed by *more* records than the
  // old cursor position. total() is then ahead of the cursor again, which
  // the old `end < cursor_` heuristic read as "nothing happened" -- events
  // re-ingested from stale absolute indices, and the exported drop counter
  // inherited (or went backwards from) the previous generation's count.
  metrics::Registry registry;
  SpanBuilder builder{&registry};
  Ring ring(4);
  // First generation: wrap the ring so dropped() is nonzero.
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.record(ev(EventKind::kPacketSent, 100 + i, 1, i + 1, kS1, 1));
  }
  EXPECT_EQ(builder.ingest_new(ring), 4u);
  EXPECT_EQ(registry.counter("alpha_trace_events_dropped"), 6u);
  const std::size_t spans_before = builder.spans().size();

  // Second generation: refill PAST the old cursor (10): 12 fresh records.
  ring.clear();
  for (std::uint32_t i = 0; i < 12; ++i) {
    ring.record(ev(EventKind::kPacketSent, 500 + i, 1, 100 + i, kS1, 1));
  }
  // Only the 4 retained events of the new generation are ingestable; none
  // of them may be double-counted or skipped.
  EXPECT_EQ(builder.ingest_new(ring), 4u);
  EXPECT_EQ(builder.spans().size(), spans_before + 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(builder.spans()[spans_before + i].seq, 100u);
  }
  // Monotonic across generations: 6 banked from generation 0 plus 8
  // wrapped in generation 1 -- never the raw ring.dropped() of 8 alone.
  EXPECT_EQ(registry.counter("alpha_trace_events_dropped"), 6u + 8u);

  // A swapped source ring (same generation number, different object) is
  // detected by identity, not just generation.
  Ring other(4);
  other.record(ev(EventKind::kPacketSent, 900, 2, 1, kS1, 1));
  EXPECT_EQ(builder.ingest_new(other), 1u);
  EXPECT_EQ(builder.spans().back().assoc_id, 2u);
  // other.dropped() == 0: banked total now includes generation 1's 8.
  EXPECT_EQ(registry.counter("alpha_trace_events_dropped"), 14u);
}

TEST(Spans, S2WithoutS1GrowsBatchFromMessageIndex) {
  // Ring wrap ate the S1: the span must still become completable from the
  // S2/delivery evidence alone.
  SpanBuilder builder;
  builder.ingest(ev(EventKind::kPacketSent, 100, 1, 1, kS2, /*msg=*/2));
  builder.ingest(ev(EventKind::kDelivered, 200, 1, 1, kS2, 0));
  builder.ingest(ev(EventKind::kDelivered, 201, 1, 1, kS2, 1));
  builder.ingest(ev(EventKind::kDelivered, 202, 1, 1, kS2, 2));
  const RoundSpan& span = builder.spans()[0];
  EXPECT_EQ(span.batch, 3u);
  EXPECT_TRUE(span.complete());
}

}  // namespace
}  // namespace alpha::trace
