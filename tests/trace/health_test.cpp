// HealthMonitor state machine: wedged-round watchdog, budget exhaustion,
// rekey storms, trace-ring loss, recovery, and the all-failed terminal
// state -- plus the trace events emitted on transitions.
#include "trace/health.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

AssocHealthSample healthy_assoc(std::uint32_t id = 1) {
  AssocHealthSample s;
  s.assoc_id = id;
  s.established = true;
  return s;
}

TEST(Health, StartsOkAndStaysOkOnHealthyInput) {
  HealthMonitor monitor;
  monitor.observe({healthy_assoc()}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
  EXPECT_EQ(monitor.reasons(), 0u);
  EXPECT_EQ(monitor.http_status(), 200);
  EXPECT_NE(monitor.healthz_json().find("\"status\":\"ok\""),
            std::string::npos);
}

TEST(Health, WedgedRoundDegradesThenRecovers) {
  HealthMonitor monitor;
  AssocHealthSample wedged = healthy_assoc();
  wedged.round_active = true;
  wedged.round_seq = 3;
  wedged.round_retries = 4;  // default wedge threshold

  Ring ring(16);
  install(&ring);
  monitor.observe({wedged}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor.http_status(), 503);
  EXPECT_NE(monitor.reasons() & kHealthWedgedRound, 0u);
  EXPECT_NE(monitor.healthz_json().find("\"wedged_round\""),
            std::string::npos);
  EXPECT_NE(monitor.healthz_json().find("\"wedged\":1"), std::string::npos);

  // Progress resets retries (the engines do this on any A1/A2): recovered.
  AssocHealthSample progressing = wedged;
  progressing.round_retries = 0;
  monitor.observe({progressing}, 2'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
  install(nullptr);

  // One degraded and one recovered transition event, reasons in detail.
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0).kind, EventKind::kHealthDegraded);
  EXPECT_EQ(ring.at(0).time_us, 1'000'000u);
  EXPECT_EQ(ring.at(0).detail & kHealthWedgedRound, kHealthWedgedRound);
  EXPECT_EQ(ring.at(1).kind, EventKind::kHealthRecovered);
}

TEST(Health, RetriesBelowThresholdStayOk) {
  HealthMonitor monitor;
  AssocHealthSample busy = healthy_assoc();
  busy.round_active = true;
  busy.round_retries = 3;  // below the default threshold of 4
  monitor.observe({busy}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
}

TEST(Health, BudgetExhaustionDegradesOneFailsAll) {
  HealthMonitor monitor;
  AssocHealthSample dead = healthy_assoc(1);
  dead.established = false;
  dead.failed = true;
  // One of two dead: degraded.
  monitor.observe({dead, healthy_assoc(2)}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_NE(monitor.reasons() & kHealthBudgetExhausted, 0u);
  EXPECT_NE(monitor.healthz_json().find("\"budget_exhausted\""),
            std::string::npos);
  // Every association dead: failed, not merely degraded.
  AssocHealthSample dead2 = dead;
  dead2.assoc_id = 2;
  monitor.observe({dead, dead2}, 2'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kFailed);
  EXPECT_EQ(monitor.http_status(), 503);
  EXPECT_NE(monitor.healthz_json().find("\"status\":\"failed\""),
            std::string::npos);
}

TEST(Health, RekeyStormTripsOnSustainedRate) {
  HealthMonitor monitor;  // default: > 1 rekey/s over a 10 s window
  AssocHealthSample a = healthy_assoc();
  a.rekeys_started = 0;
  monitor.observe({a}, 0);  // anchors the window
  EXPECT_EQ(monitor.state(), HealthState::kOk);

  // Three rekeys in one second: 3/s > 1/s.
  a.rekeys_started = 3;
  monitor.observe({a}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_NE(monitor.reasons() & kHealthRekeyStorm, 0u);
  EXPECT_NE(monitor.healthz_json().find("\"rekey_storm\""), std::string::npos);
}

TEST(Health, SingleRekeyIsNotAStorm) {
  HealthMonitor monitor;
  AssocHealthSample a = healthy_assoc();
  monitor.observe({a}, 0);
  a.rekeys_started = 1;  // one legitimate rotation, however fast
  monitor.observe({a}, 100'000);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
}

TEST(Health, SlowRekeysNeverStorm) {
  HealthMonitor::Options options;
  options.window_us = 1'000'000;
  HealthMonitor monitor{options};
  AssocHealthSample a = healthy_assoc();
  // One rekey every 2 s: under the 1/s limit at every observation.
  for (std::uint64_t t = 0; t < 20; ++t) {
    a.rekeys_started = t / 2;
    monitor.observe({a}, t * 1'000'000);
    EXPECT_EQ(monitor.state(), HealthState::kOk) << t;
  }
}

TEST(Health, TraceRingOverflowDegrades) {
  HealthMonitor monitor;
  monitor.observe({healthy_assoc()}, 1'000'000, /*events_dropped=*/17);
  EXPECT_EQ(monitor.state(), HealthState::kDegraded);
  EXPECT_NE(monitor.reasons() & kHealthEventsLost, 0u);
  EXPECT_NE(monitor.healthz_json().find("\"events_lost\""), std::string::npos);
}

TEST(Health, EmptyAssociationListIsOkNotFailed) {
  HealthMonitor monitor;
  monitor.observe({}, 1'000'000);
  EXPECT_EQ(monitor.state(), HealthState::kOk);
}

}  // namespace
}  // namespace alpha::trace
