// Log2 histogram bucketing and the Prometheus text exporter.
#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace alpha::metrics {
namespace {

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index((1ull << 10) - 1), 10u);
  EXPECT_EQ(Histogram::bucket_index(1ull << 10), 11u);
  EXPECT_EQ(Histogram::bucket_index(~0ull), 64u);
}

TEST(Histogram, UpperBoundsMatchBucketIndex) {
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t ub = Histogram::upper_bound(i);
    // The upper bound itself lands in bucket i...
    EXPECT_EQ(Histogram::bucket_index(ub), i) << i;
    // ...and the next value lands strictly above it.
    if (ub != ~0ull) {
      EXPECT_EQ(Histogram::bucket_index(ub + 1), i + 1) << i;
    }
  }
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(10);
  h.record(3);
  h.record(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 513u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(10)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(3)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(500)), 1u);
}

TEST(Histogram, ZeroGoesToBucketZero) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, QuantileEmptyIsNaNSentinel) {
  // An empty histogram has no quantiles. The old 0.0 answer was a fabricated
  // data point -- an adaptive policy comparing "p99 latency" against a
  // threshold would read it as zero latency and promote on no evidence.
  // NaN fails every comparison instead, and is what a policy must guard.
  Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
  EXPECT_FALSE(h.quantile(0.5) < 1e9);   // NaN: every threshold test fails
  EXPECT_FALSE(h.quantile(0.5) >= 0.0);
}

TEST(Histogram, QuantileSingleton) {
  Histogram h;
  h.record(42);
  // One sample: [min, max] is a point, so every quantile is exact.
  EXPECT_EQ(h.quantile(0.0), 42.0);
  EXPECT_EQ(h.quantile(0.5), 42.0);
  EXPECT_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, QuantileSingleBucketStaysWithinObservedValues) {
  // All samples in one log2 bucket whose nominal range [4096, 8191] is much
  // wider than the observed [5000, 5003]: the estimate must interpolate
  // inside the observed range, not across the power-of-two span.
  Histogram h;
  for (std::uint64_t v : {5000ull, 5001ull, 5002ull, 5003ull}) h.record(v);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, 5000.0) << q;
    EXPECT_LE(est, 5003.0) << q;
  }
}

TEST(Histogram, QuantileAllSamplesInOverflowBucket) {
  // The overflow bucket nominally spans [2^63, 2^64): half the uint64
  // domain. A bracketing guess across that span would be off by up to
  // 9e18; the estimate must stay within the values actually recorded.
  Histogram h;
  const std::uint64_t lo = (1ull << 63) + 5;
  const std::uint64_t hi = (1ull << 63) + 905;
  h.record(lo);
  h.record(lo + 400);
  h.record(hi);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, static_cast<double>(lo)) << q;
    EXPECT_LE(est, static_cast<double>(hi)) << q;
    EXPECT_FALSE(std::isnan(est)) << q;
  }
}

TEST(Histogram, QuantileExactnessBound) {
  // The estimate must land in the same log2 bucket as the true quantile:
  // lower_bound(bucket) <= estimate <= upper_bound(bucket), which caps the
  // relative error at a factor of two.
  Histogram h;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 7;
  for (int i = 0; i < 1000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;  // LCG, deterministic
    const std::uint64_t v = (x >> 33) % 100000;
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const std::uint64_t truth =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const std::size_t bucket = Histogram::bucket_index(truth);
    const double lower =
        bucket == 0 ? 0.0
                    : static_cast<double>(Histogram::upper_bound(bucket - 1));
    const double upper = static_cast<double>(Histogram::upper_bound(bucket));
    const double est = h.quantile(q);
    EXPECT_GE(est, lower) << "q=" << q << " truth=" << truth;
    EXPECT_LE(est, upper + 1) << "q=" << q << " truth=" << truth;
  }
}

TEST(Histogram, QuantileClampsToObservedRange) {
  Histogram h;
  h.record(100);
  h.record(101);
  h.record(120);
  // All samples share bucket 7 ([64, 127]); interpolation must not step
  // outside the values actually seen.
  EXPECT_GE(h.quantile(0.0), 100.0);
  EXPECT_LE(h.quantile(1.0), 120.0);
  EXPECT_GE(h.quantile(0.5), 100.0);
  EXPECT_LE(h.quantile(0.5), 120.0);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 10; ++i) h.record(v);
  }
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << q;
    prev = cur;
  }
}

std::string render(const Registry& registry) {
  std::FILE* f = std::tmpfile();
  registry.write_prometheus(f);
  std::rewind(f);
  std::string out;
  int c;
  while ((c = std::fgetc(f)) != EOF) out.push_back(static_cast<char>(c));
  std::fclose(f);
  return out;
}

TEST(Registry, CountersExportWithLabels) {
  Registry registry;
  registry.counter("alpha_messages_delivered", "assoc=\"1\"") = 12;
  registry.counter("alpha_messages_delivered", "assoc=\"2\"") = 7;
  registry.counter("alpha_plain") = 3;
  const std::string out = render(registry);
  EXPECT_NE(out.find("alpha_messages_delivered{assoc=\"1\"} 12"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_messages_delivered{assoc=\"2\"} 7"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_plain 3"), std::string::npos);
}

TEST(Registry, HistogramExportsCumulativeBuckets) {
  Registry registry;
  Histogram& h = registry.histogram("alpha_rtt_us", "assoc=\"1\"");
  h.record(1);    // bucket le=1
  h.record(3);    // bucket le=3
  h.record(3);
  h.record(100);  // bucket le=127
  const std::string out = render(registry);
  // Cumulative counts: le="1" -> 1, le="3" -> 3, le="127" -> 4, +Inf -> 4.
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"127\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_sum{assoc=\"1\"} 107"), std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_count{assoc=\"1\"} 4"), std::string::npos);
}

TEST(Registry, RenderPrometheusMatchesFileExport) {
  Registry registry;
  registry.counter("alpha_x") = 5;
  registry.histogram("alpha_h").record(3);
  EXPECT_EQ(registry.render_prometheus(), render(registry));
}

}  // namespace
}  // namespace alpha::metrics
