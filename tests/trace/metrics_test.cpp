// Log2 histogram bucketing and the Prometheus text exporter.
#include "trace/metrics.hpp"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace alpha::metrics {
namespace {

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index((1ull << 10) - 1), 10u);
  EXPECT_EQ(Histogram::bucket_index(1ull << 10), 11u);
  EXPECT_EQ(Histogram::bucket_index(~0ull), 64u);
}

TEST(Histogram, UpperBoundsMatchBucketIndex) {
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t ub = Histogram::upper_bound(i);
    // The upper bound itself lands in bucket i...
    EXPECT_EQ(Histogram::bucket_index(ub), i) << i;
    // ...and the next value lands strictly above it.
    if (ub != ~0ull) {
      EXPECT_EQ(Histogram::bucket_index(ub + 1), i + 1) << i;
    }
  }
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(10);
  h.record(3);
  h.record(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 513u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(10)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(3)), 1u);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(500)), 1u);
}

TEST(Histogram, ZeroGoesToBucketZero) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

std::string render(const Registry& registry) {
  std::FILE* f = std::tmpfile();
  registry.write_prometheus(f);
  std::rewind(f);
  std::string out;
  int c;
  while ((c = std::fgetc(f)) != EOF) out.push_back(static_cast<char>(c));
  std::fclose(f);
  return out;
}

TEST(Registry, CountersExportWithLabels) {
  Registry registry;
  registry.counter("alpha_messages_delivered", "assoc=\"1\"") = 12;
  registry.counter("alpha_messages_delivered", "assoc=\"2\"") = 7;
  registry.counter("alpha_plain") = 3;
  const std::string out = render(registry);
  EXPECT_NE(out.find("alpha_messages_delivered{assoc=\"1\"} 12"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_messages_delivered{assoc=\"2\"} 7"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_plain 3"), std::string::npos);
}

TEST(Registry, HistogramExportsCumulativeBuckets) {
  Registry registry;
  Histogram& h = registry.histogram("alpha_rtt_us", "assoc=\"1\"");
  h.record(1);    // bucket le=1
  h.record(3);    // bucket le=3
  h.record(3);
  h.record(100);  // bucket le=127
  const std::string out = render(registry);
  // Cumulative counts: le="1" -> 1, le="3" -> 3, le="127" -> 4, +Inf -> 4.
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"127\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_bucket{assoc=\"1\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_sum{assoc=\"1\"} 107"), std::string::npos);
  EXPECT_NE(out.find("alpha_rtt_us_count{assoc=\"1\"} 4"), std::string::npos);
}

}  // namespace
}  // namespace alpha::metrics
