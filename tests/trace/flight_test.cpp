// FlightRecorder: segment round-trip with rotation, ring clear/swap
// handling, reader validation of corrupted files, and the acceptance-
// criterion crash test -- a child process raises SIGSEGV mid-chaos-run and
// the parent reconstructs spans and the drop taxonomy from what the
// last-gasp flush persisted.
#include "trace/flight.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "core/path.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {
namespace {

using core::Config;
using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;

std::string fresh_dir(const char* tag) {
  std::string dir = ::testing::TempDir() + "alpha_flight_" + tag + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

Event synthetic_event(std::uint64_t i) {
  Event e;
  e.time_us = 1000 + i;
  e.detail = i * 3;
  e.assoc_id = 7;
  e.seq = static_cast<std::uint32_t>(i);
  e.kind = EventKind::kPacketSent;
  e.packet_type = 1;
  e.origin = 2;
  return e;
}

TEST(Flight, RoundtripAcrossRotation) {
  Ring ring(1 << 10);
  // Segment sized to ~100 events: 1000 events must rotate ~10 times.
  FlightOptions opts;
  opts.dir = fresh_dir("rot");
  opts.node_id = 3;
  opts.segment_bytes = sizeof(FlightHeader) + 100 * sizeof(Event);
  opts.config_digest = fnv1a64(std::string("test-config"));
  opts.clock_origin_us = 1000;
  opts.wall_epoch_us = 1'700'000'000'000'000ull;
  metrics::Registry registry;
  registry.counter("alpha_test_counter") = 41;
  opts.metrics_snapshot = [&] { return registry.render_prometheus(); };

  FlightRecorder recorder(opts, &ring);
  ASSERT_TRUE(recorder.ok()) << recorder.error();

  constexpr std::uint64_t kEvents = 1000;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ring.record(synthetic_event(i));
    if (i % 97 == 0) recorder.drain();
  }
  recorder.finalize();
  EXPECT_EQ(recorder.events_written(), kEvents);
  EXPECT_GE(recorder.segments_opened(), 10u);

  FlightRecording rec;
  std::string err;
  ASSERT_TRUE(read_flight_dir(opts.dir, rec, &err)) << err;
  EXPECT_EQ(rec.node_id(), 3u);
  EXPECT_EQ(rec.total_events(), kEvents);

  // Segment continuity: first_event_index chains exactly.
  std::uint64_t expect_first = 0;
  std::uint64_t i = 0;
  bool saw_metrics = false;
  for (const FlightSegment& seg : rec.segments) {
    EXPECT_EQ(seg.header.node_id, 3u);
    EXPECT_EQ(seg.header.config_digest, opts.config_digest);
    EXPECT_EQ(seg.header.wall_epoch_us, opts.wall_epoch_us);
    EXPECT_EQ(seg.header.first_event_index, expect_first);
    EXPECT_EQ(seg.invalid_events, 0u);
    expect_first += seg.events.size();
    for (const Event& e : seg.events) {
      const Event want = synthetic_event(i++);
      EXPECT_EQ(std::memcmp(&e, &want, sizeof(Event)), 0);
    }
    if (seg.metrics_valid) {
      saw_metrics = true;
      EXPECT_NE(seg.metrics_text.find("alpha_test_counter 41"),
                std::string::npos);
    }
    EXPECT_NE(std::string(seg.header.build_info).find('|'),
              std::string::npos);
  }
  EXPECT_EQ(i, kEvents);
  // The final (finalized) segment has tail slack for the snapshot.
  EXPECT_TRUE(saw_metrics);
  EXPECT_EQ(rec.segments.back().header.finalized, 1u);
  EXPECT_EQ(rec.segments.back().header.crash_signal, 0u);
}

TEST(Flight, SurvivesRingClearBetweenDrains) {
  Ring ring(1 << 8);
  FlightOptions opts;
  opts.dir = fresh_dir("gen");
  FlightRecorder recorder(opts, &ring);
  ASSERT_TRUE(recorder.ok()) << recorder.error();

  for (std::uint64_t i = 0; i < 10; ++i) ring.record(synthetic_event(i));
  EXPECT_EQ(recorder.drain(), 10u);
  // Clear and refill *past* the recorder's cursor: without the generation
  // check this would be misread as "no new events" (or worse, re-reads).
  ring.clear();
  for (std::uint64_t i = 0; i < 25; ++i) ring.record(synthetic_event(100 + i));
  EXPECT_EQ(recorder.drain(), 25u);
  recorder.finalize();

  FlightRecording rec;
  ASSERT_TRUE(read_flight_dir(opts.dir, rec, nullptr));
  EXPECT_EQ(rec.total_events(), 35u);
}

TEST(Flight, CountsRingOverwriteLosses) {
  Ring ring(64);  // tiny: overwrites guaranteed
  FlightOptions opts;
  opts.dir = fresh_dir("lost");
  FlightRecorder recorder(opts, &ring);
  ASSERT_TRUE(recorder.ok()) << recorder.error();

  for (std::uint64_t i = 0; i < 1000; ++i) ring.record(synthetic_event(i));
  recorder.drain();  // only the retained 64 are still available
  recorder.finalize();

  FlightRecording rec;
  ASSERT_TRUE(read_flight_dir(opts.dir, rec, nullptr));
  EXPECT_EQ(rec.total_events(), 64u);
  EXPECT_EQ(rec.segments.back().header.events_lost, 1000u - 64u);
}

TEST(Flight, ReaderRejectsCorruption) {
  Ring ring(64);
  FlightOptions opts;
  opts.dir = fresh_dir("corrupt");
  FlightRecorder recorder(opts, &ring);
  ASSERT_TRUE(recorder.ok()) << recorder.error();
  ring.record(synthetic_event(1));
  recorder.drain();
  recorder.finalize();

  FlightRecording rec;
  ASSERT_TRUE(read_flight_dir(opts.dir, rec, nullptr));
  const std::string path = rec.segments.front().path;

  // Flip a byte inside the header identity region (node_id).
  {
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint32_t bogus = 0xDEADBEEF;
    ASSERT_EQ(::pwrite(fd, &bogus, sizeof(bogus), 8), 4);
    ::close(fd);
  }
  FlightSegment seg;
  std::string err;
  EXPECT_FALSE(read_flight_segment(path, seg, &err));
  EXPECT_NE(err.find("checksum"), std::string::npos);

  // Break the magic entirely.
  {
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    std::uint32_t bogus = 0;
    ASSERT_EQ(::pwrite(fd, &bogus, sizeof(bogus), 0), 4);
    ::close(fd);
  }
  EXPECT_FALSE(read_flight_segment(path, seg, &err));
  EXPECT_NE(err.find("magic"), std::string::npos);
}

// What the child reports just before dying; the recording must agree.
struct CrashReport {
  std::uint64_t ring_events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t net_dropped = 0;
  std::uint64_t packet_dropped = 0;
};

/// Runs a seeded chaos exchange in the child with a recorder attached but
/// *never drained*: everything on disk comes from the last-gasp flush.
void run_chaos_child(const std::string& dir, int report_fd, int death) {
  Ring ring(std::size_t{1} << 16);
  install(&ring);
  FlightOptions opts;
  opts.dir = dir;
  opts.node_id = 1;
  opts.config_digest = fnv1a64(std::string("crash-test"));
  FlightRecorder recorder(opts, &ring);
  if (!recorder.ok()) _exit(41);
  if (!install_crash_handlers()) _exit(42);

  net::Simulator sim;
  net::Network network{sim, /*seed=*/7};
  network.set_chaos_seed(0xc0de);
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.loss_rate = 0.05;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, link);
  net::FaultConfig faults;
  faults.duplicate_rate = 0.05;
  faults.corrupt_rate = 0.03;
  network.set_link_faults(0, 1, faults);

  Config config;
  config.reliable = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  core::ProtectedPath path{network, {0, 1, 2}, config, 1, /*seed=*/5};
  path.start();
  sim.run_until(sim.now() + 10 * kSecond);
  if (!path.initiator().established()) _exit(43);
  for (int i = 0; i < 8; ++i) {
    path.node(0).submit(/*assoc_id=*/1, Bytes(48, static_cast<std::uint8_t>(i)));
    sim.run_until(sim.now() + kSecond);
  }
  sim.run_until(sim.now() + 30 * kSecond);

  CrashReport report;
  report.ring_events = ring.total();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    switch (ring.at(i).kind) {
      case EventKind::kDelivered:
        ++report.delivered;
        break;
      case EventKind::kNetDropped:
        ++report.net_dropped;
        break;
      case EventKind::kPacketDropped:
        ++report.packet_dropped;
        break;
      default:
        break;
    }
  }
  if (::write(report_fd, &report, sizeof(report)) != sizeof(report)) _exit(44);
  ::close(report_fd);

  if (death == 0) {
    ::raise(SIGSEGV);  // handler flushes, then re-raises the default
  } else {
    std::terminate();  // terminate hook flushes, then aborts
  }
  _exit(45);  // unreachable
}

void crash_and_verify(int death, int expected_signal) {
  const std::string dir =
      fresh_dir(death == 0 ? "sigsegv" : "terminate");
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    run_chaos_child(dir, pipe_fds[1], death);
  }
  ::close(pipe_fds[1]);
  CrashReport report;
  ASSERT_EQ(::read(pipe_fds[0], &report, sizeof(report)),
            static_cast<ssize_t>(sizeof(report)));
  ::close(pipe_fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally, status " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), expected_signal);

  // The recording exists, is attributed to the fatal signal, and holds
  // every event the child saw (ring did not wrap: 1<<16 slots).
  FlightRecording rec;
  std::string err;
  ASSERT_TRUE(read_flight_dir(dir, rec, &err)) << err;
  ASSERT_EQ(rec.segments.size(), 1u);
  const FlightSegment& seg = rec.segments.front();
  EXPECT_EQ(seg.header.crash_signal,
            static_cast<std::uint32_t>(expected_signal));
  EXPECT_EQ(seg.header.finalized, 0u);
  EXPECT_EQ(seg.invalid_events, 0u);
  ASSERT_EQ(rec.total_events(), report.ring_events);

  // Offline reconstruction: spans and the drop taxonomy of the flushed
  // events match what the live process counted.
  SpanBuilder spans;
  std::uint64_t delivered = 0, net_dropped = 0, packet_dropped = 0;
  for (const Event& e : seg.events) {
    spans.ingest(e);
    if (e.kind == EventKind::kDelivered) ++delivered;
    if (e.kind == EventKind::kNetDropped) ++net_dropped;
    if (e.kind == EventKind::kPacketDropped) ++packet_dropped;
  }
  EXPECT_EQ(delivered, report.delivered);
  EXPECT_EQ(net_dropped, report.net_dropped);
  EXPECT_EQ(packet_dropped, report.packet_dropped);
  EXPECT_EQ(spans.deliveries(), report.delivered);
  EXPECT_GT(spans.rounds_complete(), 0u);
}

TEST(FlightCrash, SigsegvLastGaspFlushYieldsReplayableRecording) {
  crash_and_verify(/*death=*/0, SIGSEGV);
}

TEST(FlightCrash, TerminateHookFlushesToo) {
  crash_and_verify(/*death=*/1, SIGABRT);
}

}  // namespace
}  // namespace alpha::trace
