// Ring semantics, string tables and the JSONL writer.
#include "trace/trace.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace alpha::trace {
namespace {

Event make_event(std::uint32_t seq) {
  Event e;
  e.time_us = 1000 + seq;
  e.detail = seq * 7;
  e.assoc_id = 42;
  e.seq = seq;
  e.kind = EventKind::kPacketSent;
  e.packet_type = 1;
  e.origin = 3;
  return e;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(1).capacity(), 2u);  // floor of 2 slots
  EXPECT_EQ(Ring(2).capacity(), 2u);
  EXPECT_EQ(Ring(3).capacity(), 4u);
  EXPECT_EQ(Ring(5).capacity(), 8u);
  EXPECT_EQ(Ring(1000).capacity(), 1024u);
}

TEST(TraceRing, RetainsInOrderBeforeWrap) {
  Ring ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) ring.record(make_event(i));
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(ring.at(i).seq, i);
}

TEST(TraceRing, OverwritesOldestAfterWrap) {
  Ring ring(4);
  for (std::uint32_t i = 0; i < 11; ++i) ring.record(make_event(i));
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 11u);
  // Oldest retained is total - capacity = 7; order is preserved.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(ring.at(i).seq, 7 + i);
}

TEST(TraceRing, ClearResets) {
  Ring ring(4);
  for (std::uint32_t i = 0; i < 9; ++i) ring.record(make_event(i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
}

TEST(TraceRing, DroppedCountsOverflowMonotonically) {
  Ring ring(4);
  EXPECT_EQ(ring.dropped(), 0u);
  for (std::uint32_t i = 0; i < 4; ++i) ring.record(make_event(i));
  EXPECT_EQ(ring.dropped(), 0u);  // exactly full: nothing lost yet
  ring.record(make_event(4));
  EXPECT_EQ(ring.dropped(), 1u);
  std::uint64_t prev = ring.dropped();
  for (std::uint32_t i = 5; i < 100; ++i) {
    ring.record(make_event(i));
    EXPECT_GE(ring.dropped(), prev);  // monotonic
    prev = ring.dropped();
  }
  EXPECT_EQ(ring.dropped(), 100u - ring.capacity());
  EXPECT_EQ(ring.dropped(), ring.total() - ring.size());
}

TEST(TraceRing, AbsoluteIndexingSurvivesWrap) {
  Ring ring(4);
  for (std::uint32_t i = 0; i < 11; ++i) ring.record(make_event(i));
  EXPECT_EQ(ring.first_index(), 7u);
  // A cursor holding absolute indices reads the same events at() exposes.
  for (std::uint64_t i = ring.first_index(); i < ring.total(); ++i) {
    EXPECT_EQ(ring.at_absolute(i).seq, i);
  }
  EXPECT_EQ(&ring.at_absolute(ring.first_index()), &ring.at(0));
}

TEST(TraceRing, PackRoundDetailSaturates) {
  const std::uint64_t d = pack_round_detail(1234, 567890);
  EXPECT_EQ(round_detail_queue_us(d), 1234u);
  EXPECT_EQ(round_detail_crypto_ns(d), 567890u);
  const std::uint64_t big = pack_round_detail(~0ull, ~0ull);
  EXPECT_EQ(round_detail_queue_us(big), 0xFFFFFFFFull);
  EXPECT_EQ(round_detail_crypto_ns(big), 0xFFFFFFFFull);
}

TEST(TraceEmit, NoopWithoutSink) {
  install(nullptr);
  EXPECT_FALSE(enabled());
  emit(EventKind::kPacketSent, 1, 2, 3);  // must not crash
}

TEST(TraceEmit, StampsFromScopedContext) {
  Ring ring(16);
  install(&ring);
  {
    const ScopedContext outer(/*origin=*/4, /*time_us=*/500);
    emit(EventKind::kPacketSent, 9, 1, 1);
    {
      const ScopedContext inner(/*origin=*/7, /*time_us=*/900);
      emit(EventKind::kPacketDropped, 9, 2, 2, DropReason::kBadMac, 5);
    }
    emit(EventKind::kDelivered, 9, 3, 3);  // outer context restored
  }
  install(nullptr);

  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).origin, 4);
  EXPECT_EQ(ring.at(0).time_us, 500u);
  EXPECT_EQ(ring.at(1).origin, 7);
  EXPECT_EQ(ring.at(1).time_us, 900u);
  EXPECT_EQ(ring.at(1).reason, DropReason::kBadMac);
  EXPECT_EQ(ring.at(1).detail, 5u);
  EXPECT_EQ(ring.at(2).origin, 4);
  EXPECT_EQ(ring.at(2).time_us, 500u);
}

TEST(TraceDetail, NetDetailPackUnpack) {
  const std::uint64_t d = pack_net_detail(0xABCDEF, 0x1234, 1500);
  EXPECT_EQ(net_detail_from(d), 0xABCDEFu);
  EXPECT_EQ(net_detail_to(d), 0x1234u);
  EXPECT_EQ(net_detail_size(d), 1500u);
  // Size clamps at 24 bits instead of bleeding into the address fields.
  const std::uint64_t big = pack_net_detail(1, 2, std::size_t{1} << 32);
  EXPECT_EQ(net_detail_from(big), 1u);
  EXPECT_EQ(net_detail_to(big), 2u);
  EXPECT_EQ(net_detail_size(big), 0xFFFFFFu);
}

TEST(TraceStrings, KindRoundTrips) {
  for (int k = 0; k <= 20; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const std::string s = to_string(kind);
    EXPECT_EQ(kind_from_string(s), kind) << s;
  }
  EXPECT_EQ(kind_from_string("no_such_kind"), EventKind::kNone);
}

TEST(TraceStrings, ReasonRoundTrips) {
  for (int r = 0; r <= 18; ++r) {
    const auto reason = static_cast<DropReason>(r);
    const std::string s = to_string(reason);
    EXPECT_EQ(reason_from_string(s), reason) << s;
  }
  EXPECT_EQ(reason_from_string("no_such_reason"), DropReason::kNone);
}

TEST(TraceStrings, PacketTypeNames) {
  EXPECT_STREQ(packet_type_name(0), "-");
  EXPECT_STREQ(packet_type_name(1), "s1");
  EXPECT_STREQ(packet_type_name(2), "a1");
  EXPECT_STREQ(packet_type_name(3), "s2");
  EXPECT_STREQ(packet_type_name(4), "a2");
  EXPECT_STREQ(packet_type_name(5), "hs1");
  EXPECT_STREQ(packet_type_name(6), "hs2");
  EXPECT_STREQ(packet_type_name(200), "-");
}

std::vector<std::string> jsonl_lines(const Ring& ring) {
  std::FILE* f = std::tmpfile();
  write_jsonl(ring, f);
  std::rewind(f);
  std::vector<std::string> lines;
  std::string cur;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return lines;
}

TEST(TraceJsonl, OneLinePerEventWithTaxonomyFields) {
  Ring ring(8);
  Event drop = make_event(2);
  drop.kind = EventKind::kPacketDropped;
  drop.reason = DropReason::kStaleChainIndex;
  ring.record(make_event(1));
  ring.record(drop);

  const auto lines = jsonl_lines(ring);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"packet_sent\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"assoc\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"type\":\"s1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"packet_dropped\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"reason\":\"stale_chain_index\""),
            std::string::npos);
}

TEST(TraceJsonl, NetEventsDecodeFromToSize) {
  Ring ring(8);
  Event e;
  e.time_us = 77;
  e.kind = EventKind::kNetDropped;
  e.reason = DropReason::kLost;
  e.detail = pack_net_detail(11, 22, 333);
  ring.record(e);

  const auto lines = jsonl_lines(ring);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"net_dropped\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"lost\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"from\":11"), std::string::npos);
  EXPECT_NE(lines[0].find("\"to\":22"), std::string::npos);
  EXPECT_NE(lines[0].find("\"size\":333"), std::string::npos);
}

}  // namespace
}  // namespace alpha::trace
