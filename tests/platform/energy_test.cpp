#include "platform/energy.hpp"

#include <gtest/gtest.h>

namespace alpha::platform {
namespace {

TEST(EnergyModelTest, CpuEnergyScalesWithTime) {
  EnergyModel e;
  EXPECT_DOUBLE_EQ(e.cpu_uj(1000.0), 81.0);  // 1 ms at 81 mW = 81 uJ
  EXPECT_DOUBLE_EQ(e.cpu_uj(0.0), 0.0);
}

TEST(EnergyModelTest, RadioEnergyScalesWithBytes) {
  EnergyModel e;
  EXPECT_NEAR(e.relay_radio_uj(100), 576.0, 1e-9);  // (2.88+2.88)*100
}

TEST(EnergyEstimateTest, AlphaCRelayCosts) {
  const auto dev = devices::cc2430();
  EnergyModel e;
  const auto est = estimate_alpha_c_energy(dev, e, 100, 5);
  // MAC over 84 B = 2.01 ms -> ~163 uJ CPU; radio 576 uJ for 100 B.
  EXPECT_NEAR(est.cpu_uj, e.cpu_uj(2010.0 + 780.0 / 5.0), 1.0);
  EXPECT_NEAR(est.radio_uj, 576.0, 1e-6);
  EXPECT_GT(est.total_uj(), est.radio_uj);
  EXPECT_GT(est.per_payload_byte(65), 0.0);
}

TEST(EnergyEstimateTest, AlphaVerificationCostsLessThanRadioItself) {
  // The headline sanity check: hop-by-hop authentication adds less energy
  // than the radio spends forwarding the very same packet.
  const auto dev = devices::cc2430();
  EnergyModel e;
  const auto alpha = estimate_alpha_c_energy(dev, e, 100, 5);
  EXPECT_LT(alpha.cpu_uj, alpha.radio_uj);
}

TEST(EnergyEstimateTest, EccDwarfsEverything) {
  const auto dev = devices::cc2430();
  EnergyModel e;
  const auto alpha = estimate_alpha_c_energy(dev, e, 100, 5);
  const auto ecc = estimate_ecc_energy(e, 100);
  const auto blind = estimate_blind_energy(e, 100);
  EXPECT_GT(ecc.total_uj(), 100.0 * alpha.total_uj());
  EXPECT_LT(blind.total_uj(), alpha.total_uj());
}

TEST(FloodEnergyTest, AlphaSavesDownstreamEnergy) {
  const auto dev = devices::cc2430();
  EnergyModel e;
  const auto flood = estimate_flood_energy(dev, e, /*hops=*/6,
                                           /*frames=*/1000,
                                           /*frame_size=*/100);
  // Without ALPHA every hop pays RX+TX; with it only the entry relay pays
  // RX + one check. The saving grows with path length.
  EXPECT_LT(flood.with_alpha_j, flood.without_alpha_j);
  const auto longer = estimate_flood_energy(dev, e, 12, 1000, 100);
  EXPECT_NEAR(longer.without_alpha_j, 2 * flood.without_alpha_j, 1e-9);
  EXPECT_NEAR(longer.with_alpha_j, flood.with_alpha_j, 1e-9);
}

}  // namespace
}  // namespace alpha::platform
