// Checks the analytical estimators against the paper's published numbers.
#include "platform/estimators.hpp"

#include <gtest/gtest.h>

namespace alpha::platform {
namespace {

TEST(HashCostModelTest, InterpolatesThroughPoints) {
  const auto m = HashCostModel::from_points(20, 59.0, 1024, 360.0);
  EXPECT_NEAR(m.cost_us(20), 59.0, 1e-9);
  EXPECT_NEAR(m.cost_us(1024), 360.0, 1e-9);
  EXPECT_GT(m.cost_us(2048), 360.0);
}

TEST(DeviceSpecTest, PaperCalibrationPoints) {
  EXPECT_NEAR(devices::ar2315().hash.cost_us(20), 59.0, 1e-9);
  EXPECT_NEAR(devices::ar2315().hash.cost_us(1024), 360.0, 1e-9);
  EXPECT_NEAR(devices::bcm5365().hash.cost_us(20), 46.0, 1e-9);
  EXPECT_NEAR(devices::geode_lx().hash.cost_us(1024), 62.0, 1e-9);
  EXPECT_NEAR(devices::cc2430().hash.cost_us(16), 780.0, 1e-9);
  EXPECT_NEAR(devices::cc2430().hash.cost_us(84), 2010.0, 1e-9);
  EXPECT_EQ(devices::cc2430().hash_size, 16u);
  EXPECT_NEAR(devices::nokia770().rsa_sign_ms, 181.32, 1e-9);
  EXPECT_NEAR(devices::xeon().dsa_verify_ms, 1.61, 1e-9);
}

TEST(Eq1Test, PayloadPerPacketMatchesTable6) {
  // Table 6 payload column: 1024 B packets, 20 B hashes.
  const struct {
    std::size_t leaves;
    std::size_t payload;
  } rows[] = {{16, 924}, {32, 904}, {64, 884},  {128, 864},
              {256, 844}, {512, 824}, {1024, 804}};
  for (const auto& row : rows) {
    EXPECT_EQ(alpha_m_payload_per_packet(row.leaves, 1024, 20), row.payload)
        << row.leaves;
  }
}

TEST(Eq1Test, SignedBytesGrowThenBecomeInfeasible) {
  // Figure 5 shape: grows with n until {Bc} eats the packet.
  EXPECT_EQ(eq1_signed_bytes(1, 128, 20), 108u);
  EXPECT_EQ(eq1_signed_bytes(2, 128, 20), 2 * 88u);
  EXPECT_GT(*eq1_signed_bytes(16, 1280, 20), *eq1_signed_bytes(1, 1280, 20));
  // 128 B packets: depth 5 needs 120 B of signature -> payload 8; depth 6
  // needs 140 B -> infeasible.
  EXPECT_TRUE(eq1_signed_bytes(32, 128, 20).has_value());
  EXPECT_FALSE(eq1_signed_bytes(64, 128, 20).has_value());
}

TEST(Eq1Test, SeeSawAtDepthBoundaries) {
  // Per-packet payload drops when n crosses a power of two (Fig. 5 see-saw):
  const auto at_16 = alpha_m_payload_per_packet(16, 1280, 20);
  const auto at_17 = alpha_m_payload_per_packet(17, 1280, 20);
  EXPECT_EQ(*at_16 - *at_17, 20u);  // one more tree level
}

TEST(Fig6Test, OverheadRatioRisesWithDepthAndSmallPackets) {
  // Fig. 6: larger packets -> lower overhead; more leaves -> higher.
  EXPECT_LT(*overhead_ratio(16, 1280, 20), *overhead_ratio(16, 256, 20));
  EXPECT_LT(*overhead_ratio(16, 1280, 20), *overhead_ratio(1024, 1280, 20));
  // Ratio approaches 5 for 128 B packets at the feasibility edge (Fig. 6 d).
  EXPECT_NEAR(*overhead_ratio(32, 128, 20), 16.0, 0.01);  // 128/8
  EXPECT_NEAR(*overhead_ratio(16, 128, 20), 128.0 / 28.0, 0.01);
}

TEST(Table1Test, BaseModeCounts) {
  const auto signer = table1_row(AlphaMode::kBase, Role::kSigner, 1);
  EXPECT_EQ(signer.signature, 1);
  EXPECT_EQ(signer.chain_create, 2);
  EXPECT_EQ(signer.chain_verify, 1);
  EXPECT_EQ(signer.ack_nack, 1);
  const auto verifier = table1_row(AlphaMode::kBase, Role::kVerifier, 1);
  EXPECT_EQ(verifier.ack_nack, 2);
  const auto relay = table1_row(AlphaMode::kBase, Role::kRelay, 1);
  EXPECT_EQ(relay.chain_create, 0);
}

TEST(Table1Test, CumulativeAmortizesChainWork) {
  const auto row = table1_row(AlphaMode::kCumulative, Role::kVerifier, 20);
  EXPECT_EQ(row.signature, 1);
  EXPECT_NEAR(row.chain_create, 0.1, 1e-12);
  EXPECT_NEAR(row.chain_verify, 0.05, 1e-12);
}

TEST(Table1Test, MerkleAddsLogTerms) {
  const auto verifier = table1_row(AlphaMode::kMerkle, Role::kVerifier, 64);
  EXPECT_NEAR(verifier.signature, 1 + 6, 1e-12);  // 1* + log2(64)
  const auto signer = table1_row(AlphaMode::kMerkle, Role::kSigner, 64);
  EXPECT_NEAR(signer.signature, 1 + 2 - 1.0 / 64, 1e-12);
  EXPECT_NEAR(signer.ack_nack, 2 + 6, 1e-12);
  const auto relay = table1_row(AlphaMode::kMerkle, Role::kRelay, 64);
  EXPECT_NEAR(relay.signature, 1 + 6, 1e-12);
}

TEST(Table2Test, PaperFormulas) {
  const std::size_t n = 8, m = 1000, h = 20;
  const auto base = table2_memory(AlphaMode::kBase, n, m, h);
  EXPECT_EQ(base.signer, n * (m + h));
  EXPECT_EQ(base.verifier, n * h);
  EXPECT_EQ(base.relay, n * h);
  const auto merkle = table2_memory(AlphaMode::kMerkle, n, m, h);
  EXPECT_EQ(merkle.signer, n * m + (2 * n - 1) * h);
  EXPECT_EQ(merkle.verifier, h);
  EXPECT_EQ(merkle.relay, h);
}

TEST(Table3Test, PaperFormulas) {
  const std::size_t n = 8, s = 16, h = 20;
  const auto base = table3_ack_memory(AlphaMode::kBase, n, s, h);
  EXPECT_EQ(base.signer, 2 * n * h);
  EXPECT_EQ(base.verifier, 2 * n * h);
  const auto merkle = table3_ack_memory(AlphaMode::kMerkle, n, s, h);
  EXPECT_EQ(merkle.signer, h);
  EXPECT_EQ(merkle.verifier, n * s + (4 * n - 1) * h);
  EXPECT_EQ(merkle.relay, h);
}

TEST(WmnEstimateTest, AlphaCUpperBoundsMatchPaper) {
  // §4.1.2: "about 20 Mbit/s for both commodity devices", "~120 Mbit/s" for
  // the Geode, with 1024 B payloads and 20 pre-signatures per S1.
  const auto ar = estimate_alpha_c(devices::ar2315(), 1024, 20);
  EXPECT_NEAR(ar.throughput_mbps, 20.0, 3.0);
  const auto bcm = estimate_alpha_c(devices::bcm5365(), 1024, 20);
  EXPECT_NEAR(bcm.throughput_mbps, 20.0, 3.0);
  const auto geode = estimate_alpha_c(devices::geode_lx(), 1024, 20);
  EXPECT_NEAR(geode.throughput_mbps, 120.0, 15.0);
}

TEST(WmnEstimateTest, AlphaMMatchesTable6ArColumn) {
  // Table 6 (AR2315): processing 599..956 us, throughput 11.8..6.4 Mbit/s.
  const struct {
    std::size_t leaves;
    double processing_us;
    double throughput;
  } rows[] = {{16, 599, 11.8},  {32, 660, 10.4},  {64, 718, 9.4},
              {128, 778, 8.5},  {256, 837, 7.7},  {512, 897, 7.0},
              {1024, 956, 6.4}};
  for (const auto& row : rows) {
    const auto est = estimate_alpha_m(devices::ar2315(), row.leaves, 1024);
    // Within 2% of the published processing cost (their measured points
    // carry more digits than the table prints).
    EXPECT_NEAR(est.processing_us, row.processing_us,
                row.processing_us * 0.02)
        << row.leaves;
    // Throughput within 10% (the paper's exact amortization is not spelled
    // out; shape and ordering must match).
    EXPECT_NEAR(est.throughput_mbps, row.throughput, row.throughput * 0.10)
        << row.leaves;
  }
}

TEST(WmnEstimateTest, Table6MonotoneTradeoffs) {
  double last_throughput = 1e9;
  double last_data_per_s1 = 0;
  for (std::size_t leaves : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const auto est = estimate_alpha_m(devices::geode_lx(), leaves, 1024);
    EXPECT_LT(est.throughput_mbps, last_throughput);
    EXPECT_GT(est.data_per_s1_mbit, last_data_per_s1);
    last_throughput = est.throughput_mbps;
    last_data_per_s1 = est.data_per_s1_mbit;
  }
}

TEST(WsnEstimateTest, MatchesPaperParagraph) {
  // §4.1.3: ~460 S2/s and ~244 kbit/s verified payload; with pre-acks
  // ~334 packets and ~157 kbit/s.
  const auto plain = estimate_wsn_alpha_c(devices::cc2430(), 100, 5, false);
  EXPECT_NEAR(plain.packets_per_s, 460.0, 15.0);
  EXPECT_NEAR(plain.goodput_kbps, 244.0, 15.0);
  // Below the 250 kbit/s IEEE 802.15.4 ceiling, as the paper notes.
  EXPECT_LT(plain.goodput_kbps, 250.0);

  const auto reliable = estimate_wsn_alpha_c(devices::cc2430(), 100, 5, true);
  EXPECT_NEAR(reliable.packets_per_s, 334.0, 25.0);
  EXPECT_NEAR(reliable.goodput_kbps, 156.56, 25.0);
  EXPECT_LT(reliable.goodput_kbps, plain.goodput_kbps);
}

TEST(CeilLog2Test, Basics) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

}  // namespace
}  // namespace alpha::platform
