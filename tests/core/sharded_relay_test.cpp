// Sharded relay demux: relay bindings distributed across ShardedNode
// workers by assoc-id hash, verified over the deterministic simulator.
//
//  * end-to-end delivery through a multi-worker batched relay, with every
//    worker owning (and actually relaying) its slice of the associations;
//  * scalar (relay_batch=1) vs batched (relay_batch=32) bindings produce
//    identical relay counters on identical traffic -- the sharded analogue
//    of the RelayPipeline equivalence suite;
//  * 1-worker vs 4-worker runs agree on the aggregate relay counters;
//  * seeded chaos (loss + jitter) keeps scalar/batched runs bit-identical;
//  * the relay_pending queue-depth gauge drains to zero at quiescence.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/sharded_node.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;
using testing::SeedReporter;
using testing::chaos_seed;

Config relay_config() {
  Config config;
  config.reliable = true;
  config.rto_us = 200 * kMillisecond;
  config.max_retries = 50;
  return config;
}

std::vector<std::uint32_t> assoc_ids(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<std::uint32_t>(i + 1);
  }
  return ids;
}

/// Host A (node 0) -- relay (node 2, ShardedNode with relay bindings) --
/// host B (node 1). A peers with the relay; the relay's bindings forward
/// between the end nodes; B accepts inbound and answers toward the relay.
struct RelayTriad {
  net::Simulator sim;
  net::Network network;
  std::unique_ptr<ShardedNode> a;
  std::unique_ptr<ShardedNode> b;
  std::unique_ptr<ShardedNode> relay;
  std::map<std::uint32_t, std::vector<Bytes>> at_b;
  std::map<std::uint32_t, std::vector<std::uint64_t>> acked;

  RelayTriad(std::uint32_t relay_workers, std::size_t relay_batch,
             const Config& config, const std::vector<std::uint32_t>& ids,
             std::uint64_t chaos = 0, double loss = 0.0)
      : network(sim, /*seed=*/1337) {
    if (chaos != 0) network.set_chaos_seed(chaos);
    network.add_node(0);
    network.add_node(1);
    network.add_node(2);
    net::LinkConfig link;
    link.latency = 2 * kMillisecond;
    link.jitter = chaos != 0 ? 3 * kMillisecond : net::SimTime{0};
    link.loss_rate = loss;
    network.add_link(0, 2, link);
    network.add_link(2, 1, link);

    ShardedNode::Options r_opts;
    r_opts.shard.config = config;
    r_opts.shard.seed = 9;
    r_opts.workers = relay_workers;
    relay = std::make_unique<ShardedNode>(
        std::make_unique<net::SimTransport>(network, 2), r_opts);
    relay->add_relay(/*upstream=*/0, /*downstream=*/1, ids, relay_batch);

    ShardedNode::Options a_opts;
    a_opts.shard.config = config;
    a_opts.shard.seed = 7;
    a_opts.workers = 1;
    ShardedNode::Callbacks a_cbs;
    a_cbs.on_delivery = [this](std::uint32_t assoc, std::uint64_t cookie,
                               DeliveryStatus status) {
      if (status == DeliveryStatus::kAcked) acked[assoc].push_back(cookie);
    };
    a = std::make_unique<ShardedNode>(
        std::make_unique<net::SimTransport>(network, 0), a_opts, a_cbs);

    ShardedNode::Options b_opts;
    b_opts.shard.config = config;
    b_opts.shard.seed = 8;
    b_opts.shard.accept_inbound = true;
    b_opts.workers = 1;
    ShardedNode::Callbacks b_cbs;
    b_cbs.on_message = [this](std::uint32_t assoc, crypto::ByteView payload) {
      at_b[assoc].emplace_back(payload.begin(), payload.end());
    };
    b = std::make_unique<ShardedNode>(
        std::make_unique<net::SimTransport>(network, 1), b_opts, b_cbs);
  }

  void run(const std::vector<std::uint32_t>& ids) {
    for (const auto id : ids) a->add_initiator(id, /*peer=*/2);
    for (const auto id : ids) a->start(id);
    sim.run_until(10 * kSecond);
    for (const auto id : ids) {
      a->submit(id, Bytes(48, static_cast<std::uint8_t>(id)));
    }
    sim.run_until(60 * kSecond);
  }
};

TEST(ShardedRelayTest, DeliversThroughMultiWorkerBatchedRelay) {
  const auto ids = assoc_ids(12);
  RelayTriad triad(/*relay_workers=*/4, /*relay_batch=*/32, relay_config(),
                   ids);

  // The id set must exercise every relay shard for the test to mean
  // anything.
  std::set<std::uint32_t> covered;
  for (const auto id : ids) covered.insert(triad.relay->shard_for(id));
  ASSERT_EQ(covered.size(), 4u);

  triad.run(ids);

  for (const auto id : ids) {
    ASSERT_EQ(triad.at_b[id].size(), 1u) << "assoc " << id;
    EXPECT_EQ(triad.at_b[id][0], Bytes(48, static_cast<std::uint8_t>(id)));
    ASSERT_EQ(triad.acked[id].size(), 1u) << "assoc " << id;
  }

  NodeSnapshot snap = triad.relay->snapshot();
  EXPECT_GT(snap.relay.forwarded, 0u);
  EXPECT_EQ(snap.relay.dropped_invalid, 0u);
  // The batched pipeline instruments its flush latency; scalar relays
  // would leave this histogram empty.
  EXPECT_GT(snap.relay.verify_batch_ns.count(), 0u);
  EXPECT_GT(snap.relay.verify_batch_frames, 0u);

  // Each worker relayed its own slice: per-shard routed-frame counters are
  // all nonzero, and the pending gauges drained at quiescence.
  for (const auto& st : triad.relay->shard_stats()) {
    EXPECT_GT(st.frames_routed, 0u) << "shard " << st.shard;
    EXPECT_EQ(st.relay_pending, 0u) << "shard " << st.shard;
  }
}

TEST(ShardedRelayTest, ScalarAndBatchedBindingsAgree) {
  const auto ids = assoc_ids(8);
  RelayTriad scalar(/*relay_workers=*/2, /*relay_batch=*/1, relay_config(),
                    ids);
  RelayTriad batched(/*relay_workers=*/2, /*relay_batch=*/32, relay_config(),
                     ids);
  scalar.run(ids);
  batched.run(ids);

  EXPECT_EQ(scalar.at_b, batched.at_b);
  EXPECT_EQ(scalar.acked, batched.acked);

  const NodeSnapshot s = scalar.relay->snapshot();
  const NodeSnapshot b = batched.relay->snapshot();
  EXPECT_EQ(s.relay.forwarded, b.relay.forwarded);
  EXPECT_EQ(s.relay.dropped_invalid, b.relay.dropped_invalid);
  EXPECT_EQ(s.relay.dropped_unsolicited, b.relay.dropped_unsolicited);
  EXPECT_EQ(s.relay.messages_extracted, b.relay.messages_extracted);
  EXPECT_EQ(s.relay.acks_verified, b.relay.acks_verified);
  EXPECT_EQ(s.relay.hashes.signature, b.relay.hashes.signature);
  EXPECT_EQ(s.relay.hashes.chain_verify, b.relay.hashes.chain_verify);
  EXPECT_EQ(s.relay.hashes.ack, b.relay.hashes.ack);
  for (std::size_t i = 0; i < trace::kDropReasonCount; ++i) {
    EXPECT_EQ(s.relay.dropped_by_reason[i], b.relay.dropped_by_reason[i])
        << "drop reason " << i;
  }
}

TEST(ShardedRelayTest, WorkerCountDoesNotChangeRelayDecisions) {
  const auto ids = assoc_ids(10);
  RelayTriad one(/*relay_workers=*/1, /*relay_batch=*/16, relay_config(),
                 ids);
  RelayTriad four(/*relay_workers=*/4, /*relay_batch=*/16, relay_config(),
                  ids);
  one.run(ids);
  four.run(ids);

  EXPECT_EQ(one.at_b, four.at_b);
  EXPECT_EQ(one.acked, four.acked);

  const NodeSnapshot s1 = one.relay->snapshot();
  const NodeSnapshot s4 = four.relay->snapshot();
  EXPECT_EQ(s1.relay.forwarded, s4.relay.forwarded);
  EXPECT_EQ(s1.relay.dropped_invalid, s4.relay.dropped_invalid);
  EXPECT_EQ(s1.relay.dropped_unsolicited, s4.relay.dropped_unsolicited);
  EXPECT_EQ(s1.relay.messages_extracted, s4.relay.messages_extracted);
}

TEST(ShardedRelayTest, SeededChaosKeepsScalarAndBatchedIdentical) {
  const auto ids = assoc_ids(6);
  const std::uint64_t seed = chaos_seed(/*fallback=*/0x51abfeed);
  SeedReporter reporter(seed);
  RelayTriad scalar(/*relay_workers=*/4, /*relay_batch=*/1, relay_config(),
                    ids, seed, /*loss=*/0.10);
  RelayTriad batched(/*relay_workers=*/4, /*relay_batch=*/64, relay_config(),
                     ids, seed, /*loss=*/0.10);
  scalar.run(ids);
  batched.run(ids);

  // The batched pipeline flushes within the same virtual instant its frames
  // arrived, so the network-visible schedule -- and therefore the chaos the
  // seed deals out -- is identical: the two runs must match exactly.
  EXPECT_EQ(scalar.at_b, batched.at_b);
  EXPECT_EQ(scalar.acked, batched.acked);
  const NodeSnapshot s = scalar.relay->snapshot();
  const NodeSnapshot b = batched.relay->snapshot();
  EXPECT_EQ(s.relay.forwarded, b.relay.forwarded);
  EXPECT_EQ(s.relay.dropped_invalid, b.relay.dropped_invalid);
  EXPECT_EQ(s.relay.dropped_unsolicited, b.relay.dropped_unsolicited);
  for (std::size_t i = 0; i < trace::kDropReasonCount; ++i) {
    EXPECT_EQ(s.relay.dropped_by_reason[i], b.relay.dropped_by_reason[i])
        << "drop reason " << i;
  }
  // Chaos actually happened: at 10% loss some frames were retransmitted.
  EXPECT_GT(scalar.relay->snapshot().frames_in, ids.size() * 6);
}

TEST(ShardedRelayTest, AddRelayAfterLaunchThrows) {
  // Threaded (UDP) mode: the worker launch is what locks the topology.
  ShardedNode::Options opts;
  opts.workers = 2;
  ShardedNode node(std::make_unique<net::UdpTransport>(), opts);
  node.poll(0);  // forces the runtime up
  EXPECT_THROW(node.add_relay(/*upstream=*/1, /*downstream=*/2, {1, 2, 3}),
               std::logic_error);
}

}  // namespace
}  // namespace alpha::core
