// Incremental deployment (§3.5): "even isolated ALPHA-enabled relays can
// perform per-packet authentication in the network" -- a single verifying
// relay among blind forwarders still stops forged traffic at its hop.
#include <gtest/gtest.h>

#include "core/attackers.hpp"
#include "core/path.hpp"

namespace alpha::core {
namespace {

using net::kSecond;

// Path 0-1-2-3-4 where only node 2 runs ALPHA; nodes 1 and 3 forward
// blindly.
struct MixedPath {
  MixedPath() : sim(), network(sim, 9) {
    for (net::NodeId id = 0; id <= 4; ++id) network.add_node(id);
    for (net::NodeId id = 0; id < 4; ++id) network.add_link(id, id + 1);
    path.emplace(network, std::vector<net::NodeId>{0, 1, 2, 3, 4}, Config{},
                 1u, 33u);
    // Replace relays at nodes 1 and 3 with blind forwarders (legacy
    // routers that do not speak ALPHA).
    for (const net::NodeId self : {net::NodeId{1}, net::NodeId{3}}) {
      network.set_handler(self, [this, self](net::NodeId from,
                                             crypto::ByteView frame) {
        const net::NodeId next = from == self + 1 ? self - 1 : self + 1;
        network.send(self, next, crypto::Bytes(frame.begin(), frame.end()));
      });
    }
  }

  net::Simulator sim;
  net::Network network;
  std::optional<ProtectedPath> path;
};

TEST(IncrementalDeploymentTest, EndToEndWorksThroughMixedPath) {
  MixedPath mp;
  mp.path->start();
  mp.sim.run_until(kSecond);
  ASSERT_TRUE(mp.path->initiator().established());

  mp.path->initiator().submit(crypto::Bytes(200, 0x77), mp.sim.now());
  mp.sim.run_until(2 * kSecond);
  ASSERT_EQ(mp.path->delivered_to_responder().size(), 1u);
  // The lone ALPHA relay (index 1 = node 2) verified the payload.
  EXPECT_EQ(mp.path->relay(1).stats().messages_extracted, 1u);
}

TEST(IncrementalDeploymentTest, LoneAlphaRelayStillStopsForgeries) {
  MixedPath mp;
  mp.path->start();
  mp.sim.run_until(kSecond);

  // Attacker injects next to the blind node 1: the forgery crosses node 1
  // unchecked but dies at the ALPHA relay on node 2.
  mp.network.add_node(77);
  mp.network.add_link(77, 1);
  launch_s2_flood(mp.network, 77, 1, 1, /*count=*/50, /*payload_size=*/500,
                  net::kMillisecond, 5);
  mp.sim.run_until(mp.sim.now() + 3 * kSecond);

  EXPECT_GT(mp.network.link_stats(1, 2).frames_sent, 50u);  // crossed hop 1
  EXPECT_EQ(mp.path->relay(1).stats().dropped_unsolicited, 50u);
  // Nothing forged crossed hop 2->3.
  EXPECT_TRUE(mp.path->delivered_to_responder().empty());
}

}  // namespace
}  // namespace alpha::core
