// ShardedNode: the supervisor/worker runtime over SPSC rings.
//
//  * inline (simulator) mode -- deterministic: establishment and delivery
//    across every shard, shard-hash stability under rekey and on-demand
//    accept, seeded-chaos exactly-once with bit-identical replay;
//  * threaded (UDP) mode -- real I/O + worker threads: establishment,
//    delivery, cookie mirroring, scrape-merged snapshots, per-shard stats,
//    and the setup-phase locking rules.
#include "core/sharded_node.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "net/network.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;
using testing::SeedReporter;
using testing::chaos_seed;

Config sim_config() {
  Config config;
  config.reliable = true;
  config.rto_us = 200 * kMillisecond;
  config.max_retries = 50;
  return config;
}

/// Assoc ids 1..n, guaranteed (asserted elsewhere) to span all shards for
/// small worker counts thanks to the multiplicative hash.
std::vector<std::uint32_t> assoc_ids(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i + 1);
  return ids;
}

// ------------------------------------------------------------- inline mode

/// Two ShardedNodes over the simulator: initiators at node 0, on-demand
/// accepting responders at node 1.
struct InlinePair {
  net::Simulator sim;
  net::Network network;
  std::unique_ptr<ShardedNode> a;
  std::unique_ptr<ShardedNode> b;
  std::map<std::uint32_t, std::vector<Bytes>> at_b;
  std::map<std::uint32_t, std::vector<std::uint64_t>> acked;

  explicit InlinePair(std::uint32_t workers, const Config& config,
                      std::uint64_t chaos_seed = 0,
                      const net::FaultConfig& faults = {}, double loss = 0.0)
      : network(sim, /*seed=*/1337) {
    if (chaos_seed != 0) network.set_chaos_seed(chaos_seed);
    network.add_node(0);
    network.add_node(1);
    net::LinkConfig link;
    link.latency = 2 * kMillisecond;
    link.jitter = chaos_seed != 0 ? 3 * kMillisecond : net::SimTime{0};
    link.loss_rate = loss;
    network.add_link(0, 1, link);
    if (faults.any()) network.set_link_faults(0, 1, faults);

    ShardedNode::Options a_opts;
    a_opts.shard.config = config;
    a_opts.shard.seed = 7;
    a_opts.workers = workers;
    ShardedNode::Callbacks a_cbs;
    a_cbs.on_delivery = [this](std::uint32_t assoc, std::uint64_t cookie,
                               DeliveryStatus status) {
      if (status == DeliveryStatus::kAcked) acked[assoc].push_back(cookie);
    };
    a = std::make_unique<ShardedNode>(
        std::make_unique<net::SimTransport>(network, 0), a_opts, a_cbs);

    ShardedNode::Options b_opts;
    b_opts.shard.config = config;
    b_opts.shard.seed = 8;
    b_opts.shard.accept_inbound = true;
    b_opts.workers = workers;
    ShardedNode::Callbacks b_cbs;
    b_cbs.on_message = [this](std::uint32_t assoc, crypto::ByteView payload) {
      at_b[assoc].emplace_back(payload.begin(), payload.end());
    };
    b = std::make_unique<ShardedNode>(
        std::make_unique<net::SimTransport>(network, 1), b_opts, b_cbs);
  }
};

TEST(ShardedNodeInlineTest, EstablishesAndDeliversAcrossAllShards) {
  const auto ids = assoc_ids(12);
  InlinePair pair(/*workers=*/4, sim_config());

  // The id set must actually exercise every shard for the test to mean
  // anything.
  std::set<std::uint32_t> covered;
  for (const auto id : ids) covered.insert(pair.a->shard_for(id));
  ASSERT_EQ(covered.size(), 4u);

  for (const auto id : ids) pair.a->add_initiator(id, /*peer=*/1);
  for (const auto id : ids) pair.a->start(id);
  pair.sim.run_until(10 * kSecond);

  EXPECT_EQ(pair.a->established_count(), ids.size());
  EXPECT_EQ(pair.b->established_count(), ids.size());
  EXPECT_EQ(pair.a->association_count(), ids.size());

  for (const auto id : ids) {
    EXPECT_EQ(pair.a->submit(id, Bytes(64, static_cast<std::uint8_t>(id))),
              1u);  // first cookie on every association
  }
  pair.sim.run_until(40 * kSecond);

  for (const auto id : ids) {
    ASSERT_EQ(pair.at_b[id].size(), 1u) << "assoc " << id;
    EXPECT_EQ(pair.at_b[id][0], Bytes(64, static_cast<std::uint8_t>(id)));
    ASSERT_EQ(pair.acked[id].size(), 1u) << "assoc " << id;
  }

  // Scrape-merged aggregates line up with what actually happened.
  const NodeSnapshot sa = pair.a->snapshot(/*per_assoc=*/true);
  const NodeSnapshot sb = pair.b->snapshot();
  EXPECT_EQ(sa.associations, ids.size());
  EXPECT_EQ(sa.established, ids.size());
  EXPECT_EQ(sa.assocs.size(), ids.size());
  EXPECT_EQ(sb.accepted_handshakes, ids.size());
  EXPECT_EQ(sb.messages_delivered, ids.size());
  EXPECT_EQ(sa.ring_overflows, 0u);
  EXPECT_GT(sa.frames_out, 0u);

  // Every shard routed frames for its own associations only.
  std::map<std::uint32_t, std::size_t> per_shard_assocs;
  for (const auto id : ids) ++per_shard_assocs[pair.a->shard_for(id)];
  const auto stats = pair.a->shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& st : stats) {
    EXPECT_EQ(st.frames_routed > 0, per_shard_assocs[st.shard] > 0)
        << "shard " << st.shard;
    EXPECT_EQ(st.in_overflows, 0u);
    EXPECT_EQ(st.out_overflows, 0u);
  }
}

TEST(ShardedNodeInlineTest, SubmitCookiesCountPerAssociation) {
  InlinePair pair(/*workers=*/2, sim_config());
  pair.a->add_initiator(1, 1);
  pair.a->add_initiator(2, 1);
  pair.a->start(1);
  pair.a->start(2);
  pair.sim.run_until(5 * kSecond);
  ASSERT_EQ(pair.a->established_count(), 2u);

  EXPECT_EQ(pair.a->submit(1, Bytes(8, 0x01)), 1u);
  EXPECT_EQ(pair.a->submit(2, Bytes(8, 0x02)), 1u);
  EXPECT_EQ(pair.a->submit(1, Bytes(8, 0x03)), 2u);
  EXPECT_EQ(pair.a->submit(1, Bytes(8, 0x04)), 3u);
  EXPECT_EQ(pair.a->submit(2, Bytes(8, 0x05)), 2u);

  EXPECT_THROW(pair.a->submit(99, Bytes(8, 0x06)), std::invalid_argument);
  EXPECT_THROW(pair.a->start(99), std::invalid_argument);
}

TEST(ShardedNodeInlineTest, RekeyAndAcceptStayOnTheOwningShard) {
  // A deliberately short chain forces rekeys (generation bumps) mid-stream.
  Config config = sim_config();
  config.chain_length = 32;
  config.rekey_threshold = 8;  // rotate when <8 undisclosed elements remain
  const std::uint32_t id = 5;
  InlinePair pair(/*workers=*/4, config);
  const std::uint32_t owner = pair.a->shard_for(id);

  pair.a->add_initiator(id, 1);
  pair.a->start(id);
  pair.sim.run_until(10 * kSecond);
  ASSERT_EQ(pair.a->established_count(), 1u);
  // The responder was accepted on demand -- on the same hash-owned shard.
  const auto b_early = pair.b->shard_stats();
  EXPECT_GT(b_early[pair.b->shard_for(id)].frames_routed, 0u);

  // Enough traffic to exhaust the chain several times over.
  for (int i = 0; i < 30; ++i) {
    pair.a->submit(id, Bytes(32, static_cast<std::uint8_t>(i)));
    pair.sim.run_until(pair.sim.now() + 2 * kSecond);
  }
  pair.sim.run_until(pair.sim.now() + 30 * kSecond);

  ASSERT_EQ(pair.at_b[id].size(), 30u);
  const NodeSnapshot sa = pair.a->snapshot();
  EXPECT_GT(sa.rekeys_started, 0u) << "chain never exhausted: test is vacuous";

  // Shard-hash stability: across every rekey and the on-demand accept, all
  // frames -- on both nodes -- kept landing on the one hash-owned shard.
  // shard_of is a pure function of the association id, so this cannot
  // regress silently without this test failing.
  for (const auto& st : pair.a->shard_stats()) {
    if (st.shard == owner) {
      EXPECT_GT(st.frames_routed, 0u);
    } else {
      EXPECT_EQ(st.frames_routed, 0u) << "shard " << st.shard;
    }
  }
  for (const auto& st : pair.b->shard_stats()) {
    if (st.shard == pair.b->shard_for(id)) {
      EXPECT_GT(st.frames_routed, 0u);
    } else {
      EXPECT_EQ(st.frames_routed, 0u) << "shard " << st.shard;
    }
  }
}

/// One seeded chaos run: returns per-assoc delivered payload sequences and
/// the counters that must replay bit-identically.
struct ChaosRunResult {
  std::map<std::uint32_t, std::vector<Bytes>> delivered;
  std::uint64_t frames_in_a = 0;
  std::uint64_t frames_in_b = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;

  bool operator==(const ChaosRunResult&) const = default;
};

ChaosRunResult chaos_run(std::uint64_t seed, const std::vector<std::uint32_t>&
                                                 ids) {
  Config config = sim_config();
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  net::FaultConfig faults;
  faults.duplicate_rate = 0.2;
  faults.reorder_rate = 0.2;
  InlinePair pair(/*workers=*/4, config, seed, faults, /*loss=*/0.05);

  for (const auto id : ids) pair.a->add_initiator(id, 1);
  for (const auto id : ids) pair.a->start(id);
  pair.sim.run_until(20 * kSecond);
  // Chaos can exhaust a handshake budget; deterministically restart the
  // stragglers (fixed virtual times keep the run replayable).
  for (int attempt = 0;
       attempt < 50 && pair.a->established_count() < ids.size(); ++attempt) {
    const NodeSnapshot progress = pair.a->snapshot(/*per_assoc=*/true);
    for (const auto& as : progress.assocs) {
      if (!as.established) pair.a->start(as.assoc_id);
    }
    pair.sim.run_until(pair.sim.now() + 10 * kSecond);
  }
  EXPECT_EQ(pair.a->established_count(), ids.size());

  const int kMessages = 6;
  for (int i = 0; i < kMessages; ++i) {
    for (const auto id : ids) {
      Bytes payload(48, static_cast<std::uint8_t>(id * 16 + i));
      pair.a->submit(id, std::move(payload));
    }
    pair.sim.run_until(pair.sim.now() + 5 * kSecond);
  }
  pair.sim.run_until(pair.sim.now() + 200 * kSecond);

  ChaosRunResult r;
  r.delivered = pair.at_b;
  const NodeSnapshot sa = pair.a->snapshot();
  const NodeSnapshot sb = pair.b->snapshot();
  r.frames_in_a = sa.frames_in;
  r.frames_in_b = sb.frames_in;
  r.retransmits = sa.retransmits + sb.retransmits;
  r.duplicates = sa.duplicate_frames + sb.duplicate_frames;
  EXPECT_GT(pair.network.total_stats().frames_duplicated, 0u);
  EXPECT_GT(pair.network.total_stats().frames_lost, 0u);
  return r;
}

TEST(ShardedNodeChaosTest, SeededChaosDeliversExactlyOnceAcrossShards) {
  const std::uint64_t seed = chaos_seed(0x5ada);
  SeedReporter reporter{seed};
  const auto ids = assoc_ids(8);

  const ChaosRunResult run = chaos_run(seed, ids);

  // Exactly-once, per association, despite duplication+reorder+loss and the
  // frames crossing shard rings on both ends.
  for (const auto id : ids) {
    const auto it = run.delivered.find(id);
    ASSERT_NE(it, run.delivered.end()) << "assoc " << id;
    std::map<Bytes, int> histogram;
    for (const auto& p : it->second) ++histogram[p];
    EXPECT_EQ(histogram.size(), 6u) << "assoc " << id;
    for (const auto& [payload, count] : histogram) {
      EXPECT_EQ(count, 1) << "assoc " << id << " duplicated a delivery";
    }
  }
}

TEST(ShardedNodeChaosTest, SameSeedReplaysBitIdentically) {
  const std::uint64_t seed = chaos_seed(0x4e9a7);
  SeedReporter reporter{seed};
  const auto ids = assoc_ids(6);

  const ChaosRunResult first = chaos_run(seed, ids);
  const ChaosRunResult second = chaos_run(seed, ids);
  // Same seed, same schedule: payload-for-payload identical deliveries and
  // identical protocol counters, even though frames traverse the sharded
  // rings. (Inline mode is single-threaded by design; this is the property
  // that makes chaos failures reproducible.)
  EXPECT_EQ(first, second);

  const ChaosRunResult other = chaos_run(seed + 1, ids);
  EXPECT_NE(first.frames_in_a + first.frames_in_b,
            other.frames_in_a + other.frames_in_b)
      << "different seed produced an identical run; chaos seed unused?";
}

// ----------------------------------------------------------- threaded mode

Config udp_config() {
  Config config;
  config.reliable = true;
  config.rto_us = 50'000;  // 50 ms: generous against nap jitter
  config.max_retries = 100;
  return config;
}

template <typename Pred>
bool wait_for(Pred pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ShardedNodeThreadedTest, UdpPairEstablishesAndDelivers) {
  const auto ids = assoc_ids(8);
  auto ta = std::make_unique<net::UdpTransport>();
  auto tb = std::make_unique<net::UdpTransport>();
  const std::uint16_t port_b = tb->port();

  ShardedNode::Options a_opts;
  a_opts.shard.config = udp_config();
  a_opts.shard.seed = 21;
  a_opts.workers = 2;
  std::atomic<std::size_t> acked{0};
  ShardedNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                          DeliveryStatus status) {
    if (status == DeliveryStatus::kAcked) acked.fetch_add(1);
  };
  ShardedNode a{std::move(ta), a_opts, a_cbs};

  ShardedNode::Options b_opts;
  b_opts.shard.config = udp_config();
  b_opts.shard.seed = 22;
  b_opts.shard.accept_inbound = true;
  b_opts.workers = 2;
  std::mutex mu;
  std::map<std::uint32_t, std::vector<Bytes>> at_b;
  std::atomic<std::size_t> delivered{0};
  ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t assoc, crypto::ByteView payload) {
    const std::lock_guard<std::mutex> lock(mu);
    at_b[assoc].emplace_back(payload.begin(), payload.end());
    delivered.fetch_add(1);
  };
  ShardedNode b{std::move(tb), b_opts, b_cbs};
  EXPECT_TRUE(a.threaded());
  EXPECT_TRUE(b.threaded());

  for (const auto id : ids) a.add_initiator(id, port_b);
  for (const auto id : ids) a.start(id);
  // b's threads launch on its first poll; a's launched at start().
  ASSERT_TRUE(wait_for(
      [&] {
        b.poll(1);
        return a.established_count() == ids.size() &&
               b.established_count() == ids.size();
      },
      15'000))
      << "established a=" << a.established_count()
      << " b=" << b.established_count();

  // Associations must have been added on their hash-owned shard before the
  // launch; afterwards the setup API locks.
  EXPECT_THROW(a.add_initiator(100, port_b), std::logic_error);

  for (const auto id : ids) {
    EXPECT_EQ(a.submit(id, Bytes(64, static_cast<std::uint8_t>(id))), 1u);
    EXPECT_EQ(a.submit(id, Bytes(64, static_cast<std::uint8_t>(id + 1))), 2u);
  }
  ASSERT_TRUE(wait_for([&] { return delivered.load() == 2 * ids.size(); },
                       15'000))
      << "delivered " << delivered.load();
  ASSERT_TRUE(wait_for([&] { return acked.load() == 2 * ids.size(); },
                       15'000))
      << "acked " << acked.load();

  {
    const std::lock_guard<std::mutex> lock(mu);
    for (const auto id : ids) {
      ASSERT_EQ(at_b[id].size(), 2u) << "assoc " << id;
      EXPECT_EQ(at_b[id][0], Bytes(64, static_cast<std::uint8_t>(id)));
      EXPECT_EQ(at_b[id][1], Bytes(64, static_cast<std::uint8_t>(id + 1)));
    }
  }

  // Scrape-time merge round-trips through every worker's ring.
  const NodeSnapshot sa = a.snapshot(/*per_assoc=*/true);
  EXPECT_EQ(sa.associations, ids.size());
  EXPECT_EQ(sa.established, ids.size());
  EXPECT_EQ(sa.assocs.size(), ids.size());
  const NodeSnapshot sb = b.snapshot();
  EXPECT_EQ(sb.accepted_handshakes, ids.size());
  EXPECT_EQ(sb.messages_delivered, 2 * ids.size());

  std::uint64_t routed = 0;
  for (const auto& st : a.shard_stats()) routed += st.frames_routed;
  EXPECT_GT(routed, 0u);
  EXPECT_EQ(a.association_count(), ids.size());
}

TEST(ShardedNodeThreadedTest, ControlOpsValidateBeforeEnqueue) {
  auto ta = std::make_unique<net::UdpTransport>();
  ShardedNode::Options opts;
  opts.shard.config = udp_config();
  opts.workers = 2;
  ShardedNode node{std::move(ta), opts};
  node.add_initiator(1, 1);
  EXPECT_THROW(node.start(2), std::invalid_argument);
  EXPECT_THROW(node.submit(2, Bytes(8, 0)), std::invalid_argument);
}

TEST(ShardedNodeThreadedTest, WorkerInitRunsOncePerShard) {
  auto ta = std::make_unique<net::UdpTransport>();
  ShardedNode::Options opts;
  opts.shard.config = udp_config();
  opts.workers = 3;
  std::mutex mu;
  std::set<std::uint32_t> seen;
  opts.worker_init = [&](std::uint32_t shard) {
    const std::lock_guard<std::mutex> lock(mu);
    seen.insert(shard);
  };
  ShardedNode node{std::move(ta), opts};
  node.poll(1);  // launches the threads
  ASSERT_TRUE(wait_for(
      [&] {
        const std::lock_guard<std::mutex> lock(mu);
        return seen.size() == 3;
      },
      5'000));
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen, (std::set<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace alpha::core
