// Relay engine tests: hop-by-hop verification, flood filtering, extraction.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Endpoints on the bus: 0 = host A, 1 = host B,
// 10 = relay ingress from A (forward), 11 = relay ingress from B (reverse).
struct RelayedPair {
  explicit RelayedPair(Config config, RelayEngine::Options relay_opts = {})
      : rng_a(1), rng_b(2) {
    RelayEngine::Callbacks r_cb;
    r_cb.forward = [this](Direction dir, ByteView frame) {
      bus.sender(dir == Direction::kForward ? 1 : 0)(
          Bytes(frame.begin(), frame.end()));
    };
    r_cb.on_extracted = [this](std::uint32_t, std::uint32_t, std::uint16_t,
                               ByteView payload) {
      extracted.push_back(Bytes(payload.begin(), payload.end()));
    };
    relay.emplace(config, relay_opts, std::move(r_cb));

    Host::Callbacks a_cb;
    a_cb.send = bus.sender(10);
    a_cb.on_message = [this](ByteView payload) {
      at_a.push_back(Bytes(payload.begin(), payload.end()));
    };
    a_cb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      a_deliveries.emplace_back(cookie, status);
    };
    a.emplace(config, /*assoc_id=*/3, true, rng_a, std::move(a_cb));

    Host::Callbacks b_cb;
    b_cb.send = bus.sender(11);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(config, /*assoc_id=*/3, false, rng_b, std::move(b_cb));

    bus.attach(0, [this](ByteView frame) { a->on_frame(frame, now); });
    bus.attach(1, [this](ByteView frame) { b->on_frame(frame, now); });
    bus.attach(10, [this](ByteView frame) {
      relay->on_frame(Direction::kForward, frame);
    });
    bus.attach(11, [this](ByteView frame) {
      relay->on_frame(Direction::kReverse, frame);
    });
  }

  void establish() {
    a->start();
    bus.pump();
    ASSERT_TRUE(a->established());
    ASSERT_TRUE(b->established());
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<RelayEngine> relay;
  std::optional<Host> a, b;
  std::uint64_t now = 0;
  std::vector<Bytes> at_a, at_b, extracted;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> a_deliveries;
};

TEST(RelayTest, ForwardsHandshakeAndLearnsAnchors) {
  RelayedPair pair{Config{}};
  pair.establish();
  EXPECT_GE(pair.relay->stats().forwarded, 2u);  // HS1 + HS2
}

TEST(RelayTest, EndToEndThroughRelay) {
  RelayedPair pair{Config{}};
  pair.establish();
  pair.a->submit(msg("via relay"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.at_b[0], msg("via relay"));
  EXPECT_EQ(pair.relay->stats().dropped_invalid, 0u);
}

TEST(RelayTest, ExtractsAuthenticatedPayloads) {
  // §3.5: relays can securely extract signaling data from S2 packets.
  RelayedPair pair{Config{}};
  pair.establish();
  pair.a->submit(msg("location update: cell 12"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.extracted.size(), 1u);
  EXPECT_EQ(pair.extracted[0], msg("location update: cell 12"));
  EXPECT_EQ(pair.relay->stats().messages_extracted, 1u);
}

TEST(RelayTest, BothDirectionsVerified) {
  RelayedPair pair{Config{}};
  pair.establish();
  pair.a->submit(msg("forward"), 0);
  pair.b->submit(msg("reverse"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.at_a.size(), 1u);
  EXPECT_EQ(pair.extracted.size(), 2u);
}

class RelayModeTest
    : public ::testing::TestWithParam<std::tuple<wire::Mode, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, RelayModeTest,
    ::testing::Combine(::testing::Values(wire::Mode::kBase,
                                         wire::Mode::kCumulative,
                                         wire::Mode::kMerkle),
                       ::testing::Bool()));

TEST_P(RelayModeTest, BatchTraffic) {
  const auto [mode, reliable] = GetParam();
  Config config;
  config.mode = mode;
  config.reliable = reliable;
  config.batch_size = 4;
  RelayedPair pair{config};
  pair.establish();
  for (int i = 0; i < 8; ++i) pair.a->submit(msg("m" + std::to_string(i)), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 8u);
  EXPECT_EQ(pair.extracted.size(), 8u);
  EXPECT_EQ(pair.relay->stats().dropped_invalid, 0u);
  if (reliable) {
    EXPECT_EQ(pair.relay->stats().acks_verified, 8u);
  }
}

TEST(RelayTest, TamperedS2DroppedAtRelay) {
  // A malicious upstream modifies the payload; the relay must drop it so it
  // never reaches (or even travels toward) the verifier.
  RelayedPair pair{Config{}};
  pair.establish();

  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      frame[frame.size() - 1] ^= 0x01;
    }
    return true;
  });
  pair.a->submit(msg("intact?"), 0);
  pair.bus.pump();

  EXPECT_TRUE(pair.at_b.empty());
  EXPECT_EQ(pair.relay->stats().dropped_invalid, 1u);
  EXPECT_TRUE(pair.extracted.empty());
}

TEST(RelayTest, InjectedS2WithoutContextDropped) {
  RelayedPair pair{Config{}};
  pair.establish();

  wire::S2Packet forged;
  forged.hdr = {3, 77};
  forged.mode = wire::Mode::kBase;
  forged.chain_index = 500;
  forged.disclosed_element = crypto::Digest{ByteView{Bytes(20, 0x66)}};
  forged.payload = msg("flood data");
  const auto decision =
      pair.relay->on_frame(Direction::kForward, forged.encode());
  EXPECT_EQ(decision, RelayDecision::kDroppedUnsolicited);
  pair.bus.pump();
  EXPECT_TRUE(pair.at_b.empty());
}

TEST(RelayTest, S2BeforeA1IsUnsolicited) {
  // Flood mitigation: until the verifier grants an A1, data is not relayed.
  RelayedPair pair{Config{}};
  pair.establish();

  // Capture the S1 and drop the A1 so no willingness signal exists.
  pair.bus.set_hook([](Bytes& frame) {
    return wire::peek_type(frame) != wire::PacketType::kA1;
  });
  pair.a->submit(msg("eager"), 0);
  pair.bus.pump();

  // Signer never got A1, so it never sent S2. Now inject an S2-like frame
  // reusing the genuine chain element: relay must refuse for lack of A1.
  wire::S2Packet s2;
  s2.hdr = {3, 1};
  s2.mode = wire::Mode::kBase;
  s2.chain_index = 1;
  s2.disclosed_element = crypto::Digest{ByteView{Bytes(20, 0x11)}};
  s2.payload = msg("pushy");
  const auto decision = pair.relay->on_frame(Direction::kForward, s2.encode());
  EXPECT_EQ(decision, RelayDecision::kDroppedUnsolicited);
}

TEST(RelayTest, MalformedFramesDropped) {
  RelayedPair pair{Config{}};
  const Bytes junk{0x01, 0x02, 0x03};
  EXPECT_EQ(pair.relay->on_frame(Direction::kForward, junk),
            RelayDecision::kDroppedMalformed);
}

TEST(RelayTest, UnknownAssociationPolicy) {
  Config config;
  // Strict relay drops traffic with no observed handshake.
  RelayedPair strict{config};
  wire::S1Packet s1;
  s1.hdr = {42, 1};
  s1.mode = wire::Mode::kBase;
  s1.chain_index = 3;
  s1.chain_element = crypto::Digest{ByteView{Bytes(20, 1)}};
  s1.macs = {crypto::Digest{ByteView{Bytes(20, 2)}}};
  EXPECT_EQ(strict.relay->on_frame(Direction::kForward, s1.encode()),
            RelayDecision::kDroppedUnsolicited);

  // Incremental-deployment relay forwards what it cannot verify (§3.5).
  RelayEngine::Options lax;
  lax.require_handshake = false;
  RelayedPair open{config, lax};
  EXPECT_EQ(open.relay->on_frame(Direction::kForward, s1.encode()),
            RelayDecision::kForwarded);
}

TEST(RelayTest, ProtectedHandshakeVerifiedWhenEnabled) {
  HmacDrbg keyrng{0xabc};
  const Identity id = Identity::make_rsa(keyrng, 512);

  Config config;
  RelayEngine::Options opts;
  opts.verify_handshake_signatures = true;

  RelayEngine::Callbacks cb;
  std::size_t forwarded = 0;
  cb.forward = [&](Direction, ByteView) { ++forwarded; };
  RelayEngine relay{config, opts, std::move(cb)};

  // Build a genuine protected handshake via a host.
  HmacDrbg rng{5};
  PacketBus bus;
  Host::Callbacks host_cb;
  std::vector<Bytes> frames;
  host_cb.send = [&](Bytes frame) { frames.push_back(std::move(frame)); };
  Host::Options host_opts;
  host_opts.identity = &id;
  Host host{config, 9, true, rng, std::move(host_cb), host_opts};
  host.start();
  ASSERT_EQ(frames.size(), 1u);

  EXPECT_EQ(relay.on_frame(Direction::kForward, frames[0]),
            RelayDecision::kForwarded);

  // Raw tampering dies at the frame checksum, before any crypto runs.
  Bytes tampered = frames[0];
  tampered[20] ^= 1;
  EXPECT_EQ(relay.on_frame(Direction::kForward, tampered),
            RelayDecision::kDroppedMalformed);

  // A resealed tamper (valid CRC, forged content) must still be caught --
  // by the handshake signature this time.
  const std::size_t body_len = tampered.size() - wire::kFrameChecksumSize;
  const std::uint32_t crc =
      wire::frame_checksum(crypto::ByteView{tampered.data(), body_len});
  for (std::size_t i = 0; i < wire::kFrameChecksumSize; ++i) {
    tampered[body_len + i] = static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  EXPECT_EQ(relay.on_frame(Direction::kForward, tampered),
            RelayDecision::kDroppedInvalid);
}

TEST(RelayTest, RelayBuffersStayTiny) {
  // Table 2 relay column: n*h per round, independent of payload size.
  Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 10;
  RelayedPair pair{config};
  pair.establish();
  // Hold A1 back so the round stays buffered at the relay.
  pair.bus.set_hook([](Bytes& frame) {
    return wire::peek_type(frame) != wire::PacketType::kA1;
  });
  for (int i = 0; i < 10; ++i) {
    pair.a->submit(Bytes(1000, 0x77), 0);  // 1 kB messages
  }
  pair.bus.pump();
  // 10 MACs of 20 bytes buffered, not 10 kB of payload.
  EXPECT_EQ(pair.relay->buffered_bytes(), 200u);
}

TEST(RelayTest, ChainedRelaysAllVerify) {
  // Two relays in sequence: s - r1 - r2 - v.
  Config config;
  HmacDrbg rng_a{1}, rng_b{2};
  PacketBus bus;
  std::optional<RelayEngine> r1, r2;
  std::optional<Host> a, b;
  std::vector<Bytes> at_b;

  RelayEngine::Callbacks r1_cb;
  r1_cb.forward = [&](Direction dir, ByteView frame) {
    // forward -> toward r2 (20); reverse -> toward A (0)
    bus.sender(dir == Direction::kForward ? 20 : 0)(
        Bytes(frame.begin(), frame.end()));
  };
  r1.emplace(config, RelayEngine::Options{}, std::move(r1_cb));

  RelayEngine::Callbacks r2_cb;
  r2_cb.forward = [&](Direction dir, ByteView frame) {
    bus.sender(dir == Direction::kForward ? 1 : 21)(
        Bytes(frame.begin(), frame.end()));
  };
  r2.emplace(config, RelayEngine::Options{}, std::move(r2_cb));

  Host::Callbacks a_cb;
  a_cb.send = bus.sender(10);
  a.emplace(config, 5, true, rng_a, std::move(a_cb));
  Host::Callbacks b_cb;
  b_cb.send = bus.sender(11);
  b_cb.on_message = [&](ByteView payload) {
    at_b.push_back(Bytes(payload.begin(), payload.end()));
  };
  b.emplace(config, 5, false, rng_b, std::move(b_cb));

  bus.attach(0, [&](ByteView f) { a->on_frame(f, 0); });
  bus.attach(1, [&](ByteView f) { b->on_frame(f, 0); });
  bus.attach(10, [&](ByteView f) { r1->on_frame(Direction::kForward, f); });
  bus.attach(20, [&](ByteView f) { r2->on_frame(Direction::kForward, f); });
  bus.attach(11, [&](ByteView f) { r2->on_frame(Direction::kReverse, f); });
  bus.attach(21, [&](ByteView f) { r1->on_frame(Direction::kReverse, f); });

  a->start();
  bus.pump();
  ASSERT_TRUE(b->established());
  a->submit(msg("two hops"), 0);
  bus.pump();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(r1->stats().dropped_invalid, 0u);
  EXPECT_EQ(r2->stats().dropped_invalid, 0u);
  EXPECT_EQ(r1->stats().messages_extracted, 1u);
  EXPECT_EQ(r2->stats().messages_extracted, 1u);
}

}  // namespace
}  // namespace alpha::core
