// Lock-free SPSC rings under the sharded runtime: FIFO order, explicit
// overflow accounting, multi-slot borrowing for batched flushes, buffer
// recycling, cross-thread handoff, and the shard-ownership hash.
#include "core/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace alpha::core {
namespace {

using crypto::ByteView;
using crypto::Bytes;

Bytes payload_for(std::uint32_t i, std::size_t size) {
  Bytes b(size);
  for (std::size_t k = 0; k < size; ++k) {
    b[k] = static_cast<std::uint8_t>(i + k);
  }
  return b;
}

// ------------------------------------------------------------ generic ring

TEST(SpscRingTest, FifoOrderAndCapacity) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(std::move(rejected)));  // full

  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRingTest, CrossThreadTransferPreservesEverything) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(256);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  while (expect < kCount) {
    std::uint64_t v;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);  // FIFO, nothing lost, nothing duplicated
      ++expect;
    }
  }
  producer.join();
  EXPECT_EQ(ring.size_approx(), 0u);
}

// ------------------------------------------------------------- frame ring

TEST(FrameRingTest, CarriesPayloadAndMetadata) {
  FrameRing ring(8);
  const Bytes p = payload_for(7, 48);
  ASSERT_TRUE(ring.try_push(FrameSlot::Kind::kSubmit, /*peer=*/42,
                            /*time_us=*/1000, /*assoc_id=*/7,
                            ByteView{p.data(), p.size()}));
  const FrameSlot* slot = ring.front();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->kind, FrameSlot::Kind::kSubmit);
  EXPECT_EQ(slot->peer, 42u);
  EXPECT_EQ(slot->time_us, 1000u);
  EXPECT_EQ(slot->assoc_id, 7u);
  ASSERT_EQ(slot->view().size(), p.size());
  EXPECT_EQ(std::memcmp(slot->view().data(), p.data(), p.size()), 0);
  ring.pop();
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(FrameRingTest, OverflowIsCountedNotBlocked) {
  FrameRing ring(2);
  const Bytes p = payload_for(0, 16);
  const ByteView v{p.data(), p.size()};
  EXPECT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, v));
  EXPECT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, v));
  EXPECT_FALSE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, v));
  EXPECT_FALSE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, v));
  EXPECT_EQ(ring.overflows(), 2u);
  ring.pop();  // frees one slot
  EXPECT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, v));
  EXPECT_EQ(ring.overflows(), 2u);
}

TEST(FrameRingTest, PeekBorrowsMultipleSlotsForBatchedFlush) {
  FrameRing ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const Bytes p = payload_for(i, 8 + i);
    ASSERT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, i, i, i,
                              ByteView{p.data(), p.size()}));
  }
  // Borrow all five at once (the I/O thread gathers a sendmmsg batch this
  // way), then release only an "accepted" prefix of three.
  for (std::uint32_t i = 0; i < 5; ++i) {
    const FrameSlot* slot = ring.peek(i);
    ASSERT_NE(slot, nullptr) << i;
    EXPECT_EQ(slot->peer, i);
    EXPECT_EQ(slot->view().size(), 8u + i);
  }
  EXPECT_EQ(ring.peek(5), nullptr);
  ring.pop_n(3);
  ASSERT_NE(ring.peek(0), nullptr);
  EXPECT_EQ(ring.peek(0)->peer, 3u);  // the unaccepted tail survives
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(FrameRingTest, SlotBuffersAreRecycledAcrossWraps) {
  FrameRing ring(4);
  const Bytes big = payload_for(1, 512);
  const Bytes small = payload_for(2, 16);
  // Grow every slot once.
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0,
                              ByteView{big.data(), big.size()}));
    const FrameSlot* slot = ring.front();
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->view().size(), big.size());
    ring.pop();
  }
  // Smaller payloads reuse the grown storage; size reports the valid bytes.
  ASSERT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 0, 0, 0,
                            ByteView{small.data(), small.size()}));
  const FrameSlot* slot = ring.front();
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->view().size(), small.size());
  EXPECT_GE(slot->buf.capacity(), big.size());  // storage kept, not shrunk
  EXPECT_EQ(std::memcmp(slot->view().data(), small.data(), small.size()), 0);
}

TEST(FrameRingTest, CrossThreadFramesArriveIntact) {
  constexpr std::uint32_t kFrames = 20'000;
  FrameRing ring(64);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kFrames; ++i) {
      const Bytes p = payload_for(i, 32 + (i % 64));
      while (!ring.try_push(FrameSlot::Kind::kFrame, i, i, i,
                            ByteView{p.data(), p.size()})) {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    const FrameSlot* slot;
    while ((slot = ring.front()) == nullptr) std::this_thread::yield();
    ASSERT_EQ(slot->peer, i);
    const Bytes expect = payload_for(i, 32 + (i % 64));
    ASSERT_EQ(slot->view().size(), expect.size());
    ASSERT_EQ(std::memcmp(slot->view().data(), expect.data(), expect.size()),
              0);
    ring.pop();
  }
  producer.join();
  // overflows() counts refused push attempts; the producer retried each one,
  // so frames were delayed, never lost -- exactly the backpressure contract.
  EXPECT_EQ(ring.size_approx(), 0u);
}

// ---------------------------------------------------------- shard_of hash

TEST(ShardOfTest, StableAndInRange) {
  for (std::uint32_t id = 0; id < 1000; ++id) {
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      const std::uint32_t s = shard_of(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(id, shards));  // pure function of (id, shards)
    }
  }
  EXPECT_EQ(shard_of(12345, 0), 0u);
  EXPECT_EQ(shard_of(12345, 1), 0u);
}

TEST(ShardOfTest, SpreadsSequentialIdsEvenly) {
  // Association ids are typically allocated sequentially; the multiplicative
  // hash must not let a contiguous range collapse onto few shards.
  constexpr std::uint32_t kShards = 4;
  constexpr std::uint32_t kIds = 10'000;
  std::vector<std::uint32_t> count(kShards, 0);
  for (std::uint32_t id = 1; id <= kIds; ++id) ++count[shard_of(id, kShards)];
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], kIds / kShards / 2) << "shard " << s << " starved";
    EXPECT_LT(count[s], kIds * 2 / kShards) << "shard " << s << " overloaded";
  }
}

}  // namespace
}  // namespace alpha::core
