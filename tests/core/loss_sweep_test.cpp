// Property sweep: reliable ALPHA delivers everything across loss rates,
// modes and hash algorithms on a jittery multi-hop path -- including
// Gilbert-Elliott bursty loss from the adversarial fault layer, where the
// exponential-backoff retransmit budget must both converge and stay bounded.
#include <gtest/gtest.h>

#include "core/path.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using net::kMillisecond;
using net::kSecond;

struct SweepParam {
  wire::Mode mode;
  double loss;
  crypto::HashAlgo algo;
};

class LossSweepTest : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossSweepTest,
    ::testing::Values(
        SweepParam{wire::Mode::kBase, 0.05, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kBase, 0.20, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kCumulative, 0.10, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kCumulative, 0.20, crypto::HashAlgo::kSha256},
        SweepParam{wire::Mode::kMerkle, 0.10, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kMerkle, 0.20, crypto::HashAlgo::kMmo128},
        SweepParam{wire::Mode::kCumulativeMerkle, 0.15,
                   crypto::HashAlgo::kSha1}),
    [](const auto& info) {
      std::string name;
      switch (info.param.mode) {
        case wire::Mode::kBase: name = "Base"; break;
        case wire::Mode::kCumulative: name = "C"; break;
        case wire::Mode::kMerkle: name = "M"; break;
        case wire::Mode::kCumulativeMerkle: name = "CM"; break;
      }
      name += "Loss" + std::to_string(static_cast<int>(info.param.loss * 100));
      name += crypto::to_string(info.param.algo) == "SHA-1" ? "Sha1"
              : crypto::to_string(info.param.algo) == "SHA-256" ? "Sha256"
                                                                : "Mmo";
      return name;
    });

TEST_P(LossSweepTest, AllMessagesEventuallyAckedUnderLoss) {
  const auto param = GetParam();

  net::Simulator sim;
  net::Network network{sim, /*seed=*/1337};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.jitter = 3 * kMillisecond;
  link.loss_rate = param.loss;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  Config config;
  config.algo = param.algo;
  config.mode = param.mode;
  config.batch_size = 4;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;

  ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 99};
  path.start(/*tick_horizon_us=*/2000 * kSecond);

  sim.run_until(5 * kSecond);
  for (int attempt = 0; attempt < 50 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(path.initiator().established()) << "handshake never completed";

  const int kMessages = 12;
  for (int i = 0; i < kMessages; ++i) {
    path.initiator().submit(crypto::Bytes(200, static_cast<std::uint8_t>(i)),
                            sim.now());
  }
  sim.run_until(sim.now() + 1500 * kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    if (status == DeliveryStatus::kAcked) ++acked;
  }
  EXPECT_EQ(acked, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(path.delivered_to_responder().size(),
            static_cast<std::size_t>(kMessages));
  // Integrity under loss: whatever arrived was exactly what was sent.
  for (const auto& m : path.delivered_to_responder()) {
    ASSERT_EQ(m.size(), 200u);
  }
}

// Gilbert-Elliott bursty loss: losses cluster instead of falling uniformly,
// so several consecutive retransmissions of the same round can vanish.
// Exponential backoff rides the retransmissions out of the burst; the
// budget assertions pin down that convergence does not rely on unbounded
// retries.
TEST(BurstLossSweepTest, AllMessagesAckedUnderBurstyLossWithinBudget) {
  const std::uint64_t seed = testing::chaos_seed(0xb0257);
  testing::SeedReporter reporter{seed};

  net::Simulator sim;
  net::Network network{sim, /*seed=*/1337};
  network.set_chaos_seed(seed);
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.jitter = 3 * kMillisecond;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  net::FaultConfig faults;
  faults.burst = net::BurstLossConfig{/*p_enter_bad=*/0.08,
                                      /*p_exit_bad=*/0.25,
                                      /*loss_good=*/0.02,
                                      /*loss_bad=*/0.80};
  for (net::NodeId id = 0; id < 3; ++id) {
    network.set_link_faults(id, id + 1, faults);
  }

  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;

  ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 99};
  path.start();
  sim.run_until(5 * kSecond);
  for (int attempt = 0; attempt < 50 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(path.initiator().established()) << "handshake never completed";

  const int kMessages = 12;
  for (int i = 0; i < kMessages; ++i) {
    path.initiator().submit(crypto::Bytes(200, static_cast<std::uint8_t>(i)),
                            sim.now());
  }
  sim.run_until(sim.now() + 1500 * kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    if (status == DeliveryStatus::kAcked) ++acked;
  }
  EXPECT_EQ(acked, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(path.delivered_to_responder().size(),
            static_cast<std::size_t>(kMessages));

  // The burst schedule actually lost frames...
  EXPECT_GT(network.total_stats().frames_lost, 0u);

  // ...and the retransmit machinery stayed within its budget: no round and
  // no handshake may exceed max_retries attempts, and the association never
  // reached the failed state.
  const auto& stats = path.initiator().signer()->stats();
  const std::uint64_t budget =
      static_cast<std::uint64_t>(config.max_retries);
  EXPECT_LE(stats.s1_retransmits, stats.rounds_started * budget);
  EXPECT_LE(stats.s2_retransmits, stats.rounds_started * budget);
  EXPECT_LE(path.initiator().hs_retransmits(), budget);
  EXPECT_FALSE(path.initiator().failed());
  EXPECT_EQ(stats.rounds_failed, 0u);
}

}  // namespace
}  // namespace alpha::core
