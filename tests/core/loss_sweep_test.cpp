// Property sweep: reliable ALPHA delivers everything across loss rates,
// modes and hash algorithms on a jittery multi-hop path.
#include <gtest/gtest.h>

#include "core/path.hpp"

namespace alpha::core {
namespace {

using net::kMillisecond;
using net::kSecond;

struct SweepParam {
  wire::Mode mode;
  double loss;
  crypto::HashAlgo algo;
};

class LossSweepTest : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossSweepTest,
    ::testing::Values(
        SweepParam{wire::Mode::kBase, 0.05, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kBase, 0.20, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kCumulative, 0.10, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kCumulative, 0.20, crypto::HashAlgo::kSha256},
        SweepParam{wire::Mode::kMerkle, 0.10, crypto::HashAlgo::kSha1},
        SweepParam{wire::Mode::kMerkle, 0.20, crypto::HashAlgo::kMmo128},
        SweepParam{wire::Mode::kCumulativeMerkle, 0.15,
                   crypto::HashAlgo::kSha1}),
    [](const auto& info) {
      std::string name;
      switch (info.param.mode) {
        case wire::Mode::kBase: name = "Base"; break;
        case wire::Mode::kCumulative: name = "C"; break;
        case wire::Mode::kMerkle: name = "M"; break;
        case wire::Mode::kCumulativeMerkle: name = "CM"; break;
      }
      name += "Loss" + std::to_string(static_cast<int>(info.param.loss * 100));
      name += crypto::to_string(info.param.algo) == "SHA-1" ? "Sha1"
              : crypto::to_string(info.param.algo) == "SHA-256" ? "Sha256"
                                                                : "Mmo";
      return name;
    });

TEST_P(LossSweepTest, AllMessagesEventuallyAckedUnderLoss) {
  const auto param = GetParam();

  net::Simulator sim;
  net::Network network{sim, /*seed=*/1337};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  link.jitter = 3 * kMillisecond;
  link.loss_rate = param.loss;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  Config config;
  config.algo = param.algo;
  config.mode = param.mode;
  config.batch_size = 4;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;

  ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 99};
  path.start(/*tick_horizon_us=*/2000 * kSecond);

  sim.run_until(5 * kSecond);
  for (int attempt = 0; attempt < 50 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(path.initiator().established()) << "handshake never completed";

  const int kMessages = 12;
  for (int i = 0; i < kMessages; ++i) {
    path.initiator().submit(crypto::Bytes(200, static_cast<std::uint8_t>(i)),
                            sim.now());
  }
  sim.run_until(sim.now() + 1500 * kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    if (status == DeliveryStatus::kAcked) ++acked;
  }
  EXPECT_EQ(acked, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(path.delivered_to_responder().size(),
            static_cast<std::size_t>(kMessages));
  // Integrity under loss: whatever arrived was exactly what was sent.
  for (const auto& m : path.delivered_to_responder()) {
    ASSERT_EQ(m.size(), 200u);
  }
}

}  // namespace
}  // namespace alpha::core
