// Property test for the hashed timer wheel against a reference model.
//
// Contract under test (see timer_wheel.hpp): an entry armed while the
// cursor sits at tick C with deadline D fires at absolute tick
// max(ceil(D / granularity), C + 1) -- in the first advance() whose target
// tick reaches that value, never earlier, exactly once. That must hold for
// deadlines beyond one wheel revolution (multi-lap re-queueing), duplicate
// re-arms of the same key (multiset semantics), and deadlines that land
// exactly on the cursor's current tick.
#include "core/timer_wheel.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace alpha::core {
namespace {

/// Deterministic 64-bit LCG (tests must not depend on global rand state).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

std::uint64_t expected_fire_tick(std::uint64_t deadline_us,
                                 std::uint64_t granularity,
                                 std::uint64_t cursor_at_arm) {
  std::uint64_t tick = deadline_us / granularity;
  if (tick * granularity < deadline_us) ++tick;
  return std::max(tick, cursor_at_arm + 1);
}

/// Reference model: every armed entry with its precomputed fire tick.
struct Model {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> armed;  // key, tick

  void arm(std::uint32_t key, std::uint64_t fire_tick) {
    armed.emplace_back(key, fire_tick);
  }
  /// Pops everything due at `target` and returns it as a key multiset.
  std::multiset<std::uint32_t> advance(std::uint64_t target);
};

std::multiset<std::uint32_t> Model::advance(std::uint64_t target) {
  std::multiset<std::uint32_t> due;
  std::size_t keep = 0;
  for (auto& [key, tick] : armed) {
    if (tick <= target) {
      due.insert(key);
    } else {
      armed[keep++] = {key, tick};
    }
  }
  armed.resize(keep);
  return due;
}

TEST(TimerWheelProperty, RandomSweepMatchesReferenceModel) {
  for (const std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const std::uint64_t granularity = 50;
    const std::size_t slots = 16;  // small ring: laps happen constantly
    TimerWheel wheel(granularity, slots);
    Model model;
    Lcg rng{seed};

    std::uint64_t now_us = 0;
    std::uint64_t cursor = 0;  // mirror of the wheel's processed tick
    for (int step = 0; step < 400; ++step) {
      // Arm a burst of 0..3 timers, deadlines up to 4 revolutions out
      // (and occasionally in the past, which must clamp to cursor + 1).
      const std::uint64_t burst = rng.below(4);
      for (std::uint64_t b = 0; b < burst; ++b) {
        const std::uint32_t key = static_cast<std::uint32_t>(rng.below(32));
        const std::uint64_t horizon = granularity * slots * 4;
        std::uint64_t deadline = now_us + rng.below(horizon);
        if (rng.below(8) == 0 && now_us > 0) deadline = rng.below(now_us);
        wheel.arm(key, deadline);
        model.arm(key, expected_fire_tick(deadline, granularity, cursor));
      }

      // Advance by 0..2.5 revolutions (0 exercises the no-op path).
      now_us += rng.below(granularity * slots * 5 / 2);
      std::vector<std::uint32_t> due;
      wheel.advance(now_us, due);
      const std::uint64_t target = now_us / granularity;
      if (target > cursor) cursor = target;

      const std::multiset<std::uint32_t> got(due.begin(), due.end());
      EXPECT_EQ(got, model.advance(cursor))
          << "seed " << seed << " step " << step << " now " << now_us;
      EXPECT_EQ(wheel.armed(), model.armed.size());
    }
  }
}

TEST(TimerWheelProperty, MultiLapDeadlineSurvivesEarlySlotVisits) {
  const std::uint64_t granularity = 100;
  const std::size_t slots = 8;
  TimerWheel wheel(granularity, slots);
  // Deadline 3.5 revolutions out: its slot comes up 3 times before it fires.
  const std::uint64_t deadline = granularity * slots * 3 + granularity * 4;
  wheel.arm(42, deadline);

  std::vector<std::uint32_t> due;
  for (std::uint64_t lap = 1; lap <= 3; ++lap) {
    wheel.advance(granularity * slots * lap, due);
    EXPECT_TRUE(due.empty()) << "fired a full lap early (lap " << lap << ")";
    EXPECT_EQ(wheel.armed(), 1u);
  }
  wheel.advance(deadline, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 42u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelProperty, SingleAdvanceAcrossManyRevolutions) {
  const std::uint64_t granularity = 10;
  const std::size_t slots = 4;
  TimerWheel wheel(granularity, slots);
  wheel.arm(1, 15);                            // tick 2
  wheel.arm(2, granularity * slots * 10);      // 10 laps out
  wheel.arm(3, granularity * slots * 100);     // 100 laps out

  // One giant jump (>> one revolution) must surface everything due without
  // spinning per-tick, and must not lose the still-future entry.
  std::vector<std::uint32_t> due;
  wheel.advance(granularity * slots * 50, due);
  std::sort(due.begin(), due.end());
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(wheel.armed(), 1u);

  due.clear();
  wheel.advance(granularity * slots * 100, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelProperty, DuplicateReArmsFireOncePerArm) {
  TimerWheel wheel(10, 8);
  wheel.arm(5, 25);  // tick 3
  wheel.arm(5, 25);  // same key, same deadline: multiset semantics
  wheel.arm(5, 85);  // tick 9, one lap later in slot 1
  EXPECT_EQ(wheel.armed(), 3u);

  std::vector<std::uint32_t> due;
  wheel.advance(30, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{5, 5}));
  due.clear();
  wheel.advance(90, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{5}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelProperty, DeadlineAtOrBehindCursorFiresNextTick) {
  TimerWheel wheel(10, 8);
  std::vector<std::uint32_t> due;
  wheel.advance(50, due);  // cursor at tick 5
  ASSERT_TRUE(due.empty());

  wheel.arm(1, 50);  // exactly the cursor tick: already in the past
  wheel.arm(2, 12);  // far behind the cursor
  wheel.arm(3, 0);   // zero deadline
  // None may fire at the current time...
  wheel.advance(50, due);
  EXPECT_TRUE(due.empty());
  // ...all must fire at the very next tick.
  wheel.advance(60, due);
  std::sort(due.begin(), due.end());
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(TimerWheelProperty, ExactTickBoundaryDoesNotRoundUp) {
  TimerWheel wheel(10, 8);
  wheel.arm(1, 30);  // exactly tick 3: fires once advance reaches tick 3
  wheel.arm(2, 31);  // rounds up to tick 4
  std::vector<std::uint32_t> due;
  wheel.advance(29, due);
  EXPECT_TRUE(due.empty());
  wheel.advance(30, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1}));
  due.clear();
  wheel.advance(39, due);
  EXPECT_TRUE(due.empty());
  wheel.advance(40, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{2}));
}

}  // namespace
}  // namespace alpha::core
