// Edge-case coverage: exhaustion paths, boundary inputs, replay handling,
// lossy-handshake recovery.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(EdgeCaseTest, OversizedMessageThrows) {
  Config config;
  HmacDrbg rng{1};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 16);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 16);
  SignerEngine::Callbacks cb;
  cb.send = [](Bytes) {};
  SignerEngine signer{config, 1, sig, ack.anchor(), ack.length(),
                      std::move(cb)};
  EXPECT_THROW(signer.submit(Bytes(70000, 0), 0), std::length_error);
  EXPECT_NO_THROW(signer.submit(Bytes(65535, 0), 0));
}

TEST(EdgeCaseTest, VerifierDeniesWhenAckChainExhausted) {
  Config config;
  config.chain_length = 4;  // one round for the verifier's ack chain
  HmacDrbg rng{2};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 1024);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 4);

  std::size_t a1_count = 0;
  VerifierEngine::Callbacks cb;
  cb.send = [&](Bytes frame) {
    if (wire::peek_type(frame) == wire::PacketType::kA1) ++a1_count;
  };
  VerifierEngine verifier{config, 1,        ack,
                          sig.anchor(),     sig.length(),
                          std::move(cb),    rng};

  hashchain::ChainWalker walker{sig};
  for (std::uint32_t seq = 1; seq <= 3; ++seq) {
    wire::S1Packet s1;
    s1.hdr = {1, seq};
    s1.mode = wire::Mode::kBase;
    s1.chain_index = static_cast<std::uint32_t>(walker.next_index());
    s1.chain_element = walker.peek();
    walker.take(2);
    s1.macs = {crypto::Digest{ByteView{Bytes(20, 1)}}};
    verifier.on_s1(s1);
  }
  // Ack chain of length 4 funds exactly one A1 (+1 reserved element); the
  // second and third S1 are silently denied -- the flood-mitigation posture.
  EXPECT_EQ(a1_count, 1u);
}

TEST(EdgeCaseTest, MsgIndexOutOfRangeRejected) {
  Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 4;
  HmacDrbg rng{3};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);

  PacketBus bus;
  SignerEngine::Callbacks scb;
  scb.send = bus.sender(1);
  SignerEngine signer{config, 1, sig, ack.anchor(), ack.length(),
                      std::move(scb)};
  VerifierEngine::Callbacks vcb;
  vcb.send = bus.sender(0);
  std::size_t delivered = 0;
  vcb.on_message = [&](std::uint32_t, std::uint16_t, ByteView) { ++delivered; };
  VerifierEngine verifier{config, 1,     ack,          sig.anchor(),
                          sig.length(),  std::move(vcb), rng};

  // Capture the S2s and mutate msg_index beyond the batch.
  bus.attach(1, [&](ByteView frame) {
    const auto packet = wire::decode(frame);
    if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
      verifier.on_s1(*s1);
    } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
      wire::S2Packet bad = *s2;
      bad.msg_index = 99;
      verifier.on_s2(bad);
    }
  });
  bus.attach(0, [&](ByteView frame) {
    const auto packet = wire::decode(frame);
    if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
      signer.on_a1(*a1, 0);
    }
  });
  for (int i = 0; i < 4; ++i) signer.submit(msg("m"), 0);
  bus.pump();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(verifier.stats().invalid_packets, 4u);
}

TEST(EdgeCaseTest, HandshakeLossRecoveredByTicks) {
  // Both the HS1 and the HS2 are dropped a few times; Host::on_tick
  // retransmission converges without manual restarts.
  Config config;
  config.rto_us = 1000;
  config.rto_max_us = config.rto_us;  // fixed timer: test advances in rto steps

  HmacDrbg rng_a{1}, rng_b{2};
  PacketBus bus;
  std::optional<Host> a, b;
  Host::Callbacks a_cb;
  a_cb.send = bus.sender(1);
  a.emplace(config, 7, true, rng_a, std::move(a_cb));
  Host::Callbacks b_cb;
  b_cb.send = bus.sender(0);
  b.emplace(config, 7, false, rng_b, std::move(b_cb));
  std::uint64_t now = 0;
  bus.attach(0, [&](ByteView f) { a->on_frame(f, now); });
  bus.attach(1, [&](ByteView f) { b->on_frame(f, now); });

  int drops = 0;
  bus.set_hook([&](Bytes& frame) {
    const auto type = wire::peek_type(frame);
    if ((type == wire::PacketType::kHs1 || type == wire::PacketType::kHs2) &&
        drops < 5) {
      ++drops;
      return false;
    }
    return true;
  });

  a->start();
  bus.pump();
  EXPECT_FALSE(a->established());
  for (int tick = 1; tick <= 20 && !a->established(); ++tick) {
    now = static_cast<std::uint64_t>(tick) * 2000;
    a->on_tick(now);
    b->on_tick(now);
    bus.pump();
  }
  EXPECT_TRUE(a->established());
  EXPECT_TRUE(b->established());
}

TEST(EdgeCaseTest, DuplicateHs1GetsIdempotentHs2) {
  Config config;
  HmacDrbg rng_a{1}, rng_b{2};
  PacketBus bus;
  std::optional<Host> a, b;
  Host::Callbacks a_cb;
  a_cb.send = bus.sender(1);
  a.emplace(config, 7, true, rng_a, std::move(a_cb));
  Host::Callbacks b_cb;
  b_cb.send = bus.sender(0);
  b.emplace(config, 7, false, rng_b, std::move(b_cb));
  bus.attach(0, [&](ByteView f) { a->on_frame(f, 0); });
  bus.attach(1, [&](ByteView f) { b->on_frame(f, 0); });

  Bytes hs1_frame, first_hs2, second_hs2;
  bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kHs1) hs1_frame = frame;
    if (wire::peek_type(frame) == wire::PacketType::kHs2) {
      (first_hs2.empty() ? first_hs2 : second_hs2) = frame;
    }
    return true;
  });
  a->start();
  bus.pump();
  ASSERT_TRUE(b->established());

  // Replay the HS1: B must answer with the *same* HS2 (no chain rotation).
  b->on_frame(hs1_frame, 0);
  bus.pump();
  ASSERT_FALSE(second_hs2.empty());
  EXPECT_EQ(first_hs2, second_hs2);
}

TEST(EdgeCaseTest, RelaySurvivesRandomGarbageFrames) {
  Config config;
  RelayEngine::Callbacks cb;
  cb.forward = [](Direction, ByteView) {};
  RelayEngine relay{config, RelayEngine::Options{}, std::move(cb)};
  HmacDrbg rng{0xf422u};
  for (int i = 0; i < 3000; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(200));
    (void)relay.on_frame(i % 2 == 0 ? Direction::kForward
                                    : Direction::kReverse,
                         junk);
  }
  // Every frame accounted for, none forwarded blindly.
  const auto& stats = relay.stats();
  EXPECT_EQ(stats.forwarded, 0u);
  EXPECT_EQ(stats.dropped_invalid + stats.dropped_unsolicited, 3000u);
}

TEST(EdgeCaseTest, A2ReplayDoesNotDoubleSettle) {
  Config config;
  config.reliable = true;
  HmacDrbg rng{5};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);

  PacketBus bus;
  std::vector<Bytes> a2_frames;
  SignerEngine::Callbacks scb;
  scb.send = bus.sender(1);
  std::size_t settles = 0;
  scb.on_delivery = [&](std::uint64_t, DeliveryStatus) { ++settles; };
  SignerEngine signer{config, 1, sig, ack.anchor(), ack.length(),
                      std::move(scb)};
  VerifierEngine::Callbacks vcb;
  vcb.send = bus.sender(0);
  VerifierEngine verifier{config, 1,     ack,           sig.anchor(),
                          sig.length(),  std::move(vcb), rng};
  bus.attach(1, [&](ByteView frame) {
    const auto packet = wire::decode(frame);
    if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
      verifier.on_s1(*s1);
    } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
      verifier.on_s2(*s2);
    }
  });
  bus.attach(0, [&](ByteView frame) {
    const auto packet = wire::decode(frame);
    if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
      signer.on_a1(*a1, 0);
    } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
      a2_frames.push_back(Bytes(frame.begin(), frame.end()));
      signer.on_a2(*a2, 0);
    }
  });

  signer.submit(msg("once"), 0);
  bus.pump();
  ASSERT_EQ(settles, 1u);
  ASSERT_EQ(a2_frames.size(), 1u);

  // Replay the A2: the round is gone; nothing must change or crash.
  const auto replay = wire::decode(a2_frames[0]);
  signer.on_a2(std::get<wire::A2Packet>(*replay), 0);
  EXPECT_EQ(settles, 1u);
}

}  // namespace
}  // namespace alpha::core
