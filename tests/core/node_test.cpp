// AlphaNode runtime: association demux, on-demand accept, timer wheel.
#include "core/node.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>

#include "core/timer_wheel.hpp"
#include "net/network.hpp"
#include "wire/packets.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;

// ------------------------------------------------------------- timer wheel

TEST(TimerWheelTest, FiresOnceDeadlinePasses) {
  TimerWheel wheel{10, 8};
  std::vector<std::uint32_t> due;
  wheel.arm(1, 95);
  EXPECT_EQ(wheel.armed(), 1u);

  wheel.advance(89, due);
  EXPECT_TRUE(due.empty());  // 95 not reached yet
  wheel.advance(100, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(wheel.empty());

  // Does not fire twice.
  due.clear();
  wheel.advance(1000, due);
  EXPECT_TRUE(due.empty());
}

TEST(TimerWheelTest, PastDeadlineStillFiresOnNextTick) {
  TimerWheel wheel{10, 8};
  std::vector<std::uint32_t> due;
  wheel.advance(200, due);  // cursor well past zero
  wheel.arm(7, 50);         // deadline already in the past
  due.clear();
  wheel.advance(220, due);  // next tick after the cursor
  EXPECT_EQ(due, (std::vector<std::uint32_t>{7}));
}

TEST(TimerWheelTest, EntryBeyondOneRevolutionSurvivesEarlySlotVisits) {
  TimerWheel wheel{10, 4};  // horizon: 40 us per revolution
  std::vector<std::uint32_t> due;
  wheel.arm(3, 450);  // many laps out
  for (std::uint64_t t = 10; t < 450; t += 10) {
    wheel.advance(t, due);
    EXPECT_TRUE(due.empty()) << "fired early at t=" << t;
  }
  wheel.advance(450, due);
  EXPECT_EQ(due, (std::vector<std::uint32_t>{3}));
}

TEST(TimerWheelTest, FarJumpScansEachSlotOnceAndFiresEverything) {
  TimerWheel wheel{10, 4};
  std::vector<std::uint32_t> due;
  wheel.arm(1, 15);
  wheel.arm(2, 35);
  wheel.arm(3, 390);
  wheel.advance(1'000'000, due);  // thousands of ticks in one call
  ASSERT_EQ(due.size(), 3u);
  EXPECT_TRUE(wheel.empty());
}

// ------------------------------------------------- demux over the simulator

Config reliable_config() {
  Config config;
  config.reliable = true;
  config.rto_us = 200'000;
  return config;
}

TEST(AlphaNodeSimTest, TwoAssociationsInterleaveOverOneTransport) {
  net::Simulator sim;
  net::Network network{sim, 3};
  network.add_node(0);
  network.add_node(1);
  net::LinkConfig link;
  link.latency = net::kMillisecond;
  network.add_link(0, 1, link);

  const Config config = reliable_config();
  AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 7;
  std::map<std::uint32_t, std::size_t> acked;
  AlphaNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t assoc, std::uint64_t,
                          DeliveryStatus status) {
    if (status == DeliveryStatus::kAcked) ++acked[assoc];
  };
  AlphaNode node_a{std::make_unique<net::SimTransport>(network, 0), a_opts,
                   a_cbs};

  AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 8;
  b_opts.accept_inbound = true;
  std::map<std::uint32_t, std::vector<Bytes>> at_b;
  AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t assoc, crypto::ByteView payload) {
    at_b[assoc].emplace_back(payload.begin(), payload.end());
  };
  AlphaNode node_b{std::make_unique<net::SimTransport>(network, 1), b_opts,
                   b_cbs};

  node_a.add_initiator(1, /*peer=*/1, config);
  node_a.add_initiator(2, /*peer=*/1, config);
  node_a.start(1);
  node_a.start(2);
  sim.run_until(5 * net::kSecond);
  ASSERT_EQ(node_a.established_count(), 2u);
  ASSERT_EQ(node_b.established_count(), 2u);
  EXPECT_EQ(node_b.snapshot().accepted_handshakes, 2u);

  // Interleave submissions across the two associations.
  node_a.submit(1, Bytes(100, 0x11));
  node_a.submit(2, Bytes(200, 0x22));
  node_a.submit(1, Bytes(100, 0x11));
  node_a.submit(2, Bytes(200, 0x22));
  sim.run_until(15 * net::kSecond);

  // Each association delivered exactly its own payloads.
  ASSERT_EQ(at_b[1].size(), 2u);
  ASSERT_EQ(at_b[2].size(), 2u);
  for (const auto& m : at_b[1]) EXPECT_EQ(m, Bytes(100, 0x11));
  for (const auto& m : at_b[2]) EXPECT_EQ(m, Bytes(200, 0x22));
  EXPECT_EQ(acked[1], 2u);
  EXPECT_EQ(acked[2], 2u);

  const auto snap = node_b.snapshot(/*per_assoc=*/true);
  EXPECT_EQ(snap.associations, 2u);
  EXPECT_EQ(snap.messages_delivered, 4u);
  EXPECT_EQ(snap.demux_misses, 0u);
  EXPECT_EQ(snap.malformed_frames, 0u);
  ASSERT_EQ(snap.assocs.size(), 2u);
  for (const auto& a : snap.assocs) {
    EXPECT_GT(a.frames_in, 0u);
    EXPECT_GT(a.frames_out, 0u);
    EXPECT_TRUE(a.established);
    EXPECT_FALSE(a.initiator);
  }
}

TEST(AlphaNodeSimTest, MalformedAndUnknownFramesAreCounted) {
  net::Simulator sim;
  net::Network network{sim, 3};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  AlphaNode::Options opts;  // accept_inbound off, no associations
  AlphaNode node{std::make_unique<net::SimTransport>(network, 1), opts};

  net::SimTransport injector{network, 0};
  injector.send(1, Bytes{0xff});  // garbage: assoc-id peek fails

  wire::A1Packet stray;  // valid frame for an association nobody serves
  stray.hdr = {9, 1};
  stray.ack_element = crypto::Digest{crypto::ByteView{Bytes(20, 0x33)}};
  injector.send(1, stray.encode());

  wire::HandshakePacket hs;  // HS1 is not accepted either with accept off
  hs.hdr = {10, 0};
  hs.sig_anchor = crypto::Digest{crypto::ByteView{Bytes(20, 0x44)}};
  hs.ack_anchor = crypto::Digest{crypto::ByteView{Bytes(20, 0x55)}};
  hs.chain_length = 8;
  injector.send(1, hs.encode());

  sim.run_until(net::kSecond);
  const auto snap = node.snapshot();
  EXPECT_EQ(snap.frames_in, 3u);
  EXPECT_EQ(snap.malformed_frames, 1u);
  EXPECT_EQ(snap.demux_misses, 2u);
  EXPECT_EQ(snap.associations, 0u);
  EXPECT_EQ(snap.accepted_handshakes, 0u);
}

TEST(AlphaNodeSimTest, TimerWheelGoesIdleAfterQuiescence) {
  net::Simulator sim;
  net::Network network{sim, 3};
  network.add_node(0);
  network.add_node(1);
  network.add_link(0, 1);

  const Config config = reliable_config();
  AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 21;
  AlphaNode node_a{std::make_unique<net::SimTransport>(network, 0), a_opts};
  AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 22;
  b_opts.accept_inbound = true;
  AlphaNode node_b{std::make_unique<net::SimTransport>(network, 1), b_opts};

  node_a.add_initiator(1, 1, config);
  node_a.start(1);
  sim.run_until(5 * net::kSecond);
  ASSERT_EQ(node_a.established_count(), 1u);
  node_a.submit(1, Bytes(64, 0x42));
  sim.run_until(30 * net::kSecond);  // message + ack fully drain

  // Idle associations disarm: no timer fires while nothing is pending.
  const std::uint64_t fires_a = node_a.snapshot().timer_fires;
  const std::uint64_t fires_b = node_b.snapshot().timer_fires;
  sim.run_until(300 * net::kSecond);
  EXPECT_EQ(node_a.snapshot().timer_fires, fires_a);
  EXPECT_EQ(node_b.snapshot().timer_fires, fires_b);

  // And activity re-arms: another message still goes through.
  node_a.submit(1, Bytes(64, 0x43));
  sim.run_until(330 * net::kSecond);
  EXPECT_EQ(node_b.snapshot().messages_delivered, 2u);
}

// ----------------------------------------------- demux over real UDP sockets

TEST(AlphaNodeUdpTest, TwoAssociationsCrossFedOverRealSockets) {
  using Clock = std::chrono::steady_clock;
  const Config config = reliable_config();

  AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 31;
  std::map<std::uint32_t, std::size_t> acked;
  AlphaNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t assoc, std::uint64_t,
                          DeliveryStatus status) {
    if (status == DeliveryStatus::kAcked) ++acked[assoc];
  };
  AlphaNode node_a{std::make_unique<net::UdpTransport>(), a_opts, a_cbs};

  AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 32;
  b_opts.accept_inbound = true;
  std::map<std::uint32_t, std::vector<Bytes>> at_b;
  AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t assoc, crypto::ByteView payload) {
    at_b[assoc].emplace_back(payload.begin(), payload.end());
  };
  AlphaNode node_b{std::make_unique<net::UdpTransport>(), b_opts, b_cbs};

  const auto b_port =
      static_cast<net::UdpTransport&>(node_b.transport()).port();
  node_a.add_initiator(1, b_port, config);
  node_a.add_initiator(2, b_port, config);
  node_a.start(1);
  node_a.start(2);
  // Both handshakes and both payload exchanges share the two sockets; the
  // runtimes demux the interleaved frames by association id.
  node_a.submit(1, Bytes(100, 0xa1));
  node_a.submit(2, Bytes(200, 0xa2));

  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while ((acked[1] < 1 || acked[2] < 1) && Clock::now() < deadline) {
    node_a.poll(2);
    node_b.poll(2);
  }

  ASSERT_EQ(node_a.established_count(), 2u);
  ASSERT_EQ(node_b.established_count(), 2u);
  ASSERT_EQ(at_b[1].size(), 1u);
  ASSERT_EQ(at_b[2].size(), 1u);
  EXPECT_EQ(at_b[1][0], Bytes(100, 0xa1));
  EXPECT_EQ(at_b[2][0], Bytes(200, 0xa2));
  EXPECT_EQ(acked[1], 1u);
  EXPECT_EQ(acked[2], 1u);
  const auto snap = node_b.snapshot();
  EXPECT_EQ(snap.accepted_handshakes, 2u);
  EXPECT_EQ(snap.demux_misses, 0u);
}

}  // namespace
}  // namespace alpha::core
