// Regression tests for association-lifetime accounting across rekeys.
//
// Rekeying retires the signer/verifier engines, which used to make stats
// misbehave in two ways: the per-engine counters vanished from snapshots
// (the fresh engines restart at zero), and the backlog re-submitted into
// the new signer was counted as brand-new messages (double-counting
// messages_submitted). A third bug hid in the failure path: an initiator
// whose rekey handshake exhausted its retransmit budget declared the
// association failed and lost every queued message, even though the peer
// had proven itself moments earlier -- the outage belonged to the channel,
// not the association. Established hosts now ride out the outage with a
// slow HS1 heartbeat instead. These tests pin the fixed behavior.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct HostPair {
  explicit HostPair(Config config) : rng_a(11), rng_b(22) {
    Host::Callbacks a_cb;
    a_cb.send = bus.sender(1);
    a_cb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      a_deliveries.emplace_back(cookie, status);
    };
    a.emplace(config, /*assoc_id=*/9, /*initiator=*/true, rng_a,
              std::move(a_cb));

    Host::Callbacks b_cb;
    b_cb.send = bus.sender(0);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(config, /*assoc_id=*/9, /*initiator=*/false, rng_b,
              std::move(b_cb));

    bus.attach(0, [this](ByteView frame) { a->on_frame(frame, now); });
    bus.attach(1, [this](ByteView frame) { b->on_frame(frame, now); });
  }

  /// Establishes and delivers `count` messages, pumping until quiescent.
  void establish() {
    a->start();
    bus.pump();
    ASSERT_TRUE(a->established());
    ASSERT_TRUE(b->established());
  }

  void send_messages(int count) {
    for (int i = 0; i < count; ++i) {
      a->submit(msg("m" + std::to_string(i)), now);
      bus.pump();
    }
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<Host> a, b;
  std::uint64_t now = 0;
  std::vector<Bytes> at_b;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> a_deliveries;
};

TEST(RekeyAccounting, LifetimeStatsSurviveChainRotation) {
  HostPair pair{Config{}};
  pair.establish();
  pair.send_messages(5);
  ASSERT_EQ(pair.at_b.size(), 5u);
  EXPECT_EQ(pair.a->signer_stats_total().messages_submitted, 5u);
  EXPECT_EQ(pair.b->verifier_stats_total().messages_delivered, 5u);

  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  pair.bus.pump();
  ASSERT_FALSE(pair.a->rekey_pending());

  // The fresh engines start at zero; the totals must not.
  EXPECT_EQ(pair.a->signer()->stats().messages_submitted, 0u);
  EXPECT_EQ(pair.a->signer_stats_total().messages_submitted, 5u);
  EXPECT_EQ(pair.b->verifier_stats_total().messages_delivered, 5u);

  pair.send_messages(3);
  EXPECT_EQ(pair.at_b.size(), 8u);
  EXPECT_EQ(pair.a->signer_stats_total().messages_submitted, 8u);
  EXPECT_EQ(pair.b->verifier_stats_total().messages_delivered, 8u);
}

TEST(RekeyAccounting, BacklogResubmissionIsNotDoubleCounted) {
  HostPair pair{Config{}};
  pair.establish();
  pair.send_messages(4);

  // Queue messages while the rekey handshake is still in flight: they land
  // in the old signer's backlog, get drained, and are re-submitted into the
  // fresh engine. That re-submission must not count a second time.
  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  pair.a->submit(msg("mid-rekey-1"), pair.now);
  pair.a->submit(msg("mid-rekey-2"), pair.now);
  pair.bus.pump();
  ASSERT_FALSE(pair.a->rekey_pending());
  pair.now += 1'000'000;
  pair.a->on_tick(pair.now);
  pair.bus.pump();

  EXPECT_EQ(pair.at_b.size(), 6u);
  EXPECT_EQ(pair.a->signer_stats_total().messages_submitted, 6u);
  EXPECT_EQ(pair.b->verifier_stats_total().messages_delivered, 6u);
}

TEST(RekeyAccounting, MidRekeyOutageHeartbeatsInsteadOfFailing) {
  Config config;
  config.max_retries = 3;
  HostPair pair{config};
  pair.establish();
  pair.send_messages(2);

  // Cut the link, start a rekey, and burn far past the nominal retransmit
  // budget. An established association proved its peer moments ago, so the
  // outage belongs to the channel: instead of failing (and losing every
  // queued message to an optimistic rekey fired just before a partition),
  // the initiator keeps a slow HS1 heartbeat at the backoff cap.
  pair.bus.set_hook([](Bytes&) { return false; });
  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  for (int i = 0; i < 20; ++i) {
    pair.now += 2'000'000;
    pair.a->on_tick(pair.now);
    pair.bus.pump();
  }
  EXPECT_FALSE(pair.a->failed());
  EXPECT_TRUE(pair.a->rekey_pending());
  const std::uint64_t retransmits_in_outage = pair.a->hs_retransmits();
  EXPECT_GT(retransmits_in_outage, 3u);  // heartbeat outlived the budget

  // Heal the link: the next heartbeat completes the rekey with no revival
  // ceremony, and lifetime stats did not double-count anything across the
  // outage (only the establishment handshake retains give-up semantics).
  pair.bus.set_hook(nullptr);
  pair.now += 6'000'000;
  pair.a->on_tick(pair.now);
  pair.bus.pump();
  EXPECT_FALSE(pair.a->rekey_pending());
  EXPECT_TRUE(pair.a->established());
  EXPECT_GE(pair.a->hs_retransmits(), retransmits_in_outage);

  pair.send_messages(3);
  EXPECT_EQ(pair.at_b.size(), 5u);
  EXPECT_EQ(pair.a->signer_stats_total().messages_submitted, 5u);
  EXPECT_EQ(pair.b->verifier_stats_total().messages_delivered, 5u);
}

TEST(RekeyAccounting, DuplicateAndReplayedHandshakesSplit) {
  HostPair pair{Config{}};

  // Capture the bootstrap HS1 in flight.
  Bytes captured_hs1;
  pair.bus.set_hook([&](Bytes& frame) {
    if (captured_hs1.empty()) captured_hs1 = frame;
    return true;
  });
  pair.establish();
  pair.bus.set_hook(nullptr);
  ASSERT_FALSE(captured_hs1.empty());
  EXPECT_EQ(pair.b->duplicate_handshakes(), 0u);
  EXPECT_EQ(pair.b->replayed_handshakes(), 0u);

  // Same-seq duplicate (a retransmitted HS1 whose HS2 answer was lost):
  // benign, answered from cache, counted as a duplicate -- not a replay.
  pair.b->on_frame(captured_hs1, pair.now);
  pair.bus.pump();
  EXPECT_EQ(pair.b->duplicate_handshakes(), 1u);
  EXPECT_EQ(pair.b->replayed_handshakes(), 0u);

  // After a rekey the handshake counter has moved on; the same frame is now
  // strictly behind and must count as a replay, not a duplicate.
  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  pair.bus.pump();
  ASSERT_FALSE(pair.a->rekey_pending());
  pair.b->on_frame(captured_hs1, pair.now);
  pair.bus.pump();
  EXPECT_EQ(pair.b->duplicate_handshakes(), 1u);
  EXPECT_EQ(pair.b->replayed_handshakes(), 1u);
  // The stale handshake must not have disturbed the association.
  pair.send_messages(2);
  EXPECT_EQ(pair.at_b.size(), 2u);
}

}  // namespace
}  // namespace alpha::core
