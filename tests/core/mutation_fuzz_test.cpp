// Mutation fuzz: no single-bit-flipped (or randomly mutated) protocol frame
// may ever be accepted by the verifier or forwarded by the relay as valid.
// The only frames that may have an effect are the untouched originals.
#include <gtest/gtest.h>

#include "core/relay.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;

// Captures one complete reliable round's frames (S1, A1, S2, A2).
struct CapturedRound {
  Bytes s1, a1, s2, a2;
  hashchain::HashChain sig_chain;
  hashchain::HashChain ack_chain;
  Config config;

  static CapturedRound make() {
    Config config;
    config.reliable = true;
    HmacDrbg rng{17};
    auto sig = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);
    auto ack = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);

    CapturedRound cap{Bytes{}, Bytes{}, Bytes{}, Bytes{}, sig, ack, config};

    std::vector<Bytes> to_v, to_s;
    SignerEngine::Callbacks scb;
    scb.send = [&](Bytes f) { to_v.push_back(std::move(f)); };
    SignerEngine signer{config, 1, sig, ack.anchor(), ack.length(),
                        std::move(scb)};
    VerifierEngine::Callbacks vcb;
    vcb.send = [&](Bytes f) { to_s.push_back(std::move(f)); };
    VerifierEngine verifier{config, 1,    ack,           sig.anchor(),
                            sig.length(), std::move(vcb), rng};

    const auto payload = crypto::as_bytes("fuzz me");
    signer.submit(Bytes(payload.begin(), payload.end()), 0);
    cap.s1 = to_v.at(0);
    verifier.on_s1(std::get<wire::S1Packet>(*wire::decode(cap.s1)));
    cap.a1 = to_s.at(0);
    signer.on_a1(std::get<wire::A1Packet>(*wire::decode(cap.a1)), 0);
    cap.s2 = to_v.at(1);
    verifier.on_s2(std::get<wire::S2Packet>(*wire::decode(cap.s2)));
    cap.a2 = to_s.at(1);
    return cap;
  }
};

// Fresh verifier initialized to the same anchors (accepts the original
// round exactly once).
struct FreshVerifier {
  explicit FreshVerifier(const CapturedRound& cap)
      : rng(99),
        verifier(cap.config, 1, cap.ack_chain, cap.sig_chain.anchor(),
                 cap.sig_chain.length(),
                 VerifierEngine::Callbacks{
                     [](Bytes) {},
                     [this](std::uint32_t, std::uint16_t, ByteView) {
                       ++delivered;
                     }},
                 rng) {}

  HmacDrbg rng;
  std::size_t delivered = 0;
  VerifierEngine verifier;
};

void feed(VerifierEngine& v, ByteView frame) {
  const auto packet = wire::decode(frame);
  if (!packet.has_value()) return;
  if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
    v.on_s1(*s1);
  } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
    v.on_s2(*s2);
  }
}

TEST(MutationFuzzTest, NoSingleBitFlipDeliversAMessage) {
  const CapturedRound cap = CapturedRound::make();

  for (const Bytes* frame : {&cap.s1, &cap.s2}) {
    for (std::size_t byte = 0; byte < frame->size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        FreshVerifier fv{cap};
        // Mutated S1 first (where applicable), then genuine S1, then the
        // mutated S2 -- covering both packet positions.
        if (frame == &cap.s1) {
          Bytes mutated = cap.s1;
          mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
          feed(fv.verifier, mutated);
          feed(fv.verifier, cap.s2);
        } else {
          feed(fv.verifier, cap.s1);
          Bytes mutated = cap.s2;
          mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
          feed(fv.verifier, mutated);
        }
        ASSERT_EQ(fv.delivered, 0u)
            << "bit flip accepted: frame="
            << (frame == &cap.s1 ? "S1" : "S2") << " byte=" << byte
            << " bit=" << bit;
      }
    }
  }

  // Control: the untouched round delivers exactly once.
  FreshVerifier fv{cap};
  feed(fv.verifier, cap.s1);
  feed(fv.verifier, cap.s2);
  EXPECT_EQ(fv.delivered, 1u);
}

TEST(MutationFuzzTest, RelayForwardsNoMutatedPayloads) {
  const CapturedRound cap = CapturedRound::make();

  HmacDrbg rng{7};
  for (int iter = 0; iter < 500; ++iter) {
    RelayEngine::Callbacks cb;
    std::size_t extracted = 0;
    cb.forward = [](Direction, ByteView) {};
    cb.on_extracted = [&](std::uint32_t, std::uint32_t, std::uint16_t,
                          ByteView) { ++extracted; };
    RelayEngine relay{cap.config, RelayEngine::Options{}, std::move(cb)};

    // Teach the relay the genuine anchors.
    wire::HandshakePacket hs;
    hs.hdr = {1, 1};
    hs.algo = cap.config.algo;
    hs.chain_length = 64;
    hs.sig_anchor = cap.sig_chain.anchor();
    hs.sig_anchor_index = 64;
    hs.ack_anchor = cap.ack_chain.anchor();
    hs.ack_anchor_index = 64;
    relay.on_frame(Direction::kForward, hs.encode());
    wire::HandshakePacket hs2 = hs;
    hs2.is_response = true;
    relay.on_frame(Direction::kReverse, hs2.encode());

    relay.on_frame(Direction::kForward, cap.s1);
    relay.on_frame(Direction::kReverse, cap.a1);

    // Random multi-byte mutation of the S2.
    Bytes mutated = cap.s2;
    const std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    if (mutated == cap.s2) continue;  // mutation cancelled itself out
    relay.on_frame(Direction::kForward, mutated);
    ASSERT_EQ(extracted, 0u) << "iter " << iter;
  }
}

}  // namespace
}  // namespace alpha::core
