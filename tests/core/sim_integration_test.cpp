// End-to-end integration over the discrete-event network: multi-hop paths,
// lossy links, attacks, and the paper's latency properties.
#include <gtest/gtest.h>

#include "core/attackers.hpp"
#include "core/path.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct Scenario {
  explicit Scenario(std::size_t hops, net::LinkConfig link = {},
                    Config config = {}, std::uint64_t net_seed = 1)
      : sim(), network(sim, net_seed) {
    std::vector<net::NodeId> nodes;
    for (std::size_t i = 0; i <= hops; ++i) {
      network.add_node(static_cast<net::NodeId>(i));
      nodes.push_back(static_cast<net::NodeId>(i));
    }
    for (std::size_t i = 0; i < hops; ++i) {
      network.add_link(nodes[i], nodes[i + 1], link);
    }
    path.emplace(network, nodes, config, /*assoc_id=*/1, /*seed=*/42);
  }

  net::Simulator sim;
  net::Network network;
  std::optional<ProtectedPath> path;
};

TEST(SimIntegrationTest, FourHopPathDelivers) {
  // The paper's Fig. 1 topology: s, r1, r2, r3, v.
  Scenario sc{4};
  sc.path->start();
  sc.sim.run_until(2 * kSecond);
  ASSERT_TRUE(sc.path->initiator().established());

  sc.path->initiator().submit(msg("protected path payload"), sc.sim.now());
  sc.sim.run_until(4 * kSecond);

  ASSERT_EQ(sc.path->delivered_to_responder().size(), 1u);
  EXPECT_EQ(sc.path->delivered_to_responder()[0], msg("protected path payload"));
  for (std::size_t i = 0; i < sc.path->relay_count(); ++i) {
    EXPECT_EQ(sc.path->relay(i).stats().dropped_invalid, 0u);
    EXPECT_EQ(sc.path->relay(i).stats().messages_extracted, 1u);
  }
}

TEST(SimIntegrationTest, ReliableDeliveryOverLossyPath) {
  net::LinkConfig lossy;
  lossy.latency = 2 * kMillisecond;
  lossy.jitter = 2 * kMillisecond;
  lossy.loss_rate = 0.15;

  Config config;
  config.reliable = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 30;

  Scenario sc{3, lossy, config, /*net_seed=*/99};
  sc.path->start(/*tick_horizon_us=*/600 * kSecond);
  sc.sim.run_until(10 * kSecond);
  // Handshake is not retransmitted by design; if lost, re-start it.
  for (int attempt = 0; attempt < 20 && !sc.path->initiator().established();
       ++attempt) {
    sc.path->initiator().start();
    sc.sim.run_until(sc.sim.now() + 5 * kSecond);
  }
  ASSERT_TRUE(sc.path->initiator().established());

  const int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    sc.path->initiator().submit(msg("reliable " + std::to_string(i)),
                                sc.sim.now());
  }
  sc.sim.run_until(sc.sim.now() + 400 * kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : sc.path->initiator_deliveries()) {
    if (status == DeliveryStatus::kAcked) ++acked;
  }
  EXPECT_EQ(acked, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(sc.path->delivered_to_responder().size(),
            static_cast<std::size_t>(kMessages));
  EXPECT_GT(sc.path->initiator().signer()->stats().s1_retransmits +
                sc.path->initiator().signer()->stats().s2_retransmits,
            0u);
}

TEST(SimIntegrationTest, MinimumLatencyIs1Point5Rtt) {
  // §3.5: data arrives at the verifier no earlier than 1.5 RTT after
  // submission (S1 -> A1 -> S2 = 3 one-way trips).
  net::LinkConfig link;
  link.latency = 10 * kMillisecond;  // per hop
  link.jitter = 0;
  link.bandwidth_bps = 1'000'000'000;  // negligible serialization

  Scenario sc{2, link};
  sc.path->start();
  sc.sim.run_until(kSecond);
  ASSERT_TRUE(sc.path->initiator().established());

  const net::SimTime submit_time = sc.sim.now();
  sc.path->initiator().submit(msg("timed"), submit_time);

  // One-way = 2 hops * 10 ms = 20 ms; 3 one-way trips = 60 ms = 1.5 RTT.
  sc.sim.run_until(submit_time + 59 * kMillisecond);
  EXPECT_TRUE(sc.path->delivered_to_responder().empty());
  sc.sim.run_until(submit_time + 65 * kMillisecond);
  EXPECT_EQ(sc.path->delivered_to_responder().size(), 1u);
}

TEST(SimIntegrationTest, ReliableAckWithin2Rtt) {
  // §3.2.2: pre-acks deliver the confirmation after 2 RTT, not 3.
  net::LinkConfig link;
  link.latency = 10 * kMillisecond;
  link.jitter = 0;
  link.bandwidth_bps = 1'000'000'000;

  Config config;
  config.reliable = true;

  Scenario sc{2, link, config};
  sc.path->start();
  sc.sim.run_until(kSecond);
  ASSERT_TRUE(sc.path->initiator().established());

  const net::SimTime submit_time = sc.sim.now();
  sc.path->initiator().submit(msg("timed ack"), submit_time);

  // 4 one-way trips (S1, A1, S2, A2) = 80 ms = 2 RTT.
  sc.sim.run_until(submit_time + 79 * kMillisecond);
  EXPECT_TRUE(sc.path->initiator_deliveries().empty());
  sc.sim.run_until(submit_time + 85 * kMillisecond);
  ASSERT_EQ(sc.path->initiator_deliveries().size(), 1u);
  EXPECT_EQ(sc.path->initiator_deliveries()[0].second, DeliveryStatus::kAcked);
}

TEST(SimIntegrationTest, FloodStoppedAtFirstRelay) {
  // §3.5: unsolicited data cannot propagate beyond its entry relay.
  Scenario sc{3};
  sc.path->start();
  sc.sim.run_until(kSecond);
  ASSERT_TRUE(sc.path->initiator().established());

  // Attacker node adjacent to relay 1 (node id 1).
  sc.network.add_node(100);
  sc.network.add_link(100, 1);
  launch_s2_flood(sc.network, /*attacker=*/100, /*next_hop=*/1,
                  /*assoc_id=*/1, /*count=*/50, /*payload_size=*/800,
                  /*interval=*/10 * kMillisecond, /*seed=*/7);
  sc.sim.run_until(sc.sim.now() + 5 * kSecond);

  // All flood frames died at the first relay.
  EXPECT_EQ(sc.path->relay(0).stats().dropped_unsolicited, 50u);
  // Nothing reached the responder's application or the later links.
  EXPECT_TRUE(sc.path->delivered_to_responder().empty());
  EXPECT_EQ(sc.network.link_stats(2, 3).frames_sent,
            sc.network.link_stats(3, 2).frames_sent);
}

TEST(SimIntegrationTest, TamperingRelayDetectedDownstream) {
  // Insider attack: relay r1 (node 1) tampers with payloads. The next honest
  // relay drops the modified S2 (end-to-end integrity checkable on-path).
  net::Simulator sim;
  net::Network network{sim, 1};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1);

  Config config;
  ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 42};

  // Hijack node 1's handler: tamper S2 frames, forward everything verbatim
  // otherwise (a malicious relay that does not even run ALPHA checks).
  network.set_handler(1, [&](net::NodeId from, crypto::ByteView frame) {
    const net::NodeId next = from == 0 ? 2 : 0;
    network.send(1, next, tamper_s2_payload(frame));
  });

  path.start();
  sim.run_until(kSecond);
  ASSERT_TRUE(path.initiator().established());

  path.initiator().submit(msg("do not touch"), sim.now());
  sim.run_until(2 * kSecond);

  EXPECT_TRUE(path.delivered_to_responder().empty());
  // The honest relay at node 2 (relay index 1) caught the modification.
  EXPECT_GT(path.relay(1).stats().dropped_invalid, 0u);
}

TEST(SimIntegrationTest, MerkleModeBulkTransferOverJitteryPath) {
  net::LinkConfig link;
  link.latency = 5 * kMillisecond;
  link.jitter = 10 * kMillisecond;  // heavy reordering

  Config config;
  config.mode = wire::Mode::kMerkle;
  config.batch_size = 16;

  Scenario sc{3, link, config};
  sc.path->start();
  sc.sim.run_until(2 * kSecond);
  ASSERT_TRUE(sc.path->initiator().established());

  for (int i = 0; i < 64; ++i) {
    sc.path->initiator().submit(Bytes(600, static_cast<std::uint8_t>(i)),
                                sc.sim.now());
  }
  sc.sim.run_until(sc.sim.now() + 60 * kSecond);

  // Out-of-order S2 delivery is fine: each packet verifies independently.
  EXPECT_EQ(sc.path->delivered_to_responder().size(), 64u);
  for (std::size_t i = 0; i < sc.path->relay_count(); ++i) {
    EXPECT_EQ(sc.path->relay(i).stats().dropped_invalid, 0u);
  }
}

TEST(SimIntegrationTest, DuplexTrafficOnOnePath) {
  Scenario sc{2};
  sc.path->start();
  sc.sim.run_until(kSecond);

  sc.path->initiator().submit(msg("fwd"), sc.sim.now());
  sc.path->responder().submit(msg("rev"), sc.sim.now());
  sc.sim.run_until(2 * kSecond);

  ASSERT_EQ(sc.path->delivered_to_responder().size(), 1u);
  ASSERT_EQ(sc.path->delivered_to_initiator().size(), 1u);
  EXPECT_EQ(sc.path->delivered_to_responder()[0], msg("fwd"));
  EXPECT_EQ(sc.path->delivered_to_initiator()[0], msg("rev"));
}

TEST(SimIntegrationTest, ManyRoundsSustained) {
  Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 5;
  config.chain_length = 512;

  Scenario sc{2, net::LinkConfig{}, config};
  sc.path->start(/*tick_horizon_us=*/300 * kSecond);
  sc.sim.run_until(kSecond);

  for (int i = 0; i < 200; ++i) {
    sc.path->initiator().submit(msg("sustained " + std::to_string(i)),
                                sc.sim.now());
  }
  sc.sim.run_until(sc.sim.now() + 200 * kSecond);
  EXPECT_EQ(sc.path->delivered_to_responder().size(), 200u);
  EXPECT_EQ(sc.path->initiator().signer()->stats().rounds_completed, 40u);
}

TEST(SimIntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    net::LinkConfig lossy;
    lossy.loss_rate = 0.2;
    lossy.jitter = 5 * kMillisecond;
    Config config;
    config.reliable = true;
    config.rto_us = 50 * kMillisecond;
    config.max_retries = 20;
    Scenario sc{2, lossy, config, /*net_seed=*/1234};
    sc.path->start(600 * kSecond);
    sc.sim.run_until(5 * kSecond);
    for (int attempt = 0; attempt < 20 && !sc.path->initiator().established();
         ++attempt) {
      sc.path->initiator().start();
      sc.sim.run_until(sc.sim.now() + 5 * kSecond);
    }
    for (int i = 0; i < 10; ++i) {
      sc.path->initiator().submit(msg("d" + std::to_string(i)), sc.sim.now());
    }
    sc.sim.run_until(sc.sim.now() + 300 * kSecond);
    return std::make_tuple(sc.path->delivered_to_responder().size(),
                           sc.network.total_stats().frames_delivered,
                           sc.sim.now());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace alpha::core
