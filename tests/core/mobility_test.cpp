// Route-change recovery (the MANET/mobility scenario, §3.1.1 / §3.5).
//
// The paper fixes the relay set for the lifetime of a hash chain (bypass
// protection), so a route change strands the association: the new relay has
// never seen a handshake and drops everything as unsolicited. force_rekey()
// is the mobility hook -- a fresh handshake travels the new path, teaches
// the new relay the rotated anchors, and traffic resumes.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct MobileScenario {
  MobileScenario() : rng_a(1), rng_b(2) {
    // Two candidate relays; `via_r2` selects the active route.
    auto make_relay = [this](std::optional<RelayEngine>& relay) {
      RelayEngine::Callbacks cb;
      cb.forward = [this](Direction dir, ByteView frame) {
        bus.sender(dir == Direction::kForward ? 1 : 0)(
            Bytes(frame.begin(), frame.end()));
      };
      relay.emplace(Config{}, RelayEngine::Options{}, std::move(cb));
    };
    make_relay(r1);
    make_relay(r2);

    Host::Callbacks a_cb;
    a_cb.send = bus.sender(10);  // routed below
    a_cb.on_delivery = [this](std::uint64_t, DeliveryStatus status) {
      (status == DeliveryStatus::kSent || status == DeliveryStatus::kAcked
           ? ++ok
           : ++failed);
    };
    a.emplace(Config{}, 5, true, rng_a, std::move(a_cb));

    Host::Callbacks b_cb;
    b_cb.send = bus.sender(11);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(Config{}, 5, false, rng_b, std::move(b_cb));

    bus.attach(0, [this](ByteView f) { a->on_frame(f, now); });
    bus.attach(1, [this](ByteView f) { b->on_frame(f, now); });
    bus.attach(10, [this](ByteView f) {
      (via_r2 ? *r2 : *r1).on_frame(Direction::kForward, f);
    });
    bus.attach(11, [this](ByteView f) {
      (via_r2 ? *r2 : *r1).on_frame(Direction::kReverse, f);
    });
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<RelayEngine> r1, r2;
  std::optional<Host> a, b;
  bool via_r2 = false;
  std::uint64_t now = 0;
  std::vector<Bytes> at_b;
  int ok = 0, failed = 0;
};

TEST(MobilityTest, RouteChangeStrandsTrafficWithoutRekey) {
  MobileScenario sc;
  sc.a->start();
  sc.bus.pump();
  sc.a->submit(msg("via r1"), 0);
  sc.bus.pump();
  ASSERT_EQ(sc.at_b.size(), 1u);

  // The path moves to r2; nobody rekeys.
  sc.via_r2 = true;
  sc.a->submit(msg("via r2, stale chains"), 0);
  sc.bus.pump();

  EXPECT_EQ(sc.at_b.size(), 1u);  // nothing arrives
  EXPECT_GT(sc.r2->stats().dropped_unsolicited, 0u);  // r2 has no context
}

TEST(MobilityTest, ForceRekeyRestoresDeliveryOnNewPath) {
  MobileScenario sc;
  sc.a->start();
  sc.bus.pump();
  sc.a->submit(msg("via r1"), 0);
  sc.bus.pump();
  ASSERT_EQ(sc.at_b.size(), 1u);

  // Route change + explicit rekey: the new HS1 travels through r2.
  sc.via_r2 = true;
  ASSERT_TRUE(sc.a->force_rekey(sc.now));
  sc.bus.pump();
  EXPECT_FALSE(sc.a->rekey_pending());  // HS2 returned over the new path

  sc.a->submit(msg("via r2, fresh chains"), 0);
  sc.bus.pump();
  ASSERT_EQ(sc.at_b.size(), 2u);
  EXPECT_EQ(sc.at_b[1], msg("via r2, fresh chains"));
  EXPECT_EQ(sc.r2->stats().messages_extracted, 1u);  // r2 now verifies
  EXPECT_EQ(sc.failed, 0);
}

TEST(MobilityTest, MessagesSubmittedDuringHandoverAreNotLost) {
  MobileScenario sc;
  sc.a->start();
  sc.bus.pump();

  sc.via_r2 = true;
  // Queue traffic while the rekey handshake is still in flight: it must be
  // held back (signer paused) and flushed after re-establishment.
  ASSERT_TRUE(sc.a->force_rekey(sc.now));
  sc.a->submit(msg("queued during handover 1"), sc.now);
  sc.a->submit(msg("queued during handover 2"), sc.now);
  sc.bus.pump();

  ASSERT_EQ(sc.at_b.size(), 2u);
  EXPECT_EQ(sc.at_b[0], msg("queued during handover 1"));
  EXPECT_EQ(sc.at_b[1], msg("queued during handover 2"));
}

TEST(MobilityTest, ForceRekeyRefusedWhenNotApplicable) {
  MobileScenario sc;
  EXPECT_FALSE(sc.a->force_rekey(0));  // not established yet
  EXPECT_FALSE(sc.b->force_rekey(0));  // responder never initiates
  sc.a->start();
  sc.bus.pump();
  EXPECT_TRUE(sc.a->force_rekey(0));
  EXPECT_FALSE(sc.a->force_rekey(0));  // already pending
}

}  // namespace
}  // namespace alpha::core
