// Signer/Verifier engine pair tests across all modes and reliability
// settings, driven directly (no Host, no handshake).
#include <gtest/gtest.h>

#include "core/signer.hpp"
#include "core/verifier.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

constexpr int kSigner = 0;
constexpr int kVerifier = 1;

struct EnginePair {
  explicit EnginePair(Config config, std::uint64_t seed = 7)
      : rng(seed),
        sig_chain(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng,
            config.chain_length)),
        ack_chain(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng,
            config.chain_length)) {
    SignerEngine::Callbacks scb;
    scb.send = bus.sender(kVerifier);
    scb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      deliveries.emplace_back(cookie, status);
    };
    signer.emplace(config, /*assoc_id=*/1, sig_chain, ack_chain.anchor(),
                   ack_chain.length(), std::move(scb));

    VerifierEngine::Callbacks vcb;
    vcb.send = bus.sender(kSigner);
    vcb.on_message = [this](std::uint32_t seq, std::uint16_t index,
                            ByteView payload) {
      received.emplace_back(seq, index, Bytes(payload.begin(), payload.end()));
    };
    verifier.emplace(config, /*assoc_id=*/1, ack_chain, sig_chain.anchor(),
                     sig_chain.length(), std::move(vcb), rng);

    bus.attach(kSigner, [this](ByteView frame) {
      const auto packet = wire::decode(frame);
      ASSERT_TRUE(packet.has_value());
      if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
        signer->on_a1(*a1, now);
      } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
        signer->on_a2(*a2, now);
      }
    });
    bus.attach(kVerifier, [this](ByteView frame) {
      const auto packet = wire::decode(frame);
      ASSERT_TRUE(packet.has_value());
      if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
        verifier->on_s1(*s1);
      } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
        verifier->on_s2(*s2);
      }
    });
  }

  HmacDrbg rng;
  hashchain::HashChain sig_chain;  // copies live in the engines
  hashchain::HashChain ack_chain;
  PacketBus bus;
  std::optional<SignerEngine> signer;
  std::optional<VerifierEngine> verifier;
  std::uint64_t now = 0;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> deliveries;
  std::vector<std::tuple<std::uint32_t, std::uint16_t, Bytes>> received;
};

Bytes msg(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

TEST(EngineBaseTest, SingleMessageUnreliable) {
  Config config;
  EnginePair pair{config};

  const auto cookie = pair.signer->submit(msg("hello relay world"), 0);
  pair.bus.pump();

  ASSERT_EQ(pair.received.size(), 1u);
  EXPECT_EQ(std::get<2>(pair.received[0]), msg("hello relay world"));
  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].first, cookie);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kSent);
  EXPECT_EQ(pair.signer->stats().s1_sent, 1u);
  EXPECT_EQ(pair.signer->stats().s2_sent, 1u);
  EXPECT_EQ(pair.verifier->stats().a1_sent, 1u);
  EXPECT_EQ(pair.verifier->stats().a2_sent, 0u);  // unreliable: no A2
}

TEST(EngineBaseTest, SingleMessageReliable) {
  Config config;
  config.reliable = true;
  EnginePair pair{config};

  const auto cookie = pair.signer->submit(msg("important signaling"), 0);
  pair.bus.pump();

  ASSERT_EQ(pair.received.size(), 1u);
  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].first, cookie);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kAcked);
  EXPECT_EQ(pair.verifier->stats().a2_sent, 1u);
  EXPECT_EQ(pair.signer->stats().acks_received, 1u);
}

TEST(EngineBaseTest, SequentialRoundsConsumeChainDownward) {
  Config config;
  EnginePair pair{config};

  for (int i = 0; i < 5; ++i) {
    pair.signer->submit(msg("m" + std::to_string(i)), 0);
    pair.bus.pump();
  }
  EXPECT_EQ(pair.received.size(), 5u);
  EXPECT_EQ(pair.signer->stats().rounds_completed, 5u);
}

TEST(EngineBaseTest, BacklogDrainsAcrossRounds) {
  Config config;
  EnginePair pair{config};

  for (int i = 0; i < 8; ++i) pair.signer->submit(msg(std::to_string(i)), 0);
  EXPECT_EQ(pair.signer->backlog(), 7u);  // one active round
  pair.bus.pump();
  EXPECT_EQ(pair.received.size(), 8u);
  EXPECT_EQ(pair.signer->backlog(), 0u);
}

class EngineModeTest
    : public ::testing::TestWithParam<std::tuple<wire::Mode, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    AllModes, EngineModeTest,
    ::testing::Combine(::testing::Values(wire::Mode::kBase,
                                         wire::Mode::kCumulative,
                                         wire::Mode::kMerkle),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case wire::Mode::kBase: name = "Base"; break;
        case wire::Mode::kCumulative: name = "AlphaC"; break;
        case wire::Mode::kMerkle: name = "AlphaM"; break;
        case wire::Mode::kCumulativeMerkle: name = "AlphaCM"; break;
      }
      return name + (std::get<1>(info.param) ? "Reliable" : "Unreliable");
    });

TEST_P(EngineModeTest, BatchDeliversAllMessages) {
  const auto [mode, reliable] = GetParam();
  Config config;
  config.mode = mode;
  config.reliable = reliable;
  config.batch_size = 8;
  EnginePair pair{config};

  std::vector<std::uint64_t> cookies;
  for (int i = 0; i < 8; ++i) {
    cookies.push_back(
        pair.signer->submit(msg("batch message " + std::to_string(i)), 0));
  }
  pair.bus.pump();

  ASSERT_EQ(pair.received.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::get<2>(pair.received[static_cast<std::size_t>(i)]),
              msg("batch message " + std::to_string(i)));
  }
  ASSERT_EQ(pair.deliveries.size(), 8u);
  const auto expected =
      reliable ? DeliveryStatus::kAcked : DeliveryStatus::kSent;
  for (const auto& [cookie, status] : pair.deliveries) {
    EXPECT_EQ(status, expected);
  }
  // Batched modes use one round (one S1/A1) for all 8 messages.
  const std::uint64_t expected_rounds = mode == wire::Mode::kBase ? 8u : 1u;
  EXPECT_EQ(pair.signer->stats().rounds_completed, expected_rounds);
  EXPECT_EQ(pair.signer->stats().s1_sent, expected_rounds);
}

TEST_P(EngineModeTest, WorksWithAllHashAlgos) {
  const auto [mode, reliable] = GetParam();
  for (const auto algo : {crypto::HashAlgo::kSha1, crypto::HashAlgo::kSha256,
                          crypto::HashAlgo::kMmo128}) {
    Config config;
    config.algo = algo;
    config.mode = mode;
    config.reliable = reliable;
    config.batch_size = 4;
    EnginePair pair{config};
    for (int i = 0; i < 4; ++i) pair.signer->submit(msg("x"), 0);
    pair.bus.pump();
    EXPECT_EQ(pair.received.size(), 4u)
        << "algo " << crypto::to_string(algo);
  }
}

TEST_P(EngineModeTest, TamperedPayloadRejectedEverywhere) {
  const auto [mode, reliable] = GetParam();
  Config config;
  config.mode = mode;
  config.reliable = reliable;
  config.batch_size = 4;
  EnginePair pair{config};

  // Corrupt the payload byte of every S2 in flight.
  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      testing::tamper_and_reseal(frame);  // flips the last payload byte
    }
    return true;
  });

  for (int i = 0; i < 4; ++i) pair.signer->submit(msg("payload!"), 0);
  pair.bus.pump();

  EXPECT_TRUE(pair.received.empty());
  EXPECT_GT(pair.verifier->stats().invalid_packets, 0u);
  if (reliable) {
    // Every rejected S2 triggers a verifiable nack.
    for (const auto& [cookie, status] : pair.deliveries) {
      EXPECT_EQ(status, DeliveryStatus::kNacked);
    }
  }
}

TEST(EngineReliableTest, NackCarriesVerifiableEvidence) {
  Config config;
  config.reliable = true;
  EnginePair pair{config};

  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      testing::tamper_and_reseal(frame, 0xff);
    }
    return true;
  });
  pair.signer->submit(msg("to be mangled"), 0);
  pair.bus.pump();

  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kNacked);
  EXPECT_EQ(pair.signer->stats().nacks_received, 1u);
}

TEST(EngineRetransmitTest, LostS1IsRetransmitted) {
  Config config;
  config.reliable = true;
  config.rto_us = 1000;
  config.rto_max_us = config.rto_us;  // fixed timer: test advances in rto steps
  EnginePair pair{config};

  int drops = 0;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS1 && drops < 2) {
      ++drops;
      return false;  // drop the first two S1 transmissions
    }
    return true;
  });

  pair.signer->submit(msg("persistent"), 0);
  pair.bus.pump();
  EXPECT_TRUE(pair.received.empty());

  pair.now = 2000;
  pair.signer->on_tick(pair.now);  // first retransmit (dropped)
  pair.bus.pump();
  pair.now = 4000;
  pair.signer->on_tick(pair.now);  // second retransmit (delivered)
  pair.bus.pump();

  ASSERT_EQ(pair.received.size(), 1u);
  EXPECT_EQ(pair.signer->stats().s1_retransmits, 2u);
  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kAcked);
}

TEST(EngineRetransmitTest, LostS2IsRetransmittedInReliableMode) {
  Config config;
  config.reliable = true;
  config.rto_us = 1000;
  EnginePair pair{config};

  int drops = 0;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2 && drops < 1) {
      ++drops;
      return false;
    }
    return true;
  });

  pair.signer->submit(msg("retry me"), 0);
  pair.bus.pump();
  EXPECT_TRUE(pair.received.empty());

  pair.now = 2000;
  pair.signer->on_tick(pair.now);
  pair.bus.pump();
  ASSERT_EQ(pair.received.size(), 1u);
  EXPECT_EQ(pair.signer->stats().s2_retransmits, 1u);
}

TEST(EngineRetransmitTest, RetriesExhaustedFailsRound) {
  Config config;
  config.reliable = true;
  config.rto_us = 1000;
  config.rto_max_us = config.rto_us;  // fixed timer: test advances in rto steps
  config.max_retries = 3;
  EnginePair pair{config};

  pair.bus.set_hook([](Bytes&) { return false; });  // black hole

  pair.signer->submit(msg("doomed"), 0);
  pair.bus.pump();
  for (int i = 1; i <= 10; ++i) {
    pair.now = static_cast<std::uint64_t>(i) * 2000;
    pair.signer->on_tick(pair.now);
    pair.bus.pump();
  }

  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kFailed);
  EXPECT_EQ(pair.signer->stats().rounds_failed, 1u);
  // The engine recovers: with the hook removed the next message flows.
  pair.bus.set_hook(nullptr);
  pair.signer->submit(msg("alive again"), pair.now);
  pair.bus.pump();
  EXPECT_EQ(pair.received.size(), 1u);
}

TEST(EngineRetransmitTest, DuplicateS1AnsweredIdempotently) {
  Config config;
  EnginePair pair{config};

  // Duplicate every S1.
  std::vector<Bytes> dup;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS1) {
      dup.push_back(frame);
    }
    return true;
  });
  pair.signer->submit(msg("once"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.received.size(), 1u);

  // Replay the captured S1: verifier must answer with the same A1 and not
  // burn fresh ack-chain elements.
  const auto a1_before = pair.verifier->stats().a1_sent;
  const auto packet = wire::decode(dup.at(0));
  pair.verifier->on_s1(std::get<wire::S1Packet>(*packet));
  EXPECT_EQ(pair.verifier->stats().duplicate_packets, 1u);
  EXPECT_EQ(pair.verifier->stats().a1_sent, a1_before);  // cached frame
}

TEST(EngineSecurityTest, ForgedS1Rejected) {
  Config config;
  EnginePair pair{config};
  pair.signer->submit(msg("legit"), 0);
  pair.bus.pump();

  wire::S1Packet forged;
  forged.hdr = {1, 99};
  forged.mode = wire::Mode::kBase;
  forged.chain_index = 999;  // odd, but not on the chain
  forged.chain_element = crypto::Digest{ByteView{Bytes(20, 0xbb)}};
  forged.macs = {crypto::Digest{ByteView{Bytes(20, 0xcc)}}};
  const auto before = pair.verifier->stats().invalid_packets;
  pair.verifier->on_s1(forged);
  EXPECT_EQ(pair.verifier->stats().invalid_packets, before + 1);
  EXPECT_TRUE(pair.bus.idle());  // no A1 granted
}

TEST(EngineSecurityTest, EvenIndexS1ElementRejected) {
  // Reformatting defense: an S2-role (even-index) element must not
  // authenticate an S1 packet.
  Config config;
  EnginePair pair{config};

  wire::S1Packet forged;
  forged.hdr = {1, 1};
  forged.mode = wire::Mode::kBase;
  forged.chain_index = static_cast<std::uint32_t>(pair.sig_chain.length() - 2);
  forged.chain_element = pair.sig_chain.element(pair.sig_chain.length() - 2);
  forged.macs = {crypto::Digest{ByteView{Bytes(20, 0xcc)}}};
  pair.verifier->on_s1(forged);
  EXPECT_EQ(pair.verifier->stats().invalid_packets, 1u);
}

TEST(EngineSecurityTest, UnsolicitedS2Dropped) {
  Config config;
  EnginePair pair{config};

  wire::S2Packet s2;
  s2.hdr = {1, 42};  // round never announced
  s2.mode = wire::Mode::kBase;
  s2.chain_index = 100;
  s2.disclosed_element = crypto::Digest{ByteView{Bytes(20, 1)}};
  s2.payload = msg("flood");
  pair.verifier->on_s2(s2);
  EXPECT_EQ(pair.verifier->stats().invalid_packets, 1u);
  EXPECT_TRUE(pair.received.empty());
}

TEST(EngineSecurityTest, RefusingVerifierSendsNoA1) {
  Config config;
  EnginePair pair{config};
  pair.verifier->set_accepting(false);

  pair.signer->submit(msg("unwanted"), 0);
  pair.bus.pump();
  EXPECT_TRUE(pair.received.empty());
  EXPECT_EQ(pair.verifier->stats().a1_sent, 0u);
}

TEST(EngineSecurityTest, ForgedAckRejected) {
  Config config;
  config.reliable = true;
  EnginePair pair{config};

  // Swap A2 kind from ack to nack in flight: the pre-image check must fail
  // because the nack commitment uses a different secret.
  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kA2) {
      const auto packet = wire::decode(frame);
      auto a2 = std::get<wire::A2Packet>(*packet);
      a2.kind = a2.kind == wire::AckKind::kAck ? wire::AckKind::kNack
                                               : wire::AckKind::kAck;
      frame = a2.encode();
    }
    return true;
  });
  pair.signer->submit(msg("flip my ack"), 0);
  pair.bus.pump();

  EXPECT_TRUE(pair.deliveries.empty());  // forged (n)ack not accepted
  EXPECT_GT(pair.signer->stats().invalid_packets, 0u);
}

TEST(EngineChainTest, ExhaustionFailsCleanly) {
  Config config;
  config.chain_length = 8;  // 3 usable rounds (indices 7..2)
  EnginePair pair{config};

  std::size_t delivered_before_exhaustion = 0;
  for (int i = 0; i < 6; ++i) {
    pair.signer->submit(msg("m"), 0);
    pair.bus.pump();
    delivered_before_exhaustion = pair.received.size();
  }
  EXPECT_LT(delivered_before_exhaustion, 6u);
  EXPECT_FALSE(pair.signer->can_send());
  // The tail submissions were failed, not silently dropped.
  std::size_t failed = 0;
  for (const auto& [cookie, status] : pair.deliveries) {
    if (status == DeliveryStatus::kFailed) ++failed;
  }
  EXPECT_GT(failed, 0u);
}

TEST(EngineMemoryTest, VerifierBuffersShrinkWithMerkleMode) {
  // Table 2: verifier buffers n*h in ALPHA-C but only h in ALPHA-M.
  Config cumulative;
  cumulative.mode = wire::Mode::kCumulative;
  cumulative.batch_size = 16;
  EnginePair c_pair{cumulative};
  // Capture buffer usage after S1 lands but before the round retires: stop
  // A1 from reaching the signer so the round stays pending.
  c_pair.bus.set_hook([](Bytes& frame) {
    return wire::peek_type(frame) != wire::PacketType::kA1;
  });
  for (int i = 0; i < 16; ++i) c_pair.signer->submit(msg("m"), 0);
  c_pair.bus.pump();
  EXPECT_EQ(c_pair.verifier->buffered_bytes(), 16u * 20u);

  Config merkle = cumulative;
  merkle.mode = wire::Mode::kMerkle;
  EnginePair m_pair{merkle};
  m_pair.bus.set_hook([](Bytes& frame) {
    return wire::peek_type(frame) != wire::PacketType::kA1;
  });
  for (int i = 0; i < 16; ++i) m_pair.signer->submit(msg("m"), 0);
  m_pair.bus.pump();
  EXPECT_EQ(m_pair.verifier->buffered_bytes(), 20u);
}

TEST(EngineReorderTest, NextRoundS1OvertakingS2StillDelivers) {
  // On jittery links the S1 of round n+1 can arrive before round n's S2.
  // The S2's disclosed element is then *above* the verifier's chain state
  // and must verify by derivation rather than be rejected as a replay.
  Config config;
  EnginePair pair{config};

  // Capture frames instead of delivering, to control arrival order.
  std::vector<Bytes> held_s2;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      held_s2.push_back(frame);
      return false;  // hold every S2 back
    }
    return true;
  });
  pair.signer->submit(msg("round one"), 0);
  pair.bus.pump();  // S1(1) delivered, A1(1) returned, S2(1) held
  pair.signer->submit(msg("round two"), 0);
  pair.bus.pump();  // S1(2) delivered -- chain state now past round 1
  ASSERT_EQ(held_s2.size(), 2u);
  EXPECT_TRUE(pair.received.empty());

  // Now deliver the held S2s *after* the newer S1s: both must verify.
  pair.bus.set_hook(nullptr);
  for (const auto& frame : held_s2) {
    pair.verifier->on_s2(std::get<wire::S2Packet>(*wire::decode(frame)));
  }
  ASSERT_EQ(pair.received.size(), 2u);
  EXPECT_EQ(std::get<2>(pair.received[0]), msg("round one"));
  EXPECT_EQ(std::get<2>(pair.received[1]), msg("round two"));
}

TEST(EngineTable1Test, HashCountsMatchPaperShapeBaseMode) {
  // Table 1 (ALPHA column): per message, the signer spends 1 MAC; the
  // verifier spends 1 MAC + 1 chain verification (plus 2 for ack handling
  // in reliable mode).
  Config config;
  EnginePair pair{config};
  for (int i = 0; i < 10; ++i) {
    pair.signer->submit(msg("table one"), 0);
    pair.bus.pump();
  }
  const auto& s = pair.signer->stats();
  const auto& v = pair.verifier->stats();
  // 1 MAC per message on each side; HMAC costs 2 hash finalizations.
  EXPECT_EQ(s.hashes.signature, 20u);
  EXPECT_EQ(v.hashes.signature, 20u);
  // Verifier chain verification: S1 element (1 step) + S2 element (1 step)
  // per message, exactly Table 1's "HC verify = 1" per packet.
  EXPECT_EQ(v.hashes.chain_verify, 20u);
}

}  // namespace
}  // namespace alpha::core
