// End-to-end over real UDP sockets: three AlphaNodes on the loopback
// interface -- host A, a verifying relay node, host B -- each polling its
// own UdpTransport. The relay runtime demuxes by association id and derives
// the relay direction from the source port; host B accepts the inbound
// handshake on demand.
#include <gtest/gtest.h>

#include <chrono>

#include "core/node.hpp"
#include "net/udp.hpp"
#include "wire/packets.hpp"

namespace alpha::core {
namespace {

using Clock = std::chrono::steady_clock;

std::uint16_t port_of(AlphaNode& node) {
  return static_cast<net::UdpTransport&>(node.transport()).port();
}

TEST(UdpIntegrationTest, HostsExchangeThroughVerifyingRelay) {
  Config config;
  config.reliable = true;
  config.rto_us = 200'000;

  AlphaNode::Options relay_opts;
  relay_opts.config = config;
  AlphaNode relay_node{std::make_unique<net::UdpTransport>(), relay_opts};

  AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 1;
  bool acked = false;
  AlphaNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                          DeliveryStatus status) {
    acked = status == DeliveryStatus::kAcked;
  };
  AlphaNode node_a{std::make_unique<net::UdpTransport>(), a_opts, a_cbs};

  AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 2;
  b_opts.accept_inbound = true;
  std::vector<crypto::Bytes> at_b;
  AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
    at_b.emplace_back(payload.begin(), payload.end());
  };
  AlphaNode node_b{std::make_unique<net::UdpTransport>(), b_opts, b_cbs};

  relay_node.add_relay(/*upstream=*/port_of(node_a),
                       /*downstream=*/port_of(node_b));
  node_a.add_initiator(/*assoc_id=*/1, /*peer=*/port_of(relay_node), config);
  node_a.start(1);
  node_a.submit(1, crypto::Bytes(500, 0x5e));

  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (!acked && Clock::now() < deadline) {
    node_a.poll(2);
    relay_node.poll(2);
    node_b.poll(2);
  }

  ASSERT_TRUE(node_a.host(1)->established());
  ASSERT_TRUE(node_b.host(1) != nullptr);
  ASSERT_TRUE(node_b.host(1)->established());
  EXPECT_EQ(node_b.snapshot().accepted_handshakes, 1u);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].size(), 500u);
  EXPECT_TRUE(acked);
  EXPECT_EQ(relay_node.relay(0).stats().dropped_invalid, 0u);
  EXPECT_EQ(relay_node.relay(0).stats().messages_extracted, 1u);
}

TEST(UdpIntegrationTest, RelayDropsForgedFramesOnRealSockets) {
  Config config;
  AlphaNode::Options relay_opts;
  relay_opts.config = config;
  AlphaNode relay_node{std::make_unique<net::UdpTransport>(), relay_opts};

  net::UdpEndpoint sock_attacker, sock_sink;
  relay_node.add_relay(/*upstream=*/sock_attacker.port(),
                       /*downstream=*/sock_sink.port());

  // Forged S2 with no handshake/S1 context arrives over a real socket.
  wire::S2Packet forged;
  forged.hdr = {1, 5};
  forged.mode = wire::Mode::kBase;
  forged.disclosed_element =
      crypto::Digest{crypto::ByteView{crypto::Bytes(20, 0x99)}};
  forged.payload = crypto::Bytes(100, 0xaa);
  sock_attacker.send_to(port_of(relay_node), forged.encode());

  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (relay_node.snapshot().frames_in == 0 && Clock::now() < deadline) {
    relay_node.poll(2);
  }

  const auto snap = relay_node.snapshot();
  EXPECT_EQ(snap.frames_in, 1u);
  EXPECT_EQ(snap.relay.dropped_unsolicited, 1u);
  EXPECT_EQ(snap.relay.forwarded, 0u);
  // Nothing must have leaked past the relay.
  EXPECT_FALSE(sock_sink.receive(50).has_value());
}

}  // namespace
}  // namespace alpha::core
