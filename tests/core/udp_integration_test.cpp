// End-to-end over real UDP sockets: two hosts and a verifying relay on the
// loopback interface, single-threaded event loop.
#include <gtest/gtest.h>

#include <chrono>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "net/udp.hpp"

namespace alpha::core {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

TEST(UdpIntegrationTest, HostsExchangeThroughVerifyingRelay) {
  net::UdpEndpoint sock_a, sock_relay, sock_b;

  Config config;
  config.reliable = true;
  config.rto_us = 200'000;

  crypto::HmacDrbg rng_a{1}, rng_b{2};
  std::vector<crypto::Bytes> at_b;
  bool acked = false;

  // Relay: forwards between the two host ports after verification.
  RelayEngine::Callbacks r_cb;
  r_cb.forward = [&](Direction dir, crypto::Bytes frame) {
    sock_relay.send_to(dir == Direction::kForward ? sock_b.port()
                                                  : sock_a.port(),
                       frame);
  };
  RelayEngine relay{config, RelayEngine::Options{}, std::move(r_cb)};

  Host::Callbacks a_cb;
  a_cb.send = [&](crypto::Bytes f) { sock_a.send_to(sock_relay.port(), f); };
  a_cb.on_delivery = [&](std::uint64_t, DeliveryStatus status) {
    acked = status == DeliveryStatus::kAcked;
  };
  Host host_a{config, 1, true, rng_a, std::move(a_cb)};

  Host::Callbacks b_cb;
  b_cb.send = [&](crypto::Bytes f) { sock_b.send_to(sock_relay.port(), f); };
  b_cb.on_message = [&](crypto::ByteView payload) {
    at_b.emplace_back(payload.begin(), payload.end());
  };
  Host host_b{config, 1, false, rng_b, std::move(b_cb)};

  host_a.start();
  host_a.submit(crypto::Bytes(500, 0x5e), now_us());

  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (!acked && Clock::now() < deadline) {
    if (auto dg = sock_a.receive(2)) host_a.on_frame(dg->data, now_us());
    if (auto dg = sock_b.receive(2)) host_b.on_frame(dg->data, now_us());
    if (auto dg = sock_relay.receive(2)) {
      const Direction dir = dg->from_port == sock_a.port()
                                ? Direction::kForward
                                : Direction::kReverse;
      relay.on_frame(dir, dg->data);
    }
    host_a.on_tick(now_us());
    host_b.on_tick(now_us());
  }

  ASSERT_TRUE(host_a.established());
  ASSERT_TRUE(host_b.established());
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].size(), 500u);
  EXPECT_TRUE(acked);
  EXPECT_EQ(relay.stats().dropped_invalid, 0u);
  EXPECT_EQ(relay.stats().messages_extracted, 1u);
}

TEST(UdpIntegrationTest, RelayDropsForgedFramesOnRealSockets) {
  net::UdpEndpoint sock_attacker, sock_relay, sock_b;

  Config config;
  RelayEngine::Callbacks r_cb;
  std::size_t forwarded = 0;
  r_cb.forward = [&](Direction, crypto::Bytes) { ++forwarded; };
  RelayEngine relay{config, RelayEngine::Options{}, std::move(r_cb)};

  // Forged S2 with no handshake/S1 context arrives over a real socket.
  wire::S2Packet forged;
  forged.hdr = {1, 5};
  forged.mode = wire::Mode::kBase;
  forged.disclosed_element =
      crypto::Digest{crypto::ByteView{crypto::Bytes(20, 0x99)}};
  forged.payload = crypto::Bytes(100, 0xaa);
  sock_attacker.send_to(sock_relay.port(), forged.encode());

  const auto dg = sock_relay.receive(2000);
  ASSERT_TRUE(dg.has_value());
  const auto decision = relay.on_frame(Direction::kForward, dg->data);
  EXPECT_EQ(decision, RelayDecision::kDroppedUnsolicited);
  EXPECT_EQ(forwarded, 0u);
}

}  // namespace
}  // namespace alpha::core
