#include "core/config.hpp"

#include <gtest/gtest.h>

namespace alpha::core {
namespace {

TEST(ConfigTest, EffectiveBatch) {
  Config c;
  c.mode = wire::Mode::kBase;
  c.batch_size = 50;
  EXPECT_EQ(c.effective_batch(), 1u);  // base mode ignores batch_size
  c.mode = wire::Mode::kCumulative;
  EXPECT_EQ(c.effective_batch(), 50u);
  c.batch_size = 0;
  EXPECT_EQ(c.effective_batch(), 1u);  // zero means one
}

TEST(ConfigTest, UsesTrees) {
  Config c;
  c.mode = wire::Mode::kBase;
  EXPECT_FALSE(c.uses_trees());
  c.mode = wire::Mode::kCumulative;
  EXPECT_FALSE(c.uses_trees());
  c.mode = wire::Mode::kMerkle;
  EXPECT_TRUE(c.uses_trees());
  c.mode = wire::Mode::kCumulativeMerkle;
  EXPECT_TRUE(c.uses_trees());
}

TEST(ConfigTest, GroupSize) {
  Config c;
  c.mode = wire::Mode::kMerkle;
  EXPECT_EQ(c.group_size(32), 32u);  // one tree over the whole batch
  c.mode = wire::Mode::kCumulativeMerkle;
  c.merkle_group = 8;
  EXPECT_EQ(c.group_size(32), 8u);
  c.merkle_group = 0;
  EXPECT_EQ(c.group_size(32), 1u);  // degenerate: one leaf per tree
}

TEST(ConfigTest, RoundsSupported) {
  Config c;
  c.chain_length = 1024;
  EXPECT_EQ(rounds_supported(c), 511u);  // 2 elements/round, seed reserved
  c.chain_length = 4;
  EXPECT_EQ(rounds_supported(c), 1u);
}

TEST(ConfigTest, DigestSizeTracksAlgo) {
  Config c;
  c.algo = crypto::HashAlgo::kSha1;
  EXPECT_EQ(c.digest_size(), 20u);
  c.algo = crypto::HashAlgo::kMmo128;
  EXPECT_EQ(c.digest_size(), 16u);
  c.algo = crypto::HashAlgo::kSha256;
  EXPECT_EQ(c.digest_size(), 32u);
}

TEST(ConfigTest, MtuClampRespectsConfiguredBatchCeiling) {
  Config c;
  c.mode = wire::Mode::kCumulative;
  c.batch_size = 3;
  // Generous MTU: the configured batch is the binding limit.
  EXPECT_EQ(max_batch_for_mtu(c, 10000), 3u);
}

}  // namespace
}  // namespace alpha::core
