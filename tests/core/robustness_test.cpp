// Robustness corners: pending-round eviction under S1 floods, checkpointed
// chains with custom intervals, auto-indexed chain acceptance.
#include <gtest/gtest.h>

#include "core/signer.hpp"
#include "core/verifier.hpp"
#include "hashchain/chain.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;

TEST(RobustnessTest, VerifierEvictsOldPendingRounds) {
  // A signer that opens many rounds without ever sending S2s must not grow
  // the verifier's memory unboundedly: old rounds are evicted (LRU by seq).
  Config config;
  config.chain_length = 256;
  HmacDrbg rng{1};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);

  VerifierEngine::Callbacks cb;
  cb.send = [](Bytes) {};
  VerifierEngine verifier{config, 1,    ack,          sig.anchor(),
                          sig.length(), std::move(cb), rng};

  hashchain::ChainWalker walker{sig};
  const std::size_t h = config.digest_size();
  for (std::uint32_t seq = 1; seq <= 40; ++seq) {
    wire::S1Packet s1;
    s1.hdr = {1, seq};
    s1.mode = wire::Mode::kBase;
    s1.chain_index = static_cast<std::uint32_t>(walker.next_index());
    s1.chain_element = walker.peek();
    walker.take(2);
    s1.macs = {crypto::Digest{ByteView{Bytes(h, 1)}}};
    verifier.on_s1(s1);
  }
  // At most the retention window's worth of MACs stays buffered.
  EXPECT_LE(verifier.buffered_bytes(), 8 * h);
}

TEST(RobustnessTest, CheckpointChainCustomIntervals) {
  const Bytes seed(20, 0x21);
  const hashchain::HashChain reference{crypto::HashAlgo::kSha1,
                                       hashchain::ChainTagging::kRoleBound,
                                       seed, 128};
  for (const std::size_t interval : {1u, 2u, 7u, 16u, 128u, 200u}) {
    const hashchain::HashChain cp{crypto::HashAlgo::kSha1,
                                  hashchain::ChainTagging::kRoleBound,
                                  seed,
                                  128,
                                  hashchain::ChainStorage::kCheckpoint,
                                  interval};
    for (std::size_t i = 0; i <= 128; i += 13) {
      EXPECT_EQ(cp.element(i), reference.element(i))
          << "interval " << interval << " element " << i;
    }
  }
}

TEST(RobustnessTest, AcceptAutoSweepsGaps) {
  HmacDrbg rng{3};
  const auto chain = hashchain::HashChain::generate(
      crypto::HashAlgo::kSha1, hashchain::ChainTagging::kRoleBound, rng, 128);
  for (const std::size_t gap : {1u, 2u, 5u, 17u, 63u}) {
    hashchain::ChainVerifier verifier{crypto::HashAlgo::kSha1,
                                      hashchain::ChainTagging::kRoleBound,
                                      chain.anchor(), 128, /*max_gap=*/64};
    const auto idx = verifier.accept_auto(chain.element(128 - gap));
    ASSERT_TRUE(idx.has_value()) << "gap " << gap;
    EXPECT_EQ(*idx, 128 - gap);
  }
}

TEST(RobustnessTest, SignerIgnoresCrossAssociationPackets) {
  Config config;
  HmacDrbg rng{4};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);

  std::vector<Bytes> sent;
  SignerEngine::Callbacks cb;
  cb.send = [&](Bytes f) { sent.push_back(std::move(f)); };
  SignerEngine signer{config, /*assoc=*/1, sig, ack.anchor(), ack.length(),
                      std::move(cb)};
  signer.submit(Bytes(10, 1), 0);
  ASSERT_EQ(sent.size(), 1u);

  // A1 stamped with a different association must not advance the round,
  // even if its chain element would verify.
  wire::A1Packet a1;
  a1.hdr = {/*assoc=*/2, 1};
  a1.ack_chain_index = static_cast<std::uint32_t>(ack.length() - 1);
  a1.ack_element = ack.element(ack.length() - 1);
  signer.on_a1(a1, 0);
  EXPECT_EQ(sent.size(), 1u);  // no S2 went out
  EXPECT_TRUE(signer.round_active());

  // Correct association: proceeds.
  a1.hdr.assoc_id = 1;
  signer.on_a1(a1, 0);
  EXPECT_EQ(sent.size(), 2u);
}

TEST(RobustnessTest, ZeroLengthPayloadRoundtrips) {
  Config config;
  testing::PacketBus bus;
  HmacDrbg rng{5};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng, 64);

  std::size_t delivered = 0;
  SignerEngine::Callbacks scb;
  scb.send = bus.sender(1);
  SignerEngine signer{config, 1, sig, ack.anchor(), ack.length(),
                      std::move(scb)};
  VerifierEngine::Callbacks vcb;
  vcb.send = bus.sender(0);
  vcb.on_message = [&](std::uint32_t, std::uint16_t, ByteView payload) {
    EXPECT_TRUE(payload.empty());
    ++delivered;
  };
  VerifierEngine verifier{config, 1,    ack,           sig.anchor(),
                          sig.length(), std::move(vcb), rng};
  bus.attach(1, [&](ByteView f) {
    const auto p = wire::decode(f);
    if (const auto* s1 = std::get_if<wire::S1Packet>(&*p)) verifier.on_s1(*s1);
    if (const auto* s2 = std::get_if<wire::S2Packet>(&*p)) verifier.on_s2(*s2);
  });
  bus.attach(0, [&](ByteView f) {
    const auto p = wire::decode(f);
    if (const auto* a1 = std::get_if<wire::A1Packet>(&*p)) signer.on_a1(*a1, 0);
  });

  signer.submit(Bytes{}, 0);  // empty message (e.g. a keepalive)
  bus.pump();
  EXPECT_EQ(delivered, 1u);
}

}  // namespace
}  // namespace alpha::core
