// Zero-allocation assertions for the sharded runtime's frame path. This
// binary replaces global operator new/delete (alloc_hook.hpp: exactly one TU
// per binary) and proves two things:
//
//  * the ring machinery itself -- demux hash, push-into-recycled-slot,
//    peek, pop -- performs literally zero heap allocations per frame after
//    warmup, and
//  * a full protocol round driven THROUGH the rings allocates exactly as
//    much as the same round with shards wired back-to-back: the thread-hop
//    layer adds nothing per frame.
#include "support/alloc_hook.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/shard.hpp"
#include "core/spsc_ring.hpp"

namespace alpha::core {
namespace {

using crypto::ByteView;
using crypto::Bytes;
using testsupport::ScopedAllocCount;

TEST(ShardedAllocFree, FrameRingSteadyStateIsAllocationFree) {
  FrameRing ring(64);
  Bytes frame(512);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<std::uint8_t>(i);
  }
  const ByteView view{frame.data(), frame.size()};
  // Warmup: grow every slot buffer once (capacity rounds up to 64).
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.try_push(FrameSlot::Kind::kFrame, 1, i, 7, view));
    ring.pop();
  }
  std::uint64_t delta;
  {
    const ScopedAllocCount allocs;
    for (std::uint32_t i = 0; i < 10'000; ++i) {
      const std::uint32_t shard = shard_of(i, 4);  // the I/O thread's demux
      ASSERT_TRUE(
          ring.try_push(FrameSlot::Kind::kFrame, shard, i, i, view));
      const FrameSlot* slot = ring.front();
      ASSERT_NE(slot, nullptr);
      ASSERT_EQ(slot->view().size(), frame.size());
      ring.pop();
    }
    delta = allocs.delta();
  }
  EXPECT_EQ(delta, 0u);
}

// A one-frame transport between two NodeShards. `Direct` hands frames over
// in a preallocated vector (the no-ring baseline); `Ringed` pushes every
// frame through a FrameRing exactly like the sharded runtime does. Both run
// the identical protocol schedule, so any per-frame allocation added by the
// ring layer shows up as a delta between the two measurements.
struct ShardPair {
  static Config config() {
    Config c;
    c.reliable = true;
    c.rto_us = 1'000'000;  // no retransmissions in a lossless pump
    c.chain_length = 4096;  // no rekey inside the measured window
    return c;
  }

  static NodeShard::Options options(std::uint64_t seed) {
    NodeShard::Options o;
    o.config = config();
    o.seed = seed;
    return o;
  }
};

std::uint64_t measure_direct(int warmup_msgs, int measured_msgs) {
  // frames[i] = (dest_shard, frame); preallocated far beyond any burst.
  std::vector<std::pair<int, Bytes>> queue;
  queue.reserve(4096);
  std::size_t delivered = 0;
  NodeShard::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, ByteView) { ++delivered; };
  NodeShard a{0, ShardPair::options(1), {},
              [&](net::PeerAddr, Bytes frame) {
                queue.emplace_back(1, std::move(frame));
                return true;
              }};
  NodeShard b{0, ShardPair::options(2), b_cbs,
              [&](net::PeerAddr, Bytes frame) {
                queue.emplace_back(0, std::move(frame));
                return true;
              }};
  a.add_host(1, 1, /*initiator=*/true, ShardPair::config(), {});
  b.add_host(1, 0, /*initiator=*/false, ShardPair::config(), {});

  std::uint64_t t = 0;
  auto pump = [&] {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      auto& [dest, frame] = queue[i];
      t += 10;
      (dest == 0 ? a : b).on_frame(dest == 0 ? 1 : 0,
                                   ByteView{frame.data(), frame.size()}, t);
    }
    queue.clear();
  };

  a.start(1, t);
  while (!queue.empty()) pump();

  auto round = [&](int i) {
    a.submit(1, Bytes(256, static_cast<std::uint8_t>(i)), t += 10);
    while (!queue.empty()) pump();
  };
  for (int i = 0; i < warmup_msgs; ++i) round(i);
  std::uint64_t delta;
  {
    const ScopedAllocCount allocs;
    for (int i = 0; i < measured_msgs; ++i) round(i);
    delta = allocs.delta();
  }
  EXPECT_EQ(delivered,
            static_cast<std::size_t>(warmup_msgs + measured_msgs));
  return delta;
}

std::uint64_t measure_ringed(int warmup_msgs, int measured_msgs) {
  FrameRing to_b(512);
  FrameRing to_a(512);
  {
    // Grow EVERY slot's buffer once up front: the ring cycles through its
    // slots, so a warmup shorter than the capacity would leave virgin slots
    // to allocate inside the measured window.
    Bytes dummy(2048, 0xAA);
    const ByteView dv{dummy.data(), dummy.size()};
    for (std::size_t i = 0; i < to_b.capacity(); ++i) {
      to_b.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, dv);
      to_b.pop();
      to_a.try_push(FrameSlot::Kind::kFrame, 0, 0, 0, dv);
      to_a.pop();
    }
  }
  std::size_t delivered = 0;
  NodeShard::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, ByteView) { ++delivered; };
  NodeShard a{0, ShardPair::options(1), {},
              [&](net::PeerAddr peer, Bytes frame) {
                return to_b.try_push(FrameSlot::Kind::kFrame, peer, 0, 1,
                                     ByteView{frame.data(), frame.size()});
              }};
  NodeShard b{0, ShardPair::options(2), b_cbs,
              [&](net::PeerAddr peer, Bytes frame) {
                return to_a.try_push(FrameSlot::Kind::kFrame, peer, 0, 1,
                                     ByteView{frame.data(), frame.size()});
              }};
  a.add_host(1, 1, /*initiator=*/true, ShardPair::config(), {});
  b.add_host(1, 0, /*initiator=*/false, ShardPair::config(), {});

  std::uint64_t t = 0;
  auto pump = [&] {
    for (bool moved = true; moved;) {
      moved = false;
      while (const FrameSlot* slot = to_b.front()) {
        t += 10;
        b.on_frame(0, slot->view(), t);
        to_b.pop();
        moved = true;
      }
      while (const FrameSlot* slot = to_a.front()) {
        t += 10;
        a.on_frame(1, slot->view(), t);
        to_a.pop();
        moved = true;
      }
    }
  };

  a.start(1, t);
  pump();

  auto round = [&](int i) {
    a.submit(1, Bytes(256, static_cast<std::uint8_t>(i)), t += 10);
    pump();
  };
  for (int i = 0; i < warmup_msgs; ++i) round(i);
  std::uint64_t delta;
  {
    const ScopedAllocCount allocs;
    for (int i = 0; i < measured_msgs; ++i) round(i);
    delta = allocs.delta();
  }
  EXPECT_EQ(delivered,
            static_cast<std::size_t>(warmup_msgs + measured_msgs));
  EXPECT_EQ(to_a.overflows() + to_b.overflows(), 0u);
  return delta;
}

TEST(ShardedAllocFree, RingHopAddsZeroAllocationsPerFrame) {
  // Both variants run the identical deterministic schedule (same seeds,
  // same payloads, no loss), differing only in how frames cross between
  // the shards. After warmup the ring slots are grown and recycled, so the
  // measured windows must allocate identically -- the sharded runtime's
  // thread hop costs 0 allocations per frame.
  constexpr int kWarmup = 16;
  constexpr int kMeasured = 64;
  const std::uint64_t direct = measure_direct(kWarmup, kMeasured);
  const std::uint64_t ringed = measure_ringed(kWarmup, kMeasured);
  EXPECT_EQ(ringed, direct);
}

}  // namespace
}  // namespace alpha::core
