// RelayPipeline equivalence suite: the batched fast path must make
// bit-identical decisions to the scalar RelayEngine for ANY chop of ANY
// frame sequence into batches -- including under seeded chaos (duplicates,
// CRC corruption, resealed tampering, reordering, burst loss).
//
// Method: record an authentic traffic trace from two real Hosts, mutate it
// with a seeded chaos schedule, then feed the identical mutated sequence to
// (a) the scalar engine and (b) pipelines at several batch sizes, and
// compare everything observable: the per-frame decision sequence, the
// forwarded frame sequence (bytes and direction), extracted payloads, and
// the full stats block including the per-reason drop taxonomy and hash
// counters.
#include "core/relay_pipeline.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "core/host.hpp"
#include "core/relay.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;

struct ScheduledFrame {
  Direction dir = Direction::kForward;
  Bytes frame;
};

/// Records the full frame trace of `messages` reliable rounds between two
/// directly-wired Hosts (handshake included). Deterministic per seed.
std::vector<ScheduledFrame> record_traffic(const Config& config,
                                           int messages,
                                           std::uint64_t seed) {
  std::vector<ScheduledFrame> trace;
  std::deque<ScheduledFrame> queue;
  crypto::HmacDrbg rng_a(seed), rng_b(seed + 1);

  std::optional<Host> a, b;
  Host::Callbacks a_cb;
  a_cb.send = [&](Bytes f) {
    queue.push_back({Direction::kForward, std::move(f)});
  };
  a.emplace(config, /*assoc_id=*/42, /*initiator=*/true, rng_a,
            std::move(a_cb));
  Host::Callbacks b_cb;
  b_cb.send = [&](Bytes f) {
    queue.push_back({Direction::kReverse, std::move(f)});
  };
  b.emplace(config, /*assoc_id=*/42, /*initiator=*/false, rng_b,
            std::move(b_cb));

  const auto pump = [&] {
    while (!queue.empty()) {
      ScheduledFrame f = std::move(queue.front());
      queue.pop_front();
      (f.dir == Direction::kForward ? *b : *a).on_frame(f.frame, 0);
      trace.push_back(std::move(f));
    }
  };

  a->start();
  pump();
  EXPECT_TRUE(a->established());
  for (int i = 0; i < messages; ++i) {
    a->submit(Bytes{static_cast<std::uint8_t>(i), 0xaa, 0x55,
                    static_cast<std::uint8_t>(i >> 8)},
              0);
    pump();
  }
  return trace;
}

/// Reseals a frame after tampering so the CRC passes and the corruption
/// reaches the authentication checks instead of the checksum.
Bytes reseal(Bytes frame) {
  if (frame.size() <= wire::kFrameChecksumSize) return frame;
  const std::size_t body = frame.size() - wire::kFrameChecksumSize;
  const std::uint32_t crc =
      wire::frame_checksum(ByteView{frame.data(), body});
  frame[body + 0] = static_cast<std::uint8_t>(crc >> 24);
  frame[body + 1] = static_cast<std::uint8_t>(crc >> 16);
  frame[body + 2] = static_cast<std::uint8_t>(crc >> 8);
  frame[body + 3] = static_cast<std::uint8_t>(crc);
  return frame;
}

struct Chaos {
  double dup = 0.0;          // duplicate a frame in place
  double corrupt_crc = 0.0;  // flip a byte, leave the stale CRC
  double corrupt_seal = 0.0; // flip a byte, recompute the CRC
  double reorder = 0.0;      // swap with the next frame
  double burst_loss = 0.0;   // drop a short run
};

std::vector<ScheduledFrame> mutate(const std::vector<ScheduledFrame>& trace,
                                   const Chaos& chaos, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<ScheduledFrame> out;
  out.reserve(trace.size() + trace.size() / 4);
  std::size_t skip = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (skip > 0) {
      --skip;
      continue;
    }
    if (coin(rng) < chaos.burst_loss) {
      skip = 1 + static_cast<std::size_t>(rng() % 3);
      continue;
    }
    ScheduledFrame f = trace[i];
    if (!f.frame.empty() && coin(rng) < chaos.corrupt_crc) {
      f.frame[rng() % f.frame.size()] ^= 0xff;
    }
    if (!f.frame.empty() && coin(rng) < chaos.corrupt_seal) {
      Bytes tampered = f.frame;
      tampered[rng() % tampered.size()] ^= 0x01;
      f.frame = reseal(std::move(tampered));
    }
    if (coin(rng) < chaos.reorder && i + 1 < trace.size()) {
      out.push_back(trace[i + 1]);
      ++i;  // the swapped partner is consumed; `f` follows it
    }
    out.push_back(f);
    if (coin(rng) < chaos.dup) out.push_back(out.back());
  }
  return out;
}

/// Everything observable about a relay run, for exact comparison.
struct Observed {
  std::vector<std::uint8_t> decisions;
  std::vector<Bytes> forwarded;  // direction byte + frame bytes
  std::vector<Bytes> extracted;
  RelayStats stats;
};

Bytes tag(Direction dir, ByteView frame) {
  Bytes b;
  b.reserve(frame.size() + 1);
  b.push_back(static_cast<std::uint8_t>(dir));
  b.insert(b.end(), frame.begin(), frame.end());
  return b;
}

Observed run_scalar(const Config& config, RelayEngine::Options options,
                    const std::vector<ScheduledFrame>& schedule) {
  Observed obs;
  RelayEngine::Callbacks cb;
  cb.forward = [&](Direction dir, ByteView frame) {
    obs.forwarded.push_back(tag(dir, frame));
  };
  cb.on_extracted = [&](std::uint32_t, std::uint32_t, std::uint16_t,
                        ByteView payload) {
    obs.extracted.emplace_back(payload.begin(), payload.end());
  };
  RelayEngine relay(config, options, std::move(cb));
  for (const auto& f : schedule) {
    obs.decisions.push_back(
        static_cast<std::uint8_t>(relay.on_frame(f.dir, f.frame)));
  }
  obs.stats = relay.stats();
  return obs;
}

Observed run_batched(const Config& config, RelayEngine::Options options,
                     const std::vector<ScheduledFrame>& schedule,
                     std::size_t batch) {
  Observed obs;
  RelayPipeline::Callbacks cb;
  cb.forward_batch = [&](const RelayPipeline::ForwardItem* items,
                         std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      obs.forwarded.push_back(tag(items[i].dir, items[i].frame));
    }
  };
  cb.on_extracted = [&](std::uint32_t, std::uint32_t, std::uint16_t,
                        ByteView payload) {
    obs.extracted.emplace_back(payload.begin(), payload.end());
  };
  cb.on_decision = [&](RelayDecision d, Direction, ByteView) {
    obs.decisions.push_back(static_cast<std::uint8_t>(d));
  };
  RelayPipeline pipe(config, options, std::move(cb), batch);
  for (const auto& f : schedule) pipe.enqueue(f.dir, f.frame);
  pipe.flush();
  EXPECT_EQ(pipe.pending(), 0u);
  obs.stats = pipe.stats();
  return obs;
}

void expect_equal(const Observed& scalar, const Observed& batched,
                  std::size_t batch) {
  SCOPED_TRACE("batch=" + std::to_string(batch));
  EXPECT_EQ(scalar.decisions, batched.decisions);
  EXPECT_EQ(scalar.forwarded, batched.forwarded);
  EXPECT_EQ(scalar.extracted, batched.extracted);
  EXPECT_EQ(scalar.stats.forwarded, batched.stats.forwarded);
  EXPECT_EQ(scalar.stats.dropped_invalid, batched.stats.dropped_invalid);
  EXPECT_EQ(scalar.stats.dropped_unsolicited,
            batched.stats.dropped_unsolicited);
  EXPECT_EQ(scalar.stats.messages_extracted, batched.stats.messages_extracted);
  EXPECT_EQ(scalar.stats.acks_verified, batched.stats.acks_verified);
  EXPECT_EQ(scalar.stats.hashes.signature, batched.stats.hashes.signature);
  EXPECT_EQ(scalar.stats.hashes.chain_verify,
            batched.stats.hashes.chain_verify);
  EXPECT_EQ(scalar.stats.hashes.ack, batched.stats.hashes.ack);
  for (std::size_t i = 0; i < trace::kDropReasonCount; ++i) {
    EXPECT_EQ(scalar.stats.dropped_by_reason[i],
              batched.stats.dropped_by_reason[i])
        << "drop reason " << i;
  }
}

constexpr std::size_t kBatches[] = {1, 3, 8, 64};

void check_equivalence(const Config& config, RelayEngine::Options options,
                       const std::vector<ScheduledFrame>& schedule) {
  const Observed scalar = run_scalar(config, options, schedule);
  for (const std::size_t batch : kBatches) {
    expect_equal(scalar, run_batched(config, options, schedule, batch),
                 batch);
  }
}

Config base_config() {
  Config config;
  config.chain_length = 128;
  return config;
}

TEST(RelayPipelineEquivalence, CleanBaseTraffic) {
  const auto trace = record_traffic(base_config(), 20, /*seed=*/11);
  check_equivalence(base_config(), {}, trace);
}

TEST(RelayPipelineEquivalence, CleanReliablePreAck) {
  Config config = base_config();
  config.reliable = true;
  const auto trace = record_traffic(config, 16, /*seed=*/12);
  check_equivalence(config, {}, trace);
}

TEST(RelayPipelineEquivalence, CleanCumulativeBatches) {
  Config config = base_config();
  config.mode = Mode::kCumulative;
  config.batch_size = 6;
  config.reliable = true;
  const auto trace = record_traffic(config, 24, /*seed=*/13);
  check_equivalence(config, {}, trace);
}

TEST(RelayPipelineEquivalence, CleanMerkleWithPaths) {
  Config config = base_config();
  config.mode = Mode::kMerkle;
  config.batch_size = 8;
  const auto trace = record_traffic(config, 32, /*seed=*/14);
  check_equivalence(config, {}, trace);
}

TEST(RelayPipelineEquivalence, CleanCumulativeMerkle) {
  Config config = base_config();
  config.mode = Mode::kCumulativeMerkle;
  config.batch_size = 12;
  config.merkle_group = 4;
  const auto trace = record_traffic(config, 36, /*seed=*/15);
  check_equivalence(config, {}, trace);
}

TEST(RelayPipelineEquivalence, MerkleReliableAmt) {
  Config config = base_config();
  config.mode = Mode::kMerkle;
  config.batch_size = 4;
  config.reliable = true;
  const auto trace = record_traffic(config, 16, /*seed=*/16);
  check_equivalence(config, {}, trace);
}

// ---------------------------------------------------------------- chaos --

struct ChaosCase {
  const char* name;
  Chaos chaos;
};

const ChaosCase kChaosCases[] = {
    {"duplicates", {.dup = 0.30}},
    {"crc_corruption", {.corrupt_crc = 0.20}},
    {"resealed_tampering", {.corrupt_seal = 0.20}},
    {"reordering", {.reorder = 0.30}},
    {"burst_loss", {.burst_loss = 0.15}},
    {"everything",
     {.dup = 0.15,
      .corrupt_crc = 0.08,
      .corrupt_seal = 0.08,
      .reorder = 0.20,
      .burst_loss = 0.10}},
};

TEST(RelayPipelineEquivalence, SeededChaosBase) {
  Config config = base_config();
  config.reliable = true;
  const auto trace = record_traffic(config, 24, /*seed=*/21);
  for (const auto& c : kChaosCases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE(std::string(c.name) + " seed=" + std::to_string(seed));
      check_equivalence(config, {}, mutate(trace, c.chaos, seed));
    }
  }
}

TEST(RelayPipelineEquivalence, SeededChaosMerkle) {
  Config config = base_config();
  config.mode = Mode::kMerkle;
  config.batch_size = 8;
  config.reliable = true;
  const auto trace = record_traffic(config, 32, /*seed=*/22);
  for (const auto& c : kChaosCases) {
    SCOPED_TRACE(c.name);
    check_equivalence(config, {}, mutate(trace, c.chaos, /*seed=*/7));
  }
}

TEST(RelayPipelineEquivalence, NoHandshakeForwardingMode) {
  // require_handshake=false: unverifiable traffic passes through.
  Config config = base_config();
  const auto trace = record_traffic(config, 8, /*seed=*/31);
  // Strip the handshakes so every frame is unverifiable.
  std::vector<ScheduledFrame> no_hs;
  for (const auto& f : trace) {
    const auto t = wire::peek_type(f.frame);
    if (t == wire::PacketType::kHs1 || t == wire::PacketType::kHs2) continue;
    no_hs.push_back(f);
  }
  RelayEngine::Options options;
  options.require_handshake = false;
  check_equivalence(config, options, no_hs);
  options.require_handshake = true;
  check_equivalence(config, options, no_hs);
}

TEST(RelayPipelineEquivalence, RoundEvictionUnderReversedS1s) {
  // More in-flight rounds than the per-flow cap, presented newest-first:
  // exercises the emplace-then-evict map semantics, including the case
  // where the incoming (lowest-seq) round evicts itself.
  Config config = base_config();
  config.chain_length = 64;
  const auto trace = record_traffic(config, 20, /*seed=*/41);
  std::vector<ScheduledFrame> schedule;
  std::vector<ScheduledFrame> s1s;
  for (const auto& f : trace) {
    const auto t = wire::peek_type(f.frame);
    if (t == wire::PacketType::kHs1 || t == wire::PacketType::kHs2) {
      schedule.push_back(f);
    } else if (t == wire::PacketType::kS1) {
      s1s.push_back(f);
    }
  }
  // S1 chain elements must still arrive in disclosure order for the chain
  // verifier to accept them, so replay them forward, then replay the whole
  // set again in reverse: the second pass hits the retransmission and
  // eviction paths for every seq.
  schedule.insert(schedule.end(), s1s.begin(), s1s.end());
  schedule.insert(schedule.end(), s1s.rbegin(), s1s.rend());
  check_equivalence(config, {}, schedule);
}

TEST(RelayPipelineEquivalence, HandshakeInsideBatch) {
  // The handshake and the traffic it authorizes land in ONE batch: pass-1
  // demux resolves the early frames to "no association", and pass 2 must
  // still see the association the in-batch handshake created.
  const auto trace = record_traffic(base_config(), 6, /*seed=*/51);
  const Observed scalar = run_scalar(base_config(), {}, trace);
  const Observed one_batch =
      run_batched(base_config(), {}, trace, trace.size());
  expect_equal(scalar, one_batch, trace.size());
}

TEST(RelayPipelineEquivalence, StatePersistsAcrossFlushes) {
  // Same schedule, flushed frame-by-frame vs in big batches, must converge
  // to identical state: verify via a second traffic burst after the chop.
  Config config = base_config();
  config.reliable = true;
  const auto trace = record_traffic(config, 20, /*seed=*/61);
  const auto half = trace.size() / 2;

  for (const std::size_t batch : kBatches) {
    RelayPipeline::Callbacks cb;
    std::vector<std::uint8_t> decisions;
    cb.on_decision = [&](RelayDecision d, Direction, ByteView) {
      decisions.push_back(static_cast<std::uint8_t>(d));
    };
    RelayPipeline pipe(config, {}, std::move(cb), batch);
    for (std::size_t i = 0; i < half; ++i) {
      pipe.enqueue(trace[i].dir, trace[i].frame);
      pipe.flush();  // worst case: flush after every frame
    }
    for (std::size_t i = half; i < trace.size(); ++i) {
      pipe.enqueue(trace[i].dir, trace[i].frame);
    }
    pipe.flush();
    const Observed scalar = run_scalar(config, {}, trace);
    EXPECT_EQ(scalar.decisions, decisions) << "batch=" << batch;
  }
}

TEST(RelayPipelineStats, BatchLatencyHistogramFills) {
  const auto trace = record_traffic(base_config(), 10, /*seed=*/71);
  RelayPipeline pipe(base_config(), {}, {}, 16);
  for (const auto& f : trace) pipe.enqueue(f.dir, f.frame);
  pipe.flush();
  EXPECT_GT(pipe.stats().verify_batch_ns.count(), 0u);
  EXPECT_EQ(pipe.stats().verify_batch_frames, trace.size());
  // Scalar engines leave the latency instrumentation empty by design.
  RelayEngine scalar(base_config(), {}, {});
  EXPECT_EQ(scalar.stats().verify_batch_ns.count(), 0u);
}

TEST(RelayPipelineStats, DropTaxonomyAttribution) {
  const auto trace = record_traffic(base_config(), 4, /*seed=*/81);
  RelayPipeline pipe(base_config(), {}, {}, 8);
  for (const auto& f : trace) pipe.enqueue(f.dir, f.frame);
  // Garbage frame: malformed, attributed to kDecodeError.
  const Bytes junk{0x01, 0x03, 0x00, 0x00, 0x00, 0x2a, 0xde, 0xad};
  pipe.enqueue(Direction::kForward, junk);
  // Unknown association: dropped unsolicited, attributed to kUnsolicited.
  const auto s2_for_unknown = [] {
    wire::S2Packet s2;
    s2.hdr = {999, 1};
    s2.disclosed_element = crypto::Digest{};
    s2.payload = Bytes{1, 2, 3};
    return s2.encode();
  }();
  pipe.enqueue(Direction::kForward, s2_for_unknown);
  pipe.flush();
  const RelayStats& s = pipe.stats();
  EXPECT_GE(s.dropped_by_reason[static_cast<std::size_t>(
                trace::DropReason::kDecodeError)],
            1u);
  EXPECT_GE(s.dropped_by_reason[static_cast<std::size_t>(
                trace::DropReason::kUnsolicited)],
            1u);
  std::uint64_t by_reason = 0;
  for (std::size_t i = 0; i < trace::kDropReasonCount; ++i) {
    by_reason += s.dropped_by_reason[i];
  }
  // Every drop is attributed to exactly one taxonomy reason.
  EXPECT_EQ(by_reason, s.dropped_invalid + s.dropped_unsolicited);
}

}  // namespace
}  // namespace alpha::core
