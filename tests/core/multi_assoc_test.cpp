// One relay engine serving multiple independent associations: state must be
// fully isolated per association (chains, rounds, willingness).
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct TwoAssociations {
  TwoAssociations() : rng_a1(1), rng_b1(2), rng_a2(3), rng_b2(4) {
    RelayEngine::Callbacks r_cb;
    r_cb.forward = [this](Direction dir, ByteView frame) {
      // Route by association id: assoc 1 terminates at endpoints 0/1,
      // assoc 2 at endpoints 2/3.
      const auto hdr = wire::peek_header(frame);
      ASSERT_TRUE(hdr.has_value());
      const bool first = hdr->assoc_id == 1;
      const int dest = dir == Direction::kForward ? (first ? 1 : 3)
                                                  : (first ? 0 : 2);
      bus.sender(dest)(Bytes(frame.begin(), frame.end()));
    };
    relay.emplace(Config{}, RelayEngine::Options{}, std::move(r_cb));

    auto wire_host = [this](std::optional<Host>& host, std::uint32_t assoc,
                            bool initiator, HmacDrbg& rng, int relay_in,
                            std::vector<Bytes>* sink) {
      Host::Callbacks cb;
      cb.send = bus.sender(relay_in);
      if (sink != nullptr) {
        cb.on_message = [sink](ByteView payload) {
          sink->push_back(Bytes(payload.begin(), payload.end()));
        };
      }
      host.emplace(Config{}, assoc, initiator, rng, std::move(cb));
    };
    // Relay ingress: 10 = forward direction (from initiators),
    // 11 = reverse (from responders).
    wire_host(a1, 1, true, rng_a1, 10, nullptr);
    wire_host(b1, 1, false, rng_b1, 11, &at_b1);
    wire_host(a2, 2, true, rng_a2, 10, nullptr);
    wire_host(b2, 2, false, rng_b2, 11, &at_b2);

    bus.attach(0, [this](ByteView f) { a1->on_frame(f, 0); });
    bus.attach(1, [this](ByteView f) { b1->on_frame(f, 0); });
    bus.attach(2, [this](ByteView f) { a2->on_frame(f, 0); });
    bus.attach(3, [this](ByteView f) { b2->on_frame(f, 0); });
    bus.attach(10, [this](ByteView f) {
      relay->on_frame(Direction::kForward, f);
    });
    bus.attach(11, [this](ByteView f) {
      relay->on_frame(Direction::kReverse, f);
    });
  }

  HmacDrbg rng_a1, rng_b1, rng_a2, rng_b2;
  PacketBus bus;
  std::optional<RelayEngine> relay;
  std::optional<Host> a1, b1, a2, b2;
  std::vector<Bytes> at_b1, at_b2;
};

TEST(MultiAssocTest, TwoAssociationsShareOneRelay) {
  TwoAssociations t;
  t.a1->start();
  t.a2->start();
  t.bus.pump();
  ASSERT_TRUE(t.b1->established());
  ASSERT_TRUE(t.b2->established());

  t.a1->submit(msg("for association one"), 0);
  t.a2->submit(msg("for association two"), 0);
  t.bus.pump();

  ASSERT_EQ(t.at_b1.size(), 1u);
  ASSERT_EQ(t.at_b2.size(), 1u);
  EXPECT_EQ(t.at_b1[0], msg("for association one"));
  EXPECT_EQ(t.at_b2[0], msg("for association two"));
  EXPECT_EQ(t.relay->stats().dropped_invalid, 0u);
  EXPECT_EQ(t.relay->stats().messages_extracted, 2u);
}

TEST(MultiAssocTest, InterleavedTrafficStaysIsolated) {
  TwoAssociations t;
  t.a1->start();
  t.a2->start();
  t.bus.pump();

  for (int i = 0; i < 10; ++i) {
    t.a1->submit(msg("one-" + std::to_string(i)), 0);
    t.a2->submit(msg("two-" + std::to_string(i)), 0);
  }
  t.bus.pump();

  ASSERT_EQ(t.at_b1.size(), 10u);
  ASSERT_EQ(t.at_b2.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(t.at_b1[static_cast<std::size_t>(i)],
              msg("one-" + std::to_string(i)));
    EXPECT_EQ(t.at_b2[static_cast<std::size_t>(i)],
              msg("two-" + std::to_string(i)));
  }
}

TEST(MultiAssocTest, CrossAssociationReplayRejected) {
  TwoAssociations t;
  t.a1->start();
  t.a2->start();
  t.bus.pump();

  // Capture an S1 from association 1 and replay it stamped as assoc 2:
  // the chain element does not verify against assoc 2's anchors.
  Bytes s1_frame;
  t.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS1 &&
        wire::peek_header(frame)->assoc_id == 1 && s1_frame.empty()) {
      s1_frame = frame;
    }
    return true;
  });
  t.a1->submit(msg("genuine"), 0);
  t.bus.pump();
  ASSERT_FALSE(s1_frame.empty());

  auto cross = std::get<wire::S1Packet>(*wire::decode(s1_frame));
  cross.hdr.assoc_id = 2;
  const auto decision =
      t.relay->on_frame(Direction::kForward, cross.encode());
  EXPECT_EQ(decision, RelayDecision::kDroppedInvalid);
}

TEST(MultiAssocTest, OneAssociationRefusingDoesNotAffectTheOther) {
  TwoAssociations t;
  t.a1->start();
  t.a2->start();
  t.bus.pump();

  t.b1->verifier()->set_accepting(false);  // B1 stops granting A1s
  t.a1->submit(msg("unwanted"), 0);
  t.a2->submit(msg("wanted"), 0);
  t.bus.pump();

  EXPECT_TRUE(t.at_b1.empty());
  ASSERT_EQ(t.at_b2.size(), 1u);
}

}  // namespace
}  // namespace alpha::core
