#include "core/identity.hpp"

#include <gtest/gtest.h>

namespace alpha::core {
namespace {

using crypto::HmacDrbg;

TEST(IdentityTest, RsaSignVerifyRoundtrip) {
  HmacDrbg rng{1};
  const Identity id = Identity::make_rsa(rng, 512);
  EXPECT_EQ(id.alg(), wire::SigAlg::kRsa);

  const auto payload = crypto::as_bytes("handshake payload");
  const Bytes sig = id.sign(crypto::HashAlgo::kSha1, payload, rng);

  const auto peer = PeerIdentity::decode(wire::SigAlg::kRsa, id.encode_public());
  ASSERT_TRUE(peer.has_value());
  EXPECT_TRUE(peer->verify(crypto::HashAlgo::kSha1, payload, sig));
  EXPECT_FALSE(peer->verify(crypto::HashAlgo::kSha1,
                            crypto::as_bytes("other payload"), sig));
}

TEST(IdentityTest, DsaSignVerifyRoundtrip) {
  HmacDrbg rng{2};
  const Identity id = Identity::make_dsa(rng, 512, 160);
  EXPECT_EQ(id.alg(), wire::SigAlg::kDsa);

  const auto payload = crypto::as_bytes("anchors: aa bb");
  const Bytes sig = id.sign(crypto::HashAlgo::kSha1, payload, rng);

  const auto peer = PeerIdentity::decode(wire::SigAlg::kDsa, id.encode_public());
  ASSERT_TRUE(peer.has_value());
  EXPECT_TRUE(peer->verify(crypto::HashAlgo::kSha1, payload, sig));
}

TEST(IdentityTest, EcdsaSignVerifyRoundtrip) {
  for (const auto* curve :
       {&crypto::EcCurve::secp160r1(), &crypto::EcCurve::p256()}) {
    HmacDrbg rng{21};
    const Identity id = Identity::make_ecdsa(rng, *curve);
    const auto expected_alg = curve->name() == "P-256"
                                  ? wire::SigAlg::kEcdsaP256
                                  : wire::SigAlg::kEcdsaP160;
    EXPECT_EQ(id.alg(), expected_alg);

    const auto payload = crypto::as_bytes("sensor anchors");
    const Bytes sig = id.sign(crypto::HashAlgo::kSha1, payload, rng);
    const auto peer = PeerIdentity::decode(expected_alg, id.encode_public());
    ASSERT_TRUE(peer.has_value()) << curve->name();
    EXPECT_EQ(peer->alg(), expected_alg);
    EXPECT_TRUE(peer->verify(crypto::HashAlgo::kSha1, payload, sig));
    EXPECT_FALSE(peer->verify(crypto::HashAlgo::kSha1,
                              crypto::as_bytes("other"), sig));
  }
}

TEST(IdentityTest, EcdsaMalformedKeyAndSignatureRejected) {
  HmacDrbg rng{22};
  const Identity id = Identity::make_ecdsa(rng, crypto::EcCurve::secp160r1());
  Bytes bad_key = id.encode_public();
  bad_key[5] ^= 1;  // not on the curve anymore
  EXPECT_FALSE(
      PeerIdentity::decode(wire::SigAlg::kEcdsaP160, bad_key).has_value());

  const auto peer =
      PeerIdentity::decode(wire::SigAlg::kEcdsaP160, id.encode_public());
  const Bytes odd_sig(13, 0xaa);
  EXPECT_FALSE(peer->verify(crypto::HashAlgo::kSha1, crypto::as_bytes("p"),
                            odd_sig));
}

TEST(IdentityTest, TamperedSignatureRejected) {
  HmacDrbg rng{3};
  const Identity id = Identity::make_rsa(rng, 512);
  const auto payload = crypto::as_bytes("p");
  Bytes sig = id.sign(crypto::HashAlgo::kSha1, payload, rng);
  sig[0] ^= 1;
  const auto peer = PeerIdentity::decode(wire::SigAlg::kRsa, id.encode_public());
  EXPECT_FALSE(peer->verify(crypto::HashAlgo::kSha1, payload, sig));
}

TEST(IdentityTest, PrivateKeySerializationRoundtrip) {
  HmacDrbg rng{31};
  std::vector<Identity> ids;
  ids.push_back(Identity::make_rsa(rng, 512));
  ids.push_back(Identity::make_dsa(rng, 512, 160));
  ids.push_back(Identity::make_ecdsa(rng, crypto::EcCurve::secp160r1()));
  ids.push_back(Identity::make_ecdsa(rng, crypto::EcCurve::p256()));

  for (const auto& id : ids) {
    const Bytes blob = id.serialize_private();
    const auto back = Identity::deserialize_private(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->alg(), id.alg());
    EXPECT_EQ(back->encode_public(), id.encode_public());
    // A signature from the restored key verifies under the original public
    // key, proving the private material survived.
    const auto payload = crypto::as_bytes("restored key");
    const Bytes sig = back->sign(crypto::HashAlgo::kSha1, payload, rng);
    const auto peer = PeerIdentity::decode(id.alg(), id.encode_public());
    EXPECT_TRUE(peer->verify(crypto::HashAlgo::kSha1, payload, sig));
  }
}

TEST(IdentityTest, DeserializeRejectsCorruptedKeys) {
  HmacDrbg rng{32};
  const Identity id = Identity::make_rsa(rng, 512);
  Bytes blob = id.serialize_private();
  blob[10] ^= 1;  // corrupt the modulus: p*q consistency check must fire
  EXPECT_FALSE(Identity::deserialize_private(blob).has_value());
  EXPECT_FALSE(Identity::deserialize_private({}).has_value());
  const Bytes junk{0x09, 0x01, 0x02};
  EXPECT_FALSE(Identity::deserialize_private(junk).has_value());

  // Tampered DSA secret fails the y = g^x consistency check.
  const Identity dsa = Identity::make_dsa(rng, 512, 160);
  Bytes dsa_blob = dsa.serialize_private();
  dsa_blob[dsa_blob.size() - 1] ^= 1;
  EXPECT_FALSE(Identity::deserialize_private(dsa_blob).has_value());
}

TEST(IdentityTest, MalformedPublicKeyRejected) {
  EXPECT_FALSE(PeerIdentity::decode(wire::SigAlg::kRsa, {}).has_value());
  const Bytes junk{0x00, 0x01, 0xff};
  EXPECT_FALSE(PeerIdentity::decode(wire::SigAlg::kRsa, junk).has_value());
  EXPECT_FALSE(PeerIdentity::decode(wire::SigAlg::kDsa, junk).has_value());
  EXPECT_FALSE(PeerIdentity::decode(wire::SigAlg::kNone, junk).has_value());
}

TEST(IdentityTest, GarbageSignatureBytesRejectedNotThrown) {
  HmacDrbg rng{4};
  const Identity id = Identity::make_dsa(rng, 512, 160);
  const auto peer = PeerIdentity::decode(wire::SigAlg::kDsa, id.encode_public());
  const Bytes odd_sig(13, 0xaa);  // not a valid r|s split
  EXPECT_FALSE(peer->verify(crypto::HashAlgo::kSha1, crypto::as_bytes("p"),
                            odd_sig));
}

TEST(IdentityTest, CrossAlgorithmDecodeFails) {
  HmacDrbg rng{5};
  const Identity rsa = Identity::make_rsa(rng, 512);
  // Decoding an RSA key as DSA must not yield a verifier that accepts.
  const auto as_dsa = PeerIdentity::decode(wire::SigAlg::kDsa,
                                           rsa.encode_public());
  if (as_dsa.has_value()) {
    const Bytes sig = rsa.sign(crypto::HashAlgo::kSha1, crypto::as_bytes("x"), rng);
    EXPECT_FALSE(as_dsa->verify(crypto::HashAlgo::kSha1, crypto::as_bytes("x"), sig));
  }
}

}  // namespace
}  // namespace alpha::core
