// MTU-aware batching: with Config::mtu_hint set, every control packet the
// engines emit fits the frame size, even for sensor-class 127 B MTUs.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/path.hpp"

namespace alpha::core {
namespace {

TEST(MtuConfigTest, UnlimitedWhenUnset) {
  Config c;
  c.mode = wire::Mode::kCumulative;
  c.batch_size = 100;
  EXPECT_EQ(max_batch_for_mtu(c, 0), 100u);
}

TEST(MtuConfigTest, ReliableA1BindsForCumulativeMode) {
  // 802.15.4-class: 127 B frames, 16 B MMO digests, reliable ALPHA-C.
  Config c;
  c.algo = crypto::HashAlgo::kMmo128;
  c.mode = wire::Mode::kCumulative;
  c.batch_size = 100;
  c.reliable = true;
  const std::size_t n = max_batch_for_mtu(c, 127);
  EXPECT_GE(n, 1u);
  // A1 = 10 + 4 + 17 + 1 + 2 + 2n*17 must fit 127 -> n <= 2.
  EXPECT_EQ(n, 2u);
}

TEST(MtuConfigTest, UnreliableAllowsBiggerBatches) {
  Config c;
  c.algo = crypto::HashAlgo::kMmo128;
  c.mode = wire::Mode::kCumulative;
  c.batch_size = 100;
  c.reliable = false;
  // S1 = 10+1+4+17+2 + n*17 <= 127 -> n <= 5.
  EXPECT_EQ(max_batch_for_mtu(c, 127), 5u);
}

TEST(MtuConfigTest, NeverBelowOne) {
  Config c;
  c.mode = wire::Mode::kCumulative;
  c.batch_size = 10;
  c.reliable = true;
  EXPECT_EQ(max_batch_for_mtu(c, 8), 1u);  // absurdly small MTU
}

TEST(MtuConfigTest, TreeModesCountRootsNotLeaves) {
  Config c;
  c.mode = wire::Mode::kCumulativeMerkle;
  c.merkle_group = 8;
  c.batch_size = 64;
  // One root covers 8 messages; even a small MTU supports several roots.
  EXPECT_EQ(max_batch_for_mtu(c, 256), 64u);
}

TEST(MtuIntegrationTest, SensorProfileWithPaperBatchJustWorks) {
  // The §4.1.3 profile with the paper's 5 pre-signatures per S1, reliable,
  // on a 127 B MTU: without the hint the A1 exceeds the frame and nothing
  // flows; with it the engines clamp the batch automatically.
  net::Simulator sim;
  net::Network network{sim, 3};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 4 * net::kMillisecond;
  link.bandwidth_bps = 250'000;
  link.mtu = 127;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, link);

  Config config;
  config.algo = crypto::HashAlgo::kMmo128;
  config.mac_kind = crypto::MacKind::kPrefix;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 5;  // the paper's number, naively too big for the MTU
  config.reliable = true;
  config.chain_length = 256;
  config.mtu_hint = 127;
  config.rto_us = 500 * net::kMillisecond;

  ProtectedPath path{network, {0, 1, 2}, config, 1, 42};
  path.start(600 * net::kSecond);
  sim.run_until(2 * net::kSecond);
  ASSERT_TRUE(path.initiator().established());

  for (int i = 0; i < 10; ++i) {
    path.initiator().submit(crypto::Bytes(30, static_cast<std::uint8_t>(i)),
                            sim.now());
  }
  sim.run_until(sim.now() + 120 * net::kSecond);

  EXPECT_EQ(path.delivered_to_responder().size(), 10u);
  EXPECT_EQ(network.total_stats().frames_oversize, 0u);
}

TEST(MtuIntegrationTest, WithoutHintOversizeFramesAreDropped) {
  net::Simulator sim;
  net::Network network{sim, 4};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig link;
  link.mtu = 127;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, link);

  Config config;
  config.algo = crypto::HashAlgo::kMmo128;
  config.mac_kind = crypto::MacKind::kPrefix;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 5;
  config.reliable = true;
  config.chain_length = 256;
  config.mtu_hint = 0;  // no clamping

  ProtectedPath path{network, {0, 1, 2}, config, 1, 42};
  path.start(60 * net::kSecond);
  sim.run_until(2 * net::kSecond);
  ASSERT_TRUE(path.initiator().established());

  for (int i = 0; i < 5; ++i) {
    path.initiator().submit(crypto::Bytes(30, 1), sim.now());
  }
  sim.run_until(sim.now() + 30 * net::kSecond);
  // The oversized A1 dies on the link; nothing completes.
  EXPECT_GT(network.total_stats().frames_oversize, 0u);
  EXPECT_TRUE(path.delivered_to_responder().empty());
}

}  // namespace
}  // namespace alpha::core
