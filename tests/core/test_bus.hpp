// Test harness: queued frame delivery between protocol engines, plus the
// seed-replay hooks used by the chaos/property tests.
//
// Delivering frames synchronously from inside a send callback would re-enter
// the engines (signer -> verifier -> signer ...) while their state is mid-
// update. The bus queues frames and drains them iteratively, like a real
// transport. Hooks allow dropping or tampering frames in flight.
//
// Seed replay: randomized tests draw their seed via chaos_seed(fallback) and
// register a SeedReporter. On failure the seed is printed; exporting it as
// ALPHA_TEST_SEED reruns the exact same fault schedule bit for bit.
#pragma once

#include <deque>
#include <functional>

#include "../support/seed.hpp"
#include "core/host.hpp"
#include "wire/packets.hpp"

namespace alpha::core::testing {

using alpha::testing::SeedReporter;
using alpha::testing::chaos_seed;

/// XORs `mask` into the last body byte of an encoded frame and recomputes
/// the CRC trailer, yielding a wire-valid frame with forged content. Tamper
/// tests go through here so the corruption reaches the MAC / Merkle layer
/// instead of dying at the frame checksum (which is what raw bit flips do
/// now -- see wire::kFrameChecksumSize).
inline void tamper_and_reseal(crypto::Bytes& frame, std::uint8_t mask = 1) {
  const std::size_t body_len = frame.size() - wire::kFrameChecksumSize;
  frame[body_len - 1] ^= mask;
  const std::uint32_t crc =
      wire::frame_checksum(crypto::ByteView{frame.data(), body_len});
  for (std::size_t i = 0; i < wire::kFrameChecksumSize; ++i) {
    frame[body_len + i] = static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
}

class PacketBus {
 public:
  using Hook = std::function<bool(crypto::Bytes&)>;  // false = drop frame

  /// Returns a send callback that enqueues frames toward `destination`.
  std::function<void(crypto::Bytes)> sender(int destination) {
    return [this, destination](crypto::Bytes frame) {
      queue_.push_back({destination, std::move(frame)});
    };
  }

  /// Registers the frame consumer for an endpoint id.
  void attach(int id, std::function<void(crypto::ByteView)> consumer) {
    consumers_[id] = std::move(consumer);
  }

  /// Hook applied to every frame before delivery (tamper/drop).
  void set_hook(Hook hook) { hook_ = std::move(hook); }

  /// Delivers queued frames until quiescent. Returns frames delivered.
  std::size_t pump(std::size_t max_frames = 100000) {
    std::size_t delivered = 0;
    while (!queue_.empty() && delivered < max_frames) {
      auto [dest, frame] = std::move(queue_.front());
      queue_.pop_front();
      if (hook_ && !hook_(frame)) continue;
      const auto it = consumers_.find(dest);
      if (it != consumers_.end()) it->second(frame);
      ++delivered;
    }
    return delivered;
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  std::deque<std::pair<int, crypto::Bytes>> queue_;
  std::map<int, std::function<void(crypto::ByteView)>> consumers_;
  Hook hook_;
};

}  // namespace alpha::core::testing
