// Tests for the protocol extensions: ALPHA-C+M combined mode (§3.3.2),
// selective repeat on nacks (§3.3.3), and chain rekeying.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Reuse the engine-pair harness shape from engine_test.cpp.
struct EnginePair {
  explicit EnginePair(Config config, std::uint64_t seed = 7)
      : rng(seed),
        sig_chain(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng,
            config.chain_length)),
        ack_chain(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng,
            config.chain_length)) {
    SignerEngine::Callbacks scb;
    scb.send = bus.sender(1);
    scb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      deliveries.emplace_back(cookie, status);
    };
    signer.emplace(config, 1, sig_chain, ack_chain.anchor(),
                   ack_chain.length(), std::move(scb));

    VerifierEngine::Callbacks vcb;
    vcb.send = bus.sender(0);
    vcb.on_message = [this](std::uint32_t, std::uint16_t index,
                            ByteView payload) {
      received.emplace_back(index, Bytes(payload.begin(), payload.end()));
    };
    verifier.emplace(config, 1, ack_chain, sig_chain.anchor(),
                     sig_chain.length(), std::move(vcb), rng);

    bus.attach(0, [this](ByteView frame) {
      const auto packet = wire::decode(frame);
      ASSERT_TRUE(packet.has_value());
      if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
        signer->on_a1(*a1, now);
      } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
        signer->on_a2(*a2, now);
      }
    });
    bus.attach(1, [this](ByteView frame) {
      const auto packet = wire::decode(frame);
      ASSERT_TRUE(packet.has_value());
      if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
        verifier->on_s1(*s1);
      } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
        verifier->on_s2(*s2);
      }
    });
  }

  HmacDrbg rng;
  hashchain::HashChain sig_chain;
  hashchain::HashChain ack_chain;
  PacketBus bus;
  std::optional<SignerEngine> signer;
  std::optional<VerifierEngine> verifier;
  std::uint64_t now = 0;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> deliveries;
  std::vector<std::pair<std::uint16_t, Bytes>> received;
};

// ---------------------------------------------------------------------------
// ALPHA-C+M combined mode
// ---------------------------------------------------------------------------

TEST(CumulativeMerkleTest, BatchDeliversAllMessages) {
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 16;
  config.merkle_group = 4;  // 4 roots of 4 leaves each
  EnginePair pair{config};

  for (int i = 0; i < 16; ++i) {
    pair.signer->submit(msg("cm " + std::to_string(i)), 0);
  }
  pair.bus.pump();
  ASSERT_EQ(pair.received.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(pair.received[static_cast<std::size_t>(i)].second,
              msg("cm " + std::to_string(i)));
  }
  EXPECT_EQ(pair.signer->stats().rounds_completed, 1u);  // one S1 for all 16
}

TEST(CumulativeMerkleTest, S1CarriesMultipleRoots) {
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 16;
  config.merkle_group = 4;
  EnginePair pair{config};

  std::optional<wire::S1Packet> seen_s1;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS1) {
      seen_s1 = std::get<wire::S1Packet>(*wire::decode(frame));
    }
    return true;
  });
  for (int i = 0; i < 16; ++i) pair.signer->submit(msg("x"), 0);
  pair.bus.pump();

  ASSERT_TRUE(seen_s1.has_value());
  EXPECT_EQ(seen_s1->mode, wire::Mode::kCumulativeMerkle);
  EXPECT_EQ(seen_s1->merkle_roots.size(), 4u);
  EXPECT_EQ(seen_s1->group_size, 4u);
  EXPECT_EQ(seen_s1->leaf_count, 16u);
}

TEST(CumulativeMerkleTest, ShallowTreesShrinkPaths) {
  // The combination's point (§3.3.2): depth log2(group) instead of
  // log2(batch): group 4 -> 2 siblings per S2 instead of 4 for batch 16.
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 16;
  config.merkle_group = 4;
  EnginePair pair{config};

  std::size_t max_path = 0;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      const auto s2 = std::get<wire::S2Packet>(*wire::decode(frame));
      if (s2.path.has_value()) {
        max_path = std::max(max_path, s2.path->siblings.size());
      }
    }
    return true;
  });
  for (int i = 0; i < 16; ++i) pair.signer->submit(msg("y"), 0);
  pair.bus.pump();
  EXPECT_EQ(max_path, 2u);
  EXPECT_EQ(pair.received.size(), 16u);
}

TEST(CumulativeMerkleTest, PartialLastGroup) {
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 10;  // 3 groups: 4 + 4 + 2
  config.merkle_group = 4;
  EnginePair pair{config};
  for (int i = 0; i < 10; ++i) pair.signer->submit(msg(std::to_string(i)), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.received.size(), 10u);
}

TEST(CumulativeMerkleTest, ReliableUsesAmt) {
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 8;
  config.merkle_group = 4;
  config.reliable = true;
  EnginePair pair{config};
  for (int i = 0; i < 8; ++i) pair.signer->submit(msg("r"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.deliveries.size(), 8u);
  for (const auto& [cookie, status] : pair.deliveries) {
    EXPECT_EQ(status, DeliveryStatus::kAcked);
  }
}

TEST(CumulativeMerkleTest, TamperedPayloadRejected) {
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 8;
  config.merkle_group = 4;
  EnginePair pair{config};
  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      testing::tamper_and_reseal(frame);
    }
    return true;
  });
  for (int i = 0; i < 8; ++i) pair.signer->submit(msg("t"), 0);
  pair.bus.pump();
  EXPECT_TRUE(pair.received.empty());
  EXPECT_GT(pair.verifier->stats().invalid_packets, 0u);
}

TEST(CumulativeMerkleTest, CrossGroupPathRejected) {
  // A payload proven against the wrong group's root must not verify: swap
  // msg_index into another group while keeping the (valid) path.
  Config config;
  config.mode = wire::Mode::kCumulativeMerkle;
  config.batch_size = 8;
  config.merkle_group = 4;
  EnginePair pair{config};
  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      auto s2 = std::get<wire::S2Packet>(*wire::decode(frame));
      if (s2.msg_index < 4) {
        s2.msg_index = static_cast<std::uint16_t>(s2.msg_index + 4);
        frame = s2.encode();
      }
    }
    return true;
  });
  for (int i = 0; i < 8; ++i) pair.signer->submit(msg("g" + std::to_string(i)), 0);
  pair.bus.pump();
  // Group-0 messages were redirected to group 1 and must all fail; group-1
  // messages (untouched) deliver.
  EXPECT_EQ(pair.received.size(), 4u);
  EXPECT_GE(pair.verifier->stats().invalid_packets, 4u);
}

TEST(CumulativeMerkleTest, WirePacketRoundtrip) {
  wire::S1Packet p;
  p.hdr = {1, 2};
  p.mode = wire::Mode::kCumulativeMerkle;
  p.chain_element = crypto::Digest{ByteView{Bytes(20, 1)}};
  p.merkle_roots = {crypto::Digest{ByteView{Bytes(20, 2)}},
                    crypto::Digest{ByteView{Bytes(20, 3)}}};
  p.group_size = 4;
  p.leaf_count = 7;  // 4 + 3

  const auto decoded = wire::decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& s1 = std::get<wire::S1Packet>(*decoded);
  EXPECT_EQ(s1.merkle_roots.size(), 2u);
  EXPECT_EQ(s1.group_size, 4u);
  EXPECT_EQ(s1.leaf_count, 7u);
}

TEST(CumulativeMerkleTest, InconsistentGroupStructureRejected) {
  wire::S1Packet p;
  p.hdr = {1, 2};
  p.mode = wire::Mode::kCumulativeMerkle;
  p.chain_element = crypto::Digest{ByteView{Bytes(20, 1)}};
  p.merkle_roots = {crypto::Digest{ByteView{Bytes(20, 2)}}};
  p.group_size = 4;
  p.leaf_count = 9;  // needs 3 roots, only 1 present
  EXPECT_FALSE(wire::decode(p.encode()).has_value());
}

// ---------------------------------------------------------------------------
// Selective repeat on nack
// ---------------------------------------------------------------------------

TEST(SelectiveRepeatTest, CorruptedS2RetransmittedAndDelivered) {
  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  EnginePair pair{config};

  int corruptions = 0;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2 && corruptions < 2) {
      ++corruptions;
      testing::tamper_and_reseal(frame);  // corrupt the first two S2 copies
    }
    return true;
  });
  pair.signer->submit(msg("eventually"), 0);
  pair.bus.pump();

  ASSERT_EQ(pair.received.size(), 1u);
  EXPECT_EQ(pair.received[0].second, msg("eventually"));
  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kAcked);
  EXPECT_EQ(pair.signer->stats().nacks_received, 2u);
  EXPECT_EQ(pair.signer->stats().s2_retransmits, 2u);
}

TEST(SelectiveRepeatTest, GivesUpAfterRetryBudget) {
  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.max_retries = 3;
  EnginePair pair{config};

  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      testing::tamper_and_reseal(frame);  // every copy corrupted
    }
    return true;
  });
  pair.signer->submit(msg("hopeless"), 0);
  pair.bus.pump();

  ASSERT_EQ(pair.deliveries.size(), 1u);
  EXPECT_EQ(pair.deliveries[0].second, DeliveryStatus::kNacked);
  EXPECT_EQ(pair.signer->stats().s2_retransmits, 3u);
}

TEST(SelectiveRepeatTest, OnlyCorruptedMessagesResent) {
  Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 4;
  config.reliable = true;
  config.retransmit_on_nack = true;
  EnginePair pair{config};

  bool corrupted_once = false;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kS2) {
      const auto s2 = std::get<wire::S2Packet>(*wire::decode(frame));
      if (s2.msg_index == 2 && !corrupted_once) {
        corrupted_once = true;
        testing::tamper_and_reseal(frame);
      }
    }
    return true;
  });
  for (int i = 0; i < 4; ++i) pair.signer->submit(msg("m" + std::to_string(i)), 0);
  pair.bus.pump();

  EXPECT_EQ(pair.received.size(), 4u);
  EXPECT_EQ(pair.signer->stats().s2_retransmits, 1u);  // only message 2
  for (const auto& [cookie, status] : pair.deliveries) {
    EXPECT_EQ(status, DeliveryStatus::kAcked);
  }
}

// ---------------------------------------------------------------------------
// Chain rekeying
// ---------------------------------------------------------------------------

struct HostPair {
  explicit HostPair(Config config) : rng_a(1), rng_b(2) {
    Host::Callbacks a_cb;
    a_cb.send = bus.sender(1);
    a_cb.on_delivery = [this](std::uint64_t, DeliveryStatus status) {
      if (status == DeliveryStatus::kSent || status == DeliveryStatus::kAcked) {
        ++ok;
      } else {
        ++failed;
      }
    };
    a.emplace(config, 7, true, rng_a, std::move(a_cb));
    Host::Callbacks b_cb;
    b_cb.send = bus.sender(0);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(config, 7, false, rng_b, std::move(b_cb));
    bus.attach(0, [this](ByteView f) { a->on_frame(f, now); });
    bus.attach(1, [this](ByteView f) { b->on_frame(f, now); });
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<Host> a, b;
  std::uint64_t now = 0;
  std::vector<Bytes> at_b;
  int ok = 0, failed = 0;
};

TEST(RekeyTest, LongStreamSurvivesChainExhaustion) {
  Config config;
  config.chain_length = 32;    // only ~15 rounds per chain
  config.rekey_threshold = 8;  // rotate when fewer than 8 elements remain
  HostPair pair{config};
  pair.a->start();
  pair.bus.pump();

  // 100 messages >> 15 rounds: impossible without rekeying.
  for (int i = 0; i < 100; ++i) {
    pair.a->submit(msg("long " + std::to_string(i)), pair.now);
    pair.bus.pump();
    pair.now += 1000;
    pair.a->on_tick(pair.now);  // drives rekey checks
    pair.b->on_tick(pair.now);
    pair.bus.pump();
  }

  EXPECT_EQ(pair.at_b.size(), 100u);
  EXPECT_EQ(pair.failed, 0);
  EXPECT_EQ(pair.ok, 100);
}

TEST(RekeyTest, WithoutRekeyingTheChainExhausts) {
  Config config;
  config.chain_length = 32;
  config.rekey_threshold = 0;  // disabled
  HostPair pair{config};
  pair.a->start();
  pair.bus.pump();

  for (int i = 0; i < 100; ++i) {
    pair.a->submit(msg("x"), pair.now);
    pair.bus.pump();
  }
  EXPECT_LT(pair.at_b.size(), 100u);
  EXPECT_GT(pair.failed, 0);
}

TEST(RekeyTest, ReplayedHandshakeRejected) {
  Config config;
  config.chain_length = 64;
  HostPair pair{config};

  // Capture the initial HS1.
  Bytes hs1_copy;
  pair.bus.set_hook([&](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kHs1 && hs1_copy.empty()) {
      hs1_copy = frame;
    }
    return true;
  });
  pair.a->start();
  pair.bus.pump();
  ASSERT_FALSE(hs1_copy.empty());
  ASSERT_TRUE(pair.b->established());

  // Some traffic advances the chains.
  pair.a->submit(msg("one"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.at_b.size(), 1u);

  // Replaying the original HS1 must NOT reset B to the original anchors
  // (which would re-validate already-disclosed elements).
  pair.b->on_frame(hs1_copy, 0);
  pair.bus.pump();
  pair.a->submit(msg("two"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 2u);  // association still healthy
}

TEST(RekeyTest, RekeyPendingFlagLifecycle) {
  Config config;
  config.chain_length = 16;
  config.rekey_threshold = 14;  // triggers almost immediately
  HostPair pair{config};
  pair.a->start();
  pair.bus.pump();

  // The threshold-hit rekey fires right at the round boundary -- when the
  // settling A2 arrives, inside the pump -- so hold back HS2 to make the
  // in-flight window observable.
  pair.bus.set_hook([](Bytes& frame) {
    return wire::peek_type(frame) != wire::PacketType::kHs2;
  });
  pair.a->submit(msg("use up a round"), 0);
  pair.bus.pump();
  EXPECT_TRUE(pair.a->rekey_pending());  // HS1 out at the boundary
  pair.bus.set_hook(nullptr);
  pair.a->on_tick(1'000'000);  // retransmit HS1
  pair.bus.pump();             // HS2 returns
  EXPECT_FALSE(pair.a->rekey_pending());

  pair.a->submit(msg("after rekey"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 2u);
}

}  // namespace
}  // namespace alpha::core
