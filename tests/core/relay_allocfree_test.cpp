// Zero-allocation assertions for the relay data fast path. This binary
// replaces global operator new/delete (alloc_hook.hpp: exactly one TU per
// binary) and proves that a steady-state S2 -- peek, zero-copy parse_s2,
// chain accept, keyed MAC verify, forward -- costs literally zero heap
// allocations per frame once the pipeline is warm.
//
// Control traffic (S1/A1/A2) still goes through the allocating full decode,
// so the measurement brackets ONLY the S2 frames: per message, the round's
// S1 and A1 are fed outside the counted window and the S2 inside it.
#include "support/alloc_hook.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "core/host.hpp"
#include "core/relay_pipeline.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using testsupport::ScopedAllocCount;

struct ScheduledFrame {
  Direction dir = Direction::kForward;
  Bytes frame;
};

std::vector<ScheduledFrame> record_traffic(const Config& config,
                                           int messages) {
  std::vector<ScheduledFrame> trace;
  std::deque<ScheduledFrame> queue;
  crypto::HmacDrbg rng_a(1), rng_b(2);
  std::optional<Host> a, b;
  Host::Callbacks a_cb;
  a_cb.send = [&](Bytes f) {
    queue.push_back({Direction::kForward, std::move(f)});
  };
  a.emplace(config, /*assoc_id=*/7, /*initiator=*/true, rng_a,
            std::move(a_cb));
  Host::Callbacks b_cb;
  b_cb.send = [&](Bytes f) {
    queue.push_back({Direction::kReverse, std::move(f)});
  };
  b.emplace(config, /*assoc_id=*/7, /*initiator=*/false, rng_b,
            std::move(b_cb));

  const auto pump = [&] {
    while (!queue.empty()) {
      ScheduledFrame f = std::move(queue.front());
      queue.pop_front();
      (f.dir == Direction::kForward ? *b : *a).on_frame(f.frame, 0);
      trace.push_back(std::move(f));
    }
  };
  a->start();
  pump();
  EXPECT_TRUE(a->established());
  for (int i = 0; i < messages; ++i) {
    a->submit(Bytes(256, static_cast<std::uint8_t>(i)), 0);
    pump();
  }
  return trace;
}

TEST(RelayAllocFree, SteadyStateS2ForwardIsAllocationFree) {
  Config config;
  config.chain_length = 4096;  // no rekey inside the measured window
  const int kWarmup = 8;
  const int kMeasured = 64;
  const auto trace = record_traffic(config, kWarmup + kMeasured);

  std::uint64_t forwarded = 0;
  RelayPipeline::Callbacks cb;
  cb.forward_batch = [&](const RelayPipeline::ForwardItem*,
                         std::size_t count) { forwarded += count; };
  RelayPipeline pipe(config, {}, std::move(cb), /*batch_capacity=*/16);

  // Split the recorded schedule at the warmup boundary: everything up to
  // and including the kWarmup-th S2 primes the pipeline (assoc table,
  // recycled round vectors, pending-slot buffers, MAC midstates).
  std::size_t split = 0;
  int s2_seen = 0;
  for (; split < trace.size() && s2_seen < kWarmup; ++split) {
    if (wire::peek_type(trace[split].frame) == wire::PacketType::kS2) {
      ++s2_seen;
    }
  }
  for (std::size_t i = 0; i < split; ++i) {
    pipe.enqueue(trace[i].dir, trace[i].frame);
    pipe.flush();
  }

  // Steady state: S1/A1 control frames feed outside the counted window
  // (their full decode allocates by design); every S2 is enqueued,
  // flushed, and forwarded inside it.
  const std::uint64_t forwarded_before = pipe.stats().forwarded;
  std::uint64_t delta = 0;
  std::uint64_t measured_s2 = 0;
  for (std::size_t i = split; i < trace.size(); ++i) {
    const bool is_s2 =
        wire::peek_type(trace[i].frame) == wire::PacketType::kS2;
    if (!is_s2) {
      pipe.enqueue(trace[i].dir, trace[i].frame);
      pipe.flush();
      continue;
    }
    ++measured_s2;
    const ScopedAllocCount allocs;
    pipe.enqueue(trace[i].dir, trace[i].frame);
    pipe.flush();
    delta += allocs.delta();
  }

  EXPECT_EQ(measured_s2, static_cast<std::uint64_t>(kMeasured));
  // Every measured S2 was verified and forwarded...
  EXPECT_EQ(pipe.stats().forwarded - forwarded_before,
            trace.size() - split);
  EXPECT_EQ(pipe.stats().dropped_invalid, 0u);
  EXPECT_GT(forwarded, 0u);
  // ...at zero heap allocations per frame.
  EXPECT_EQ(delta, 0u);
}

TEST(RelayAllocFree, BatchedS2FlushIsAllocationFree) {
  // Same property with real batching: rounds of ALPHA-C traffic carry
  // several S2s per S1, so whole verification batches of S2s flush inside
  // the counted window.
  Config config;
  config.mode = Mode::kCumulative;
  config.batch_size = 8;
  config.chain_length = 4096;
  const int kWarmupMsgs = 16;
  const int kMeasuredMsgs = 64;
  const auto trace = record_traffic(config, kWarmupMsgs + kMeasuredMsgs);

  RelayPipeline pipe(config, {}, {}, /*batch_capacity=*/8);

  std::size_t split = 0;
  int s2_seen = 0;
  for (; split < trace.size() && s2_seen < kWarmupMsgs; ++split) {
    if (wire::peek_type(trace[split].frame) == wire::PacketType::kS2) {
      ++s2_seen;
    }
  }
  for (std::size_t i = 0; i < split; ++i) {
    pipe.enqueue(trace[i].dir, trace[i].frame);
  }
  pipe.flush();

  // Grow every pending-slot buffer to the largest frame in the schedule:
  // slots recycle round-robin, and a slot warmed only by a small control
  // frame would otherwise grow inside the counted window. (The replayed
  // frame is a duplicate S2 of a warmup round; dup-forwarding is benign.)
  const auto& largest = *std::max_element(
      trace.begin(), trace.end(), [](const auto& x, const auto& y) {
        return x.frame.size() < y.frame.size();
      });
  for (std::size_t i = 0; i < pipe.batch_capacity(); ++i) {
    pipe.enqueue(largest.dir, largest.frame);
  }
  pipe.flush();

  std::uint64_t delta = 0;
  std::size_t runs = 0;
  for (std::size_t i = split; i < trace.size();) {
    if (wire::peek_type(trace[i].frame) != wire::PacketType::kS2) {
      pipe.enqueue(trace[i].dir, trace[i].frame);
      pipe.flush();
      ++i;
      continue;
    }
    // A run of consecutive S2s: enqueue them all, flush once -- the
    // whole batched verify must stay allocation-free.
    const ScopedAllocCount allocs;
    while (i < trace.size() &&
           wire::peek_type(trace[i].frame) == wire::PacketType::kS2) {
      pipe.enqueue(trace[i].dir, trace[i].frame);
      ++i;
    }
    pipe.flush();
    delta += allocs.delta();
    ++runs;
  }

  EXPECT_GT(runs, 0u);
  EXPECT_EQ(pipe.stats().dropped_invalid, 0u);
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace alpha::core
