// The adaptivity loop under the deterministic simulator: the controller's
// decision sequence must be a pure function of the seeded schedule --
// bit-identical on replay and, crucially, at ANY worker count. The inline
// ShardedNode drive routes the same frames through different shard layouts
// as `workers` varies; per-association controllers, per-association health
// monitors and per-association signal deltas mean none of that routing can
// leak into a verdict. These tests pin exactly that, plus end-to-end
// convergence: the controller actually promotes on clean channels, demotes
// under loss/partitions, and its reconfigurations land on both ends without
// losing a message.
#include "core/adapt.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/sharded_node.hpp"
#include "net/network.hpp"
#include "../support/seed.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;
using alpha::testing::SeedReporter;
using alpha::testing::chaos_seed;

Config adaptive_config() {
  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 4096;  // room for many reconfig rekeys
  return config;
}

AdaptiveController::Options controller_options() {
  AdaptiveController::Options o;
  o.interval_us = 500 * kMillisecond;
  return o;
}

/// Everything about one association's adaptive trajectory that must replay
/// bit-identically: the controller counters, the rung it ended on, the loss
/// EWMA to the last bit, and the profile both ends actually run.
struct AssocOutcome {
  Mode mode = Mode::kBase;
  std::size_t batch = 0;
  std::uint64_t reconfigs_applied = 0;
  std::uint64_t adapt_evaluations = 0;
  std::uint64_t adapt_switches = 0;
  std::size_t adapt_profile = 0;
  double adapt_loss_ewma = 0.0;
  std::size_t delivered = 0;

  bool operator==(const AssocOutcome&) const = default;
};

struct AdaptiveRunResult {
  std::map<std::uint32_t, AssocOutcome> per_assoc;
  std::uint64_t total_switches = 0;
  std::uint64_t total_reconfigs = 0;

  bool operator==(const AdaptiveRunResult&) const = default;
};

/// One full closed-loop run: `ids` initiator associations with the
/// controller enabled, a clean warmup (promotions), a mid-run partition
/// (loss pressure, demotions), and a clean tail. With chaos_seed == 0 the
/// network draws no randomness at all (no jitter, no loss, partitions are
/// scheduled simulator events), so the run is a pure function of
/// (ids, workers); with a seed it adds Gilbert-Elliott bursts + duplication
/// + reordering on top and is a pure function of (ids, workers, seed).
AdaptiveRunResult adaptive_run(std::uint32_t workers,
                               const std::vector<std::uint32_t>& ids,
                               std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, /*seed=*/1337);
  if (seed != 0) network.set_chaos_seed(seed);
  network.add_node(0);
  network.add_node(1);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  network.add_link(0, 1, link);
  if (seed != 0) {
    net::FaultConfig faults;
    faults.duplicate_rate = 0.1;
    faults.reorder_rate = 0.1;
    net::BurstLossConfig burst;
    burst.p_enter_bad = 0.02;
    burst.p_exit_bad = 0.2;
    burst.loss_bad = 0.5;
    faults.burst = burst;
    network.set_link_faults(0, 1, faults);
  }
  // Loss phase: the path dies for 4 s in the middle of the run. Scheduled
  // in virtual time, so it hits the same protocol state at every worker
  // count.
  network.schedule_partition(0, 1, 30 * kSecond, 4 * kSecond);

  const Config config = adaptive_config();
  std::map<std::uint32_t, std::size_t> delivered;

  ShardedNode::Options a_opts;
  a_opts.shard.config = config;
  a_opts.shard.seed = 7;
  a_opts.shard.adaptive = controller_options();
  a_opts.workers = workers;
  ShardedNode a{std::make_unique<net::SimTransport>(network, 0), a_opts, {}};

  ShardedNode::Options b_opts;
  b_opts.shard.config = config;
  b_opts.shard.seed = 8;
  b_opts.shard.accept_inbound = true;
  b_opts.workers = workers;
  ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&delivered](std::uint32_t assoc, crypto::ByteView) {
    ++delivered[assoc];
  };
  ShardedNode b{std::make_unique<net::SimTransport>(network, 1), b_opts,
                b_cbs};

  for (const auto id : ids) a.add_initiator(id, /*peer=*/1);
  for (const auto id : ids) a.start(id);
  sim.run_until(10 * kSecond);
  EXPECT_EQ(a.established_count(), ids.size());

  // Steady trickle across the partition: clean windows before 30 s, pure
  // retransmit pressure during it, clean recovery after.
  int burst_no = 0;
  for (net::SimTime t = 10 * kSecond; t <= 70 * kSecond; t += kSecond) {
    for (const auto id : ids) {
      a.submit(id, Bytes(32, static_cast<std::uint8_t>(burst_no)));
    }
    ++burst_no;
    sim.run_until(t);
  }
  sim.run_until(140 * kSecond);  // drain every retransmission

  AdaptiveRunResult r;
  const NodeSnapshot sa = a.snapshot(/*per_assoc=*/true);
  for (const auto& as : sa.assocs) {
    AssocOutcome o;
    o.mode = as.mode;
    o.batch = as.batch;
    o.reconfigs_applied = as.reconfigs_applied;
    o.adapt_evaluations = as.adapt_evaluations;
    o.adapt_switches = as.adapt_switches;
    o.adapt_profile = as.adapt_profile;
    o.adapt_loss_ewma = as.adapt_loss_ewma;
    o.delivered = delivered[as.assoc_id];
    r.per_assoc[as.assoc_id] = o;
  }
  r.total_switches = sa.adapt_switches;
  r.total_reconfigs = sa.reconfigs_applied;
  return r;
}

TEST(AdaptiveDeterminismTest, ControllerConvergesAndRecovers) {
  const auto ids = std::vector<std::uint32_t>{1, 2, 3, 4};
  const AdaptiveRunResult run = adaptive_run(/*workers=*/2, ids, /*seed=*/0);

  for (const auto id : ids) {
    const auto it = run.per_assoc.find(id);
    ASSERT_NE(it, run.per_assoc.end()) << "assoc " << id;
    const AssocOutcome& o = it->second;
    // Every message delivered despite the partition and the profile
    // switches it provoked.
    EXPECT_EQ(o.delivered, 61u) << "assoc " << id;
    // The loop actually closed: evaluations happened, the clean warmup
    // promoted off the base rung, and the reconfigurations were applied at
    // rekey boundaries on the live association.
    EXPECT_GT(o.adapt_evaluations, 10u) << "assoc " << id;
    EXPECT_GT(o.adapt_switches, 0u) << "assoc " << id;
    EXPECT_GT(o.reconfigs_applied, 0u) << "assoc " << id;
    // By the clean tail the controller is back above the base rung (the
    // partition demoted it; recovery re-promoted).
    EXPECT_GT(o.adapt_profile, 0u) << "assoc " << id;
    EXPECT_NE(o.mode, Mode::kBase) << "assoc " << id;
    EXPECT_GT(o.batch, 1u) << "assoc " << id;
  }
  EXPECT_EQ(run.total_switches >= 8u, true) << run.total_switches;
  EXPECT_EQ(run.total_reconfigs, [&] {
    std::uint64_t sum = 0;
    for (const auto& [id, o] : run.per_assoc) sum += o.reconfigs_applied;
    return sum;
  }());
}

TEST(AdaptiveDeterminismTest, VerdictsAreBitIdenticalAtAnyWorkerCount) {
  // Same schedule, different shard layouts: 4 associations hash across 1,
  // 2 and 4 shards, yet every controller's trajectory -- down to the loss
  // EWMA bits -- must be identical, because every input it sees is
  // per-association. Frame routing, ring order and shard count must not be
  // observable.
  const auto ids = std::vector<std::uint32_t>{1, 2, 3, 4};
  const AdaptiveRunResult w1 = adaptive_run(1, ids, /*seed=*/0);
  const AdaptiveRunResult w2 = adaptive_run(2, ids, /*seed=*/0);
  const AdaptiveRunResult w4 = adaptive_run(4, ids, /*seed=*/0);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
}

TEST(AdaptiveDeterminismTest, SeededChaosRunReplaysBitIdentically) {
  const std::uint64_t seed = chaos_seed(0xada97);
  SeedReporter reporter{seed};
  // One association so the chaos RNG draw order is itself worker-count
  // invariant (a single frame stream), letting the replay check compose
  // with the worker sweep under genuine Gilbert-Elliott bursts,
  // duplication and reordering.
  const auto ids = std::vector<std::uint32_t>{5};
  const AdaptiveRunResult first = adaptive_run(2, ids, seed);
  const AdaptiveRunResult second = adaptive_run(2, ids, seed);
  EXPECT_EQ(first, second);

  const AdaptiveRunResult w1 = adaptive_run(1, ids, seed);
  const AdaptiveRunResult w4 = adaptive_run(4, ids, seed);
  EXPECT_EQ(first, w1);
  EXPECT_EQ(first, w4);

  // The controller reacted to the chaos at all (the schedule is not
  // vacuous) and the association survived it.
  const AssocOutcome& o = first.per_assoc.at(5);
  EXPECT_GT(o.adapt_evaluations, 10u);
  EXPECT_EQ(o.delivered, 61u);
}

}  // namespace
}  // namespace alpha::core
