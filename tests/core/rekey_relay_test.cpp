// Rekeying interactions with relays and duplex traffic: relays observe the
// rekey handshake in transit and keep authenticating after the rotation.
#include <gtest/gtest.h>

#include "core/path.hpp"

namespace alpha::core {
namespace {

using net::kMillisecond;
using net::kSecond;

TEST(RekeyRelayTest, RelaysFollowChainRotation) {
  net::Simulator sim;
  net::Network network{sim, 5};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1);

  Config config;
  config.chain_length = 32;    // ~15 rounds per chain
  config.rekey_threshold = 8;  // forces several rotations below
  config.rto_us = 50 * kMillisecond;

  ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 55};
  path.start(/*tick_horizon_us=*/600 * kSecond);
  sim.run_until(kSecond);
  ASSERT_TRUE(path.initiator().established());

  // 60 messages >> one chain's capacity.
  for (int i = 0; i < 60; ++i) {
    path.initiator().submit(crypto::Bytes(100, static_cast<std::uint8_t>(i)),
                            sim.now());
    sim.run_until(sim.now() + 200 * kMillisecond);
  }
  sim.run_until(sim.now() + 30 * kSecond);

  EXPECT_EQ(path.delivered_to_responder().size(), 60u);
  for (std::size_t i = 0; i < path.relay_count(); ++i) {
    // Relays verified everything across multiple chain generations.
    EXPECT_EQ(path.relay(i).stats().dropped_invalid, 0u);
    EXPECT_EQ(path.relay(i).stats().messages_extracted, 60u);
  }
}

TEST(RekeyRelayTest, DuplexTrafficSurvivesRotation) {
  net::Simulator sim;
  net::Network network{sim, 6};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1);

  Config config;
  config.chain_length = 32;
  config.rekey_threshold = 8;
  config.rto_us = 50 * kMillisecond;

  ProtectedPath path{network, {0, 1, 2}, config, 1, 77};
  path.start(600 * kSecond);
  sim.run_until(kSecond);

  for (int i = 0; i < 40; ++i) {
    path.initiator().submit(crypto::Bytes(50, 0xaa), sim.now());
    path.responder().submit(crypto::Bytes(50, 0xbb), sim.now());
    sim.run_until(sim.now() + 300 * kMillisecond);
  }
  sim.run_until(sim.now() + 30 * kSecond);

  // Both directions complete: the rotation replaces chains for both flows.
  EXPECT_EQ(path.delivered_to_responder().size(), 40u);
  EXPECT_EQ(path.delivered_to_initiator().size(), 40u);
}

TEST(RekeyRelayTest, RekeySurvivesLossyPath) {
  net::Simulator sim;
  net::Network network{sim, 7};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  net::LinkConfig lossy;
  lossy.loss_rate = 0.15;
  lossy.latency = 2 * kMillisecond;
  for (net::NodeId id = 0; id < 2; ++id) network.add_link(id, id + 1, lossy);

  Config config;
  config.chain_length = 32;
  config.rekey_threshold = 8;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 40;

  ProtectedPath path{network, {0, 1, 2}, config, 1, 88};
  path.start(/*tick_horizon_us=*/3000 * kSecond);
  sim.run_until(30 * kSecond);  // handshake retransmission is automatic now
  ASSERT_TRUE(path.initiator().established());

  for (int i = 0; i < 30; ++i) {
    path.initiator().submit(crypto::Bytes(80, 0x11), sim.now());
    sim.run_until(sim.now() + 2 * kSecond);
  }
  sim.run_until(sim.now() + 500 * kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    if (status == DeliveryStatus::kAcked) ++acked;
  }
  // Rekey + reliable mode: everything eventually lands despite loss and
  // multiple chain rotations.
  EXPECT_EQ(acked, 30u);
  EXPECT_EQ(path.delivered_to_responder().size(), 30u);
}

}  // namespace
}  // namespace alpha::core
