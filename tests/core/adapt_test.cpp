// The adaptivity loop: AdaptiveController policy + the rekey-boundary
// reconfiguration protocol it drives.
//
// Controller tests pin the deterministic ladder policy (promotion patience,
// demotion priorities, EWMA loss tracking, NaN-latency safety). Host tests
// pin the protocol guarantees the mode-transition bugfix sweep closed:
// a reconfig staged mid-rekey is delayed but never lost and never rotates
// chains twice; announcements survive duplication/loss/reordering of the
// rekey handshake without desyncing the two ends; cookies stay unique
// across engine swaps; batch-size reconfigs mid-association deliver every
// message under chaos; and a revived rekey re-anchors its retransmission
// timer instead of instantly burning budget on a duplicate.
#include "core/adapt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/host.hpp"
#include "crypto/random.hpp"
#include "test_bus.hpp"
#include "trace/trace.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

AdaptiveController::Options fast_options() {
  AdaptiveController::Options o;
  o.interval_us = 1000;
  return o;
}

/// One clean window with traffic: low enough retransmit share to promote.
AdaptSignals clean_window() {
  AdaptSignals s;
  s.s1_sent = 10;
  s.s2_sent = 100;
  s.retransmits = 0;
  s.rounds_completed = 10;
  s.max_retries = 5;
  return s;
}

/// One lossy window: a third of all sends were retransmissions.
AdaptSignals lossy_window() {
  AdaptSignals s = clean_window();
  s.retransmits = 55;  // 55 / (10 + 100 + 55) = 1/3
  return s;
}

// ------------------------------------------------------- controller policy

TEST(AdaptiveControllerTest, StartsAtLadderRungNearestBaseConfig) {
  Config base;  // mode kBase, batch 1
  AdaptiveController at_base(1, base, fast_options());
  EXPECT_EQ(at_base.profile().mode, Mode::kBase);
  EXPECT_EQ(at_base.profile().batch, 1u);

  Config c16 = base;
  c16.mode = Mode::kCumulative;
  c16.batch_size = 16;
  AdaptiveController at_c16(1, c16, fast_options());
  EXPECT_EQ(at_c16.profile().mode, Mode::kCumulative);
  EXPECT_EQ(at_c16.profile().batch, 16u);

  // No exact rung: lands on the nearest batch.
  Config c12 = base;
  c12.mode = Mode::kCumulative;
  c12.batch_size = 12;
  AdaptiveController at_c12(1, c12, fast_options());
  EXPECT_EQ(at_c12.profile().batch, 16u);
}

TEST(AdaptiveControllerTest, PromotionNeedsPatienceThenCooldown) {
  AdaptiveController c(1, Config{}, fast_options());
  const std::size_t start = c.profile_index();

  // First clean window: patience not yet met, no switch.
  std::uint64_t now = 0;
  EXPECT_FALSE(c.observe(clean_window(), now).has_value());
  EXPECT_EQ(c.profile_index(), start);

  // Second clean window: promotes one rung.
  now += 1000;
  const auto d = c.observe(clean_window(), now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kPromoteClean);
  EXPECT_EQ(c.profile_index(), start + 1);
  EXPECT_EQ(d->target.batch_size, c.profile().batch);
  EXPECT_EQ(d->target.mode, c.profile().mode);

  // Cooldown (2 windows) + patience (2 windows) block the next promotion
  // until enough further clean windows pass.
  now += 1000;
  EXPECT_FALSE(c.observe(clean_window(), now).has_value());
  now += 1000;
  EXPECT_FALSE(c.observe(clean_window(), now).has_value());
  now += 1000;
  EXPECT_TRUE(c.observe(clean_window(), now).has_value());
  EXPECT_EQ(c.profile_index(), start + 2);
  EXPECT_EQ(c.switches(), 2u);
  EXPECT_EQ(c.evaluations(), 5u);
}

TEST(AdaptiveControllerTest, LossDemotesStepwiseAndSeverelyToBase) {
  Config base;
  base.mode = Mode::kCumulative;
  base.batch_size = 16;  // rung 4
  AdaptiveController c(1, base, fast_options());
  const std::size_t start = c.profile_index();

  // Moderate loss: one rung down (demotions ignore cooldown).
  std::uint64_t now = 0;
  auto d = c.observe(lossy_window(), now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteLoss);
  EXPECT_EQ(c.profile_index(), start - 1);

  // A catastrophic window pushes the EWMA over severe_loss: straight to
  // the most robust rung, not one step at a time.
  now += 1000;
  AdaptSignals heavy = clean_window();
  heavy.retransmits = 330;  // 330 / 440: three quarters were retransmissions
  d = c.observe(heavy, now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(c.profile_index(), 0u);
  EXPECT_EQ(c.profile().mode, Mode::kBase);
  EXPECT_EQ(c.profile().batch, 1u);
  // Robust rung: fatter retry budget and earlier rekey cadence.
  Config with_threshold;
  with_threshold.rekey_threshold = 8;
  AdaptiveController robust(2, with_threshold, fast_options());
  const wire::ReconfigAnnounce r = robust.reconfig();
  EXPECT_GT(r.max_retries, with_threshold.max_retries);
  EXPECT_EQ(r.rekey_threshold, 16u);  // 2x headroom on rung 0
}

TEST(AdaptiveControllerTest, PromotionSnapsBackToThePreDemotionRung) {
  Config base;
  base.mode = Mode::kCumulative;
  base.batch_size = 16;  // rung 4
  AdaptiveController c(1, base, fast_options());
  const std::size_t start = c.profile_index();

  // Two heavy windows: stepwise demote, then severe straight to rung 0.
  AdaptSignals heavy = clean_window();
  heavy.retransmits = 330;  // 3/4 of sends were retransmissions
  std::uint64_t now = 0;
  c.observe(heavy, now);
  now += 1000;
  c.observe(heavy, now);
  ASSERT_EQ(c.profile_index(), 0u);

  // Clean windows decay the EWMA; the first promotion does NOT re-climb one
  // rung at a time -- it snaps straight back to the rung the demotion
  // episode fell from, which was proven sustainable before the disturbance.
  std::optional<AdaptDecision> d;
  for (int i = 0; i < 20 && !d.has_value(); ++i) {
    now += 1000;
    d = c.observe(clean_window(), now);
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kPromoteClean);
  EXPECT_EQ(c.profile_index(), start);
  EXPECT_EQ(d->target.batch_size, 16u);
}

TEST(AdaptiveControllerTest, BacklogFlushPromotesThroughAStaleEwma) {
  Config base;
  base.mode = Mode::kCumulative;
  base.batch_size = 16;  // rung 4
  AdaptiveController c(1, base, fast_options());
  const std::size_t start = c.profile_index();

  AdaptSignals heavy = clean_window();
  heavy.retransmits = 330;
  std::uint64_t now = 0;
  c.observe(heavy, now);
  now += 1000;
  c.observe(heavy, now);
  ASSERT_EQ(c.profile_index(), 0u);
  ASSERT_GT(c.loss_ewma(), 0.3);

  // The disturbance ends: one window of clean traffic with a deep backlog
  // (a healed partition's queue). The stale EWMA would demand many windows
  // of decay -- exactly the time the backlog would drain at batch 1 -- so
  // the flush override promotes immediately, ignoring patience and
  // cooldown, and restarts the EWMA from the fresh window's measurement.
  AdaptSignals flush = clean_window();
  flush.backlog = 100;
  now += 1000;
  const auto d = c.observe(flush, now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kPromoteFlush);
  EXPECT_EQ(c.profile_index(), start);
  EXPECT_LT(c.loss_ewma(), 0.01);
}

TEST(AdaptiveControllerTest, HealthAndBudgetPressureDemote) {
  Config base;
  base.mode = Mode::kCumulative;
  base.batch_size = 8;
  AdaptiveController c(1, base, fast_options());
  const std::size_t start = c.profile_index();

  AdaptSignals sick = clean_window();
  sick.health = 1;  // degraded
  auto d = c.observe(sick, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteHealth);
  EXPECT_EQ(c.profile_index(), start - 1);

  AdaptSignals burning = clean_window();
  burning.round_retries = 4;
  burning.max_retries = 5;  // 80% of the budget gone
  d = c.observe(burning, 1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteBudget);
  EXPECT_EQ(c.profile_index(), start - 2);
}

TEST(AdaptiveControllerTest, SustainedPressureEscalatesToMostRobustRung) {
  // During a partition the loss EWMA is blind (an S1-phase round
  // retransmits one frame per backoff, under min_window_sends), so the
  // watchdog/budget signals must escalate on their own: one hot window
  // steps down a rung, two in a row drop straight to rung 0.
  Config base;
  base.mode = Mode::kCumulativeMerkle;
  base.batch_size = 64;
  AdaptiveController health_c(1, base, fast_options());
  const std::size_t top = health_c.profile_index();
  ASSERT_GT(top, 1u);

  AdaptSignals sick = clean_window();
  sick.health = 1;
  sick.round_retries = 3;  // budget corroboration: the round is pinned
  sick.max_retries = 6;
  auto d = health_c.observe(sick, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(health_c.profile_index(), top - 1);
  d = health_c.observe(sick, 1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteHealth);
  EXPECT_EQ(health_c.profile_index(), 0u);

  // Watchdog noise without budget corroboration (a transient wedge, a
  // rekey-storm blip) demotes one defensive rung, then holds -- it never
  // walks the whole ladder down, and it keeps promotions blocked.
  AdaptiveController noise_c(1, base, fast_options());
  AdaptSignals noisy = clean_window();
  noisy.health = 1;
  d = noise_c.observe(noisy, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(noise_c.profile_index(), top - 1);
  EXPECT_FALSE(noise_c.observe(noisy, 1000).has_value());
  EXPECT_FALSE(noise_c.observe(noisy, 2000).has_value());
  EXPECT_EQ(noise_c.profile_index(), top - 1);

  AdaptiveController budget_c(1, base, fast_options());
  AdaptSignals burning = clean_window();
  burning.round_retries = 4;
  burning.max_retries = 5;
  d = budget_c.observe(burning, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(budget_c.profile_index(), top - 1);
  d = budget_c.observe(burning, 1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteBudget);
  EXPECT_EQ(budget_c.profile_index(), 0u);

  // A single healthy window breaks the streak: pressure afterwards starts
  // over at one rung, not at "straight to base".
  AdaptiveController reset_c(1, base, fast_options());
  ASSERT_TRUE(reset_c.observe(sick, 0).has_value());
  reset_c.observe(clean_window(), 1000);
  d = reset_c.observe(sick, 2000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(reset_c.profile_index(), top - 2);
}

TEST(AdaptiveControllerTest, PromoteHoldDemandsCleanTimeNotJustWindows) {
  // Window-counted patience saturates within one traffic burst; the hold
  // gate measures clean *time* since the last pressure signal or switch, so
  // sparse bursts cannot promote seconds after an outage.
  AdaptiveController::Options opts = fast_options();
  opts.promote_hold_us = 10'000;
  AdaptiveController c(1, Config{}, opts);
  const std::size_t start = c.profile_index();

  std::uint64_t now = 0;
  for (; now < 10'000; now += 1000) {
    EXPECT_FALSE(c.observe(clean_window(), now).has_value()) << now;
  }
  auto d = c.observe(clean_window(), now);  // now == 10'000: hold satisfied
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kPromoteClean);
  EXPECT_EQ(c.profile_index(), start + 1);

  // The switch itself restarts the hold clock: the next rung needs another
  // 10 ms of clean time even though patience is long since satisfied.
  for (now += 1000; now < 20'000; now += 1000) {
    EXPECT_FALSE(c.observe(clean_window(), now).has_value()) << now;
  }
  d = c.observe(clean_window(), now);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(c.profile_index(), start + 2);
}

TEST(AdaptiveControllerTest, LatencyGateIsNaNSafe) {
  Config base;
  base.mode = Mode::kCumulative;
  base.batch_size = 4;
  AdaptiveController::Options opts = fast_options();
  opts.latency_target_us = 50'000;
  AdaptiveController c(1, base, opts);
  const std::size_t start = c.profile_index();

  // NaN latency (no spans yet) is "no evidence", never a demotion -- this
  // is exactly the Histogram::quantile empty sentinel flowing through.
  AdaptSignals no_evidence = clean_window();
  ASSERT_TRUE(std::isnan(no_evidence.p99_delivery_us));
  EXPECT_FALSE(c.observe(no_evidence, 0).has_value());
  EXPECT_EQ(c.profile_index(), start);

  AdaptSignals slow = clean_window();
  slow.p99_delivery_us = 200'000;
  const auto d = c.observe(slow, 1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->reason, AdaptReason::kDemoteLatency);
  EXPECT_EQ(c.profile_index(), start - 1);
}

TEST(AdaptiveControllerTest, IdenticalInputsReplayIdentically) {
  // The controller is pure arithmetic over its inputs: two instances fed
  // the same window sequence must agree on every decision, rung, and EWMA
  // bit. This is the unit-level face of the worker-count determinism the
  // integration suite checks end to end.
  AdaptiveController x(1, Config{}, fast_options());
  AdaptiveController y(1, Config{}, fast_options());
  HmacDrbg rng{42};
  std::uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    AdaptSignals s;
    s.s1_sent = rng.uniform(20);
    s.s2_sent = rng.uniform(200);
    s.retransmits = rng.uniform(60);
    s.rounds_completed = rng.uniform(10);
    s.round_retries = rng.uniform(6);
    s.max_retries = 5;
    s.health = static_cast<std::uint8_t>(rng.uniform(3) == 0 ? 1 : 0);
    now += 500 + rng.uniform(1000);
    const auto dx = x.observe(s, now);
    const auto dy = y.observe(s, now);
    ASSERT_EQ(dx.has_value(), dy.has_value()) << "iteration " << i;
    if (dx.has_value()) {
      EXPECT_EQ(dx->target, dy->target) << "iteration " << i;
      EXPECT_EQ(dx->reason, dy->reason) << "iteration " << i;
    }
    ASSERT_EQ(x.profile_index(), y.profile_index()) << "iteration " << i;
    ASSERT_EQ(x.loss_ewma(), y.loss_ewma()) << "iteration " << i;
  }
  EXPECT_EQ(x.evaluations(), y.evaluations());
  EXPECT_EQ(x.switches(), y.switches());
}

TEST(AdaptiveControllerTest, EveryEvaluationEmitsAnAdaptDecisionEvent) {
  trace::Ring ring{64};
  trace::install(&ring);
  AdaptiveController c(9, Config{}, fast_options());
  c.observe(clean_window(), 0);
  c.observe(lossy_window(), 1000);
  trace::install(nullptr);

  std::size_t decisions = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const trace::Event& e = ring.at(i);
    if (e.kind != trace::EventKind::kAdaptDecision) continue;
    ++decisions;
    EXPECT_EQ(e.assoc_id, 9u);
    // The packed detail must decode back to the decision's inputs.
    if (decisions == 2) {
      EXPECT_EQ(trace::adapt_detail_reason(e.detail),
                static_cast<std::uint8_t>(AdaptReason::kDemoteLoss));
      EXPECT_EQ(trace::adapt_detail_to_mode(e.detail),
                static_cast<std::uint8_t>(Mode::kBase));
      EXPECT_EQ(trace::adapt_detail_to_batch(e.detail), 1u);
      EXPECT_GT(trace::adapt_detail_loss_permille(e.detail), 0u);
    }
  }
  // Both evaluations traced: the hold and the demotion.
  EXPECT_EQ(decisions, 2u);
}

// ------------------------------------------- rekey-boundary reconfiguration

struct HostPair {
  explicit HostPair(Config config) : rng_a(11), rng_b(22) {
    Host::Callbacks a_cb;
    a_cb.send = bus.sender(1);
    a_cb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      if (status == DeliveryStatus::kAcked) acked.push_back(cookie);
    };
    a.emplace(config, /*assoc_id=*/9, /*initiator=*/true, rng_a,
              std::move(a_cb));

    Host::Callbacks b_cb;
    b_cb.send = bus.sender(0);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(config, /*assoc_id=*/9, /*initiator=*/false, rng_b,
              std::move(b_cb));

    bus.attach(0, [this](ByteView frame) { a->on_frame(frame, now); });
    bus.attach(1, [this](ByteView frame) { b->on_frame(frame, now); });
  }

  void establish() {
    a->start(now);
    bus.pump();
    ASSERT_TRUE(a->established());
    ASSERT_TRUE(b->established());
  }

  void send_messages(int count) {
    for (int i = 0; i < count; ++i) {
      a->submit(msg("m" + std::to_string(static_cast<int>(at_b.size()) + i)),
                now);
      bus.pump();
    }
  }

  /// Advances virtual time in `step_us` ticks, pumping after each.
  void run_ticks(int ticks, std::uint64_t step_us) {
    for (int i = 0; i < ticks; ++i) {
      now += step_us;
      a->on_tick(now);
      b->on_tick(now);
      bus.pump();
    }
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<Host> a, b;
  std::uint64_t now = 0;
  std::vector<Bytes> at_b;
  std::vector<std::uint64_t> acked;
};

wire::ReconfigAnnounce announce(Mode mode, std::uint16_t batch,
                                const Config& base) {
  wire::ReconfigAnnounce r;
  r.mode = mode;
  r.batch_size = batch;
  r.merkle_group = static_cast<std::uint16_t>(base.merkle_group);
  r.max_retries = static_cast<std::uint8_t>(base.max_retries);
  r.rekey_threshold = static_cast<std::uint32_t>(base.rekey_threshold);
  return r;
}

TEST(HostReconfigTest, ReconfigAppliesOnBothEndsAtTheRekeyBoundary) {
  Config config;
  config.reliable = true;
  HostPair pair{config};
  pair.establish();
  pair.send_messages(2);
  ASSERT_EQ(pair.at_b.size(), 2u);

  // Stage C/16: starts a rekey immediately (none in flight).
  EXPECT_TRUE(pair.a->request_reconfig(
      announce(Mode::kCumulative, 16, config), pair.now));
  EXPECT_TRUE(pair.a->rekey_pending());
  pair.bus.pump();

  ASSERT_FALSE(pair.a->rekey_pending());
  EXPECT_FALSE(pair.a->staged_reconfig().has_value());
  EXPECT_EQ(pair.a->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.b->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.a->config().mode, Mode::kCumulative);
  EXPECT_EQ(pair.a->config().effective_batch(), 16u);
  EXPECT_EQ(pair.b->config().mode, Mode::kCumulative);
  EXPECT_EQ(pair.b->config().effective_batch(), 16u);

  // The association still authenticates on the new profile -- a full batch
  // in one round.
  for (int i = 0; i < 16; ++i) {
    pair.a->submit(msg("batch" + std::to_string(i)), pair.now);
  }
  pair.bus.pump();
  pair.run_ticks(4, config.rto_us);
  EXPECT_EQ(pair.at_b.size(), 18u);
  EXPECT_EQ(pair.a->signer_stats_total().rounds_completed,
            pair.a->signer_stats_total().rounds_started);
}

TEST(HostReconfigTest, RequestDuringInFlightRekeyIsDelayedNotLost) {
  // The force_rekey race: a controller-triggered reconfig while a rekey
  // handshake is already in flight (and its budget nearly exhausted) must
  // neither rotate chains twice nor drop the request.
  Config config;
  config.reliable = true;
  config.max_retries = 3;
  HostPair pair{config};
  pair.establish();
  pair.send_messages(1);

  // Cut the link mid-rekey and burn most of the budget.
  pair.bus.set_hook([](Bytes&) { return false; });
  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  pair.run_ticks(2, 2'000'000);
  ASSERT_TRUE(pair.a->rekey_pending());

  // The reconfig request cannot start a second rekey now: it stages.
  EXPECT_FALSE(pair.a->request_reconfig(
      announce(Mode::kCumulative, 4, config), pair.now));
  ASSERT_TRUE(pair.a->staged_reconfig().has_value());
  EXPECT_TRUE(pair.a->rekey_pending());

  // Heal the link; the in-flight rekey (no announcement) completes first,
  // then the staged request triggers its own rekey and lands.
  pair.bus.set_hook(nullptr);
  pair.run_ticks(6, 2'000'000);
  EXPECT_FALSE(pair.a->rekey_pending());
  EXPECT_FALSE(pair.a->staged_reconfig().has_value());
  EXPECT_EQ(pair.a->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.b->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.a->config().effective_batch(), 4u);
  EXPECT_EQ(pair.b->config().effective_batch(), 4u);

  // Still delivering after the double boundary.
  pair.send_messages(4);
  pair.run_ticks(3, config.rto_us);
  EXPECT_EQ(pair.at_b.size(), 5u);
}

TEST(HostReconfigTest, RekeyOverOutageNeverFailsTheAssociation) {
  // The association-suicide bug: an optimistic rekey fired just before a
  // partition used to exhaust its handshake budget and mark the whole
  // association failed -- losing every queued message -- even though the
  // peer was proven alive moments earlier. An established association now
  // rides out the outage on a slow HS1 heartbeat and completes the rekey
  // on the first healed round trip; only the *establishment* handshake
  // (whose peer may simply not exist) still gives up.
  Config config;
  config.reliable = true;
  config.max_retries = 2;  // lean budget: exhausted within ~1 s of outage
  HostPair pair{config};
  pair.establish();
  pair.send_messages(1);
  ASSERT_EQ(pair.at_b.size(), 1u);

  // Cut the link, then fire a reconfig rekey into the void and wait far
  // past the budget's coverage.
  pair.bus.set_hook([](Bytes&) { return false; });
  EXPECT_TRUE(pair.a->request_reconfig(
      announce(Mode::kCumulative, 4, config), pair.now));
  ASSERT_TRUE(pair.a->rekey_pending());
  pair.run_ticks(20, 2'000'000);
  EXPECT_FALSE(pair.a->failed());
  EXPECT_TRUE(pair.a->rekey_pending());

  // Messages queue behind the paused signer instead of being lost.
  pair.a->submit(msg("queued"), pair.now);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);

  // Heal: the heartbeat completes the rekey, the reconfig lands on both
  // ends, and the queued message delivers.
  pair.bus.set_hook(nullptr);
  pair.run_ticks(4, 2'000'000);
  EXPECT_FALSE(pair.a->failed());
  EXPECT_FALSE(pair.a->rekey_pending());
  EXPECT_EQ(pair.a->config().effective_batch(), 4u);
  EXPECT_EQ(pair.b->config().effective_batch(), 4u);
  EXPECT_EQ(pair.at_b.size(), 2u);

  // The establishment handshake keeps its give-up semantics: a brand-new
  // initiator with no peer must fail, not heartbeat forever.
  HmacDrbg lonely_rng{33};
  Host::Callbacks lonely_cb;
  lonely_cb.send = [](Bytes) {};
  Host lonely{config, /*assoc_id=*/10, /*initiator=*/true, lonely_rng,
              std::move(lonely_cb)};
  lonely.start(0);
  std::uint64_t t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 2'000'000;
    lonely.on_tick(t);
  }
  EXPECT_TRUE(lonely.failed());
}

TEST(HostReconfigTest, AnnouncementSurvivesDupLossReorderWithoutDesync) {
  // Mode-switch equivalence: duplicate every frame, drop the first HS2 echo,
  // and deliver a stale duplicate late. The two ends must still converge to
  // the same profile, apply it exactly once each, and never desync the
  // signer/verifier pair (every message still authenticates).
  Config config;
  config.reliable = true;
  HostPair pair{config};
  pair.establish();
  pair.send_messages(2);

  std::vector<Bytes> captured;
  int hs2_seen = 0;
  pair.bus.set_hook([&](Bytes& frame) {
    captured.push_back(frame);  // replay everything later, out of order
    if (wire::peek_type(frame) == wire::PacketType::kHs2) {
      ++hs2_seen;
      if (hs2_seen == 1) return false;  // drop the first echo
    }
    return true;
  });

  EXPECT_TRUE(pair.a->request_reconfig(
      announce(Mode::kMerkle, 32, config), pair.now));
  pair.bus.pump();
  // Echo lost: the initiator keeps the announcement in flight and
  // retransmits the same HS1 until the echo arrives.
  ASSERT_TRUE(pair.a->rekey_pending());
  pair.run_ticks(4, config.rto_us);
  ASSERT_FALSE(pair.a->rekey_pending());
  pair.bus.set_hook(nullptr);

  EXPECT_EQ(pair.a->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.b->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.a->config().mode, Mode::kMerkle);
  EXPECT_EQ(pair.b->config().mode, Mode::kMerkle);

  // Now replay every captured frame (duplicated, reversed order): stale
  // handshakes and stale rounds must all be rejected or answered
  // idempotently -- no state reset, no second application.
  for (auto it = captured.rbegin(); it != captured.rend(); ++it) {
    pair.a->on_frame(*it, pair.now);
    pair.b->on_frame(*it, pair.now);
  }
  pair.bus.pump();
  EXPECT_EQ(pair.a->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.b->reconfigs_applied(), 1u);
  EXPECT_EQ(pair.a->config().mode, Mode::kMerkle);
  EXPECT_EQ(pair.b->config().mode, Mode::kMerkle);

  // Fill one tree-mode batch; everything authenticates and delivers. The
  // replayed stale frames above were rejected, but a clean burst on the
  // post-switch profile must not produce a single invalid packet.
  const std::uint64_t invalid_before =
      pair.b->verifier_stats_total().invalid_packets;
  for (int i = 0; i < 32; ++i) {
    pair.a->submit(msg("t" + std::to_string(i)), pair.now);
  }
  pair.bus.pump();
  pair.run_ticks(4, config.rto_us);
  EXPECT_EQ(pair.at_b.size(), 34u);
  EXPECT_EQ(pair.b->verifier_stats_total().invalid_packets, invalid_before);
}

TEST(HostReconfigTest, BatchResizesMidAssociationUnderChaos) {
  // The cached-batch bugfix sweep: walk batch 1 -> 16 -> 4 on a live
  // association while every third frame is dropped. Per-round wire batching
  // is self-describing, so no consumer of Config::effective_batch may hold
  // a stale N across the switches -- every message must still arrive
  // exactly once.
  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  HostPair pair{config};
  pair.establish();

  int frame_count = 0;
  pair.bus.set_hook([&](Bytes&) { return ++frame_count % 3 != 0; });

  const auto deliver_burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      pair.a->submit(
          msg("c" + std::to_string(static_cast<int>(pair.at_b.size()) + i)),
          pair.now);
    }
    pair.bus.pump();
    pair.run_ticks(30, config.rto_us);
  };
  const auto switch_batch = [&](Mode mode, std::uint16_t batch) {
    // May defer past an unsettled round (chaos keeps rounds in flight), so
    // the return value is not asserted; the ticks below give the staged
    // request its boundary.
    pair.a->request_reconfig(announce(mode, batch, config), pair.now);
    pair.run_ticks(30, config.rto_us);
    ASSERT_FALSE(pair.a->rekey_pending());
    ASSERT_EQ(pair.a->config().effective_batch(), batch);
    ASSERT_EQ(pair.b->config().effective_batch(), batch);
  };

  deliver_burst(3);  // batch 1
  switch_batch(Mode::kCumulative, 16);
  deliver_burst(20);  // one full round + a partial
  switch_batch(Mode::kCumulative, 4);
  deliver_burst(9);

  // Exactly once, in spite of the chaos and the two live resizes.
  ASSERT_EQ(pair.at_b.size(), 32u);
  std::set<Bytes> distinct(pair.at_b.begin(), pair.at_b.end());
  EXPECT_EQ(distinct.size(), 32u);
}

TEST(HostReconfigTest, CookiesStayUniqueAcrossRekeys) {
  // Engine swaps used to restart the cookie counter at 1 while resubmitted
  // backlog kept its old cookies: later submissions then collided with
  // settled ones, making delivery reports ambiguous (and supervisor-side
  // cookie mirrors drift). The counter now carries across reestablish().
  Config config;
  config.reliable = true;
  HostPair pair{config};
  pair.establish();

  std::vector<std::uint64_t> cookies;
  for (int i = 0; i < 3; ++i) cookies.push_back(pair.a->submit(msg("x"), pair.now));
  pair.bus.pump();

  ASSERT_TRUE(pair.a->force_rekey(pair.now));
  // Mid-rekey submissions land in the paused signer's backlog and keep
  // their cookies across the swap.
  cookies.push_back(pair.a->submit(msg("y"), pair.now));
  pair.bus.pump();
  ASSERT_FALSE(pair.a->rekey_pending());
  for (int i = 0; i < 3; ++i) cookies.push_back(pair.a->submit(msg("z"), pair.now));
  pair.bus.pump();
  pair.run_ticks(3, config.rto_us);

  // Strictly increasing, no reuse -- 1..7, not 1,2,3,1,2,...
  std::string all;
  for (const auto ck : cookies) all += std::to_string(ck) + " ";
  for (std::size_t i = 1; i < cookies.size(); ++i) {
    EXPECT_GT(cookies[i], cookies[i - 1]) << "cookie " << i << " reused";
  }
  EXPECT_EQ(cookies.back(), cookies.size()) << "cookies: " << all;
  // Every submission was acked exactly once under its own cookie.
  std::set<std::uint64_t> acked(pair.acked.begin(), pair.acked.end());
  EXPECT_EQ(acked.size(), cookies.size());
  EXPECT_EQ(pair.acked.size(), cookies.size());
}

TEST(HostReconfigTest, RevivedHandshakeReanchorsItsRetransmissionTimer) {
  // start(now) after a budget-exhausted handshake must anchor the timer at
  // the revival send: with the stale anchor, the very next on_tick fired an
  // immediate duplicate of the frame just sent, silently spending one retry
  // of the fresh budget. Rekey handshakes no longer exhaust at all (see
  // RekeyOverOutageNeverFailsTheAssociation), so the establishment
  // handshake is where revival happens now.
  Config config;
  config.max_retries = 3;
  HostPair pair{config};

  pair.bus.set_hook([](Bytes&) { return false; });
  pair.a->start(pair.now);
  pair.run_ticks(8, 2'000'000);
  ASSERT_TRUE(pair.a->failed());
  pair.bus.set_hook(nullptr);

  const std::uint64_t retx_before = pair.a->hs_retransmits();
  pair.a->start(pair.now);
  // A tick shortly after the revival send is inside the backoff window: it
  // must NOT retransmit.
  pair.now += 1000;
  pair.a->on_tick(pair.now);
  EXPECT_EQ(pair.a->hs_retransmits(), retx_before);
  pair.bus.pump();
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());
}

}  // namespace
}  // namespace alpha::core
