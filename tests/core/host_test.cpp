// Host-level tests: handshake bootstrap + duplex messaging.
#include <gtest/gtest.h>

#include "core/host.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using crypto::ByteView;
using crypto::HmacDrbg;
using testing::PacketBus;

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct HostPair {
  explicit HostPair(Config config, Host::Options a_opts = {},
                    Host::Options b_opts = {})
      : rng_a(1), rng_b(2) {
    Host::Callbacks a_cb;
    a_cb.send = bus.sender(1);
    a_cb.on_message = [this](ByteView payload) {
      at_a.push_back(Bytes(payload.begin(), payload.end()));
    };
    a_cb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
      a_deliveries.emplace_back(cookie, status);
    };
    a.emplace(config, /*assoc_id=*/7, /*initiator=*/true, rng_a,
              std::move(a_cb), a_opts);

    Host::Callbacks b_cb;
    b_cb.send = bus.sender(0);
    b_cb.on_message = [this](ByteView payload) {
      at_b.push_back(Bytes(payload.begin(), payload.end()));
    };
    b.emplace(config, /*assoc_id=*/7, /*initiator=*/false, rng_b,
              std::move(b_cb), b_opts);

    bus.attach(0, [this](ByteView frame) { a->on_frame(frame, now); });
    bus.attach(1, [this](ByteView frame) { b->on_frame(frame, now); });
  }

  HmacDrbg rng_a, rng_b;
  PacketBus bus;
  std::optional<Host> a, b;
  std::uint64_t now = 0;
  std::vector<Bytes> at_a, at_b;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> a_deliveries;
};

TEST(HostTest, HandshakeEstablishesBothSides) {
  HostPair pair{Config{}};
  EXPECT_FALSE(pair.a->established());
  pair.a->start();
  pair.bus.pump();
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());
}

TEST(HostTest, MessageFlowsAfterHandshake) {
  HostPair pair{Config{}};
  pair.a->start();
  pair.bus.pump();
  pair.a->submit(msg("from A to B"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.at_b[0], msg("from A to B"));
}

TEST(HostTest, MessagesQueuedBeforeHandshakeAreFlushed) {
  HostPair pair{Config{}};
  const auto cookie = pair.a->submit(msg("early bird"), 0);
  pair.a->start();
  pair.bus.pump();
  ASSERT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.at_b[0], msg("early bird"));
  ASSERT_EQ(pair.a_deliveries.size(), 1u);
  EXPECT_EQ(pair.a_deliveries[0].first, cookie);
}

TEST(HostTest, DuplexBothDirections) {
  HostPair pair{Config{}};
  pair.a->start();
  pair.bus.pump();
  pair.a->submit(msg("ping"), 0);
  pair.b->submit(msg("pong"), 0);
  pair.bus.pump();
  ASSERT_EQ(pair.at_b.size(), 1u);
  ASSERT_EQ(pair.at_a.size(), 1u);
  EXPECT_EQ(pair.at_b[0], msg("ping"));
  EXPECT_EQ(pair.at_a[0], msg("pong"));
}

TEST(HostTest, ManyMessagesBothDirectionsReliable) {
  Config config;
  config.reliable = true;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 4;
  HostPair pair{config};
  pair.a->start();
  pair.bus.pump();
  for (int i = 0; i < 20; ++i) {
    pair.a->submit(msg("a" + std::to_string(i)), 0);
    pair.b->submit(msg("b" + std::to_string(i)), 0);
  }
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 20u);
  EXPECT_EQ(pair.at_a.size(), 20u);
  for (const auto& [cookie, status] : pair.a_deliveries) {
    EXPECT_EQ(status, DeliveryStatus::kAcked);
  }
}

TEST(HostTest, MismatchedAlgoHandshakeRejected) {
  Config sha_config;
  Config mmo_config;
  mmo_config.algo = crypto::HashAlgo::kMmo128;

  HmacDrbg rng_a{1}, rng_b{2};
  PacketBus bus;
  Host::Callbacks a_cb;
  a_cb.send = bus.sender(1);
  Host a{sha_config, 7, true, rng_a, std::move(a_cb)};
  Host::Callbacks b_cb;
  b_cb.send = bus.sender(0);
  Host b{mmo_config, 7, false, rng_b, std::move(b_cb)};
  std::uint64_t now = 0;
  bus.attach(0, [&](ByteView frame) { a.on_frame(frame, now); });
  bus.attach(1, [&](ByteView frame) { b.on_frame(frame, now); });

  a.start();
  bus.pump();
  EXPECT_FALSE(b.established());
  EXPECT_FALSE(a.established());
}

TEST(HostProtectedTest, RsaProtectedHandshake) {
  HmacDrbg keyrng{0xbeef};
  const Identity id_a = Identity::make_rsa(keyrng, 512);
  const Identity id_b = Identity::make_rsa(keyrng, 512);

  Host::Options a_opts;
  a_opts.identity = &id_a;
  a_opts.require_protected_peer = true;
  Host::Options b_opts;
  b_opts.identity = &id_b;
  b_opts.require_protected_peer = true;

  HostPair pair{Config{}, a_opts, b_opts};
  pair.a->start();
  pair.bus.pump();
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());

  pair.a->submit(msg("authenticated bootstrap"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);
}

TEST(HostProtectedTest, DsaProtectedHandshake) {
  HmacDrbg keyrng{0xd5a};
  const Identity id_a = Identity::make_dsa(keyrng, 512, 160);

  Host::Options a_opts;
  a_opts.identity = &id_a;
  Host::Options b_opts;
  b_opts.require_protected_peer = true;

  HostPair pair{Config{}, a_opts, b_opts};
  pair.a->start();
  pair.bus.pump();
  EXPECT_TRUE(pair.b->established());
}

TEST(HostProtectedTest, EcdsaProtectedHandshake) {
  // The paper's WSN recommendation (§4.1.3): ECC-signed anchors.
  HmacDrbg keyrng{0xecc};
  const Identity id_a =
      Identity::make_ecdsa(keyrng, crypto::EcCurve::secp160r1());
  const Identity id_b = Identity::make_ecdsa(keyrng, crypto::EcCurve::p256());

  Host::Options a_opts;
  a_opts.identity = &id_a;
  a_opts.require_protected_peer = true;
  Host::Options b_opts;
  b_opts.identity = &id_b;
  b_opts.require_protected_peer = true;

  HostPair pair{Config{}, a_opts, b_opts};
  pair.a->start();
  pair.bus.pump();
  EXPECT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.b->established());

  pair.a->submit(msg("ecc-protected bootstrap"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);
}

TEST(HostProtectedTest, UnprotectedHandshakeRejectedWhenRequired) {
  Host::Options b_opts;
  b_opts.require_protected_peer = true;  // but A sends unsigned HS1

  HostPair pair{Config{}, Host::Options{}, b_opts};
  pair.a->start();
  pair.bus.pump();
  EXPECT_FALSE(pair.b->established());
}

TEST(HostProtectedTest, TamperedHandshakeSignatureRejected) {
  HmacDrbg keyrng{0xfeed};
  const Identity id_a = Identity::make_rsa(keyrng, 512);
  Host::Options a_opts;
  a_opts.identity = &id_a;
  Host::Options b_opts;
  b_opts.require_protected_peer = true;

  HostPair pair{Config{}, a_opts, b_opts};
  // Flip a bit in the HS1 anchors: the signature check must fail.
  pair.bus.set_hook([](Bytes& frame) {
    if (wire::peek_type(frame) == wire::PacketType::kHs1) {
      frame[20] ^= 0x01;
    }
    return true;
  });
  pair.a->start();
  pair.bus.pump();
  EXPECT_FALSE(pair.b->established());
}

TEST(HostTest, WrongDigestSizeAnchorRejected) {
  // An HS1 whose anchors do not match the configured digest width must be
  // rejected even when the algo byte claims the right algorithm.
  HostPair pair{Config{}};
  wire::HandshakePacket hs;
  hs.hdr = {7, 1};
  hs.algo = crypto::HashAlgo::kSha1;  // 20-byte digests expected
  hs.chain_length = 64;
  hs.sig_anchor_index = 64;
  hs.ack_anchor_index = 64;
  hs.sig_anchor = crypto::Digest{ByteView{Bytes(16, 1)}};  // wrong width
  hs.ack_anchor = crypto::Digest{ByteView{Bytes(20, 2)}};
  pair.b->on_frame(hs.encode(), 0);
  EXPECT_FALSE(pair.b->established());
}

TEST(HostTest, TooShortChainLengthRejected) {
  HostPair pair{Config{}};
  wire::HandshakePacket hs;
  hs.hdr = {7, 1};
  hs.algo = crypto::HashAlgo::kSha1;
  hs.chain_length = 2;  // cannot fund a single round
  hs.sig_anchor_index = 2;
  hs.ack_anchor_index = 2;
  hs.sig_anchor = crypto::Digest{ByteView{Bytes(20, 1)}};
  hs.ack_anchor = crypto::Digest{ByteView{Bytes(20, 2)}};
  pair.b->on_frame(hs.encode(), 0);
  EXPECT_FALSE(pair.b->established());
}

TEST(HostTest, InvalidFramesIgnored) {
  HostPair pair{Config{}};
  pair.a->start();
  pair.bus.pump();
  const Bytes junk{0xde, 0xad};
  pair.a->on_frame(junk, 0);  // must not crash or change state
  EXPECT_TRUE(pair.a->established());
  pair.a->submit(msg("still fine"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);
}

TEST(HostTest, WrongAssocIdIgnored) {
  HostPair pair{Config{}};
  pair.a->start();
  pair.bus.pump();

  HmacDrbg other_rng{9};
  PacketBus other_bus;
  Host::Callbacks cb;
  cb.send = other_bus.sender(0);
  Host other{Config{}, /*assoc_id=*/99, true, other_rng, std::move(cb)};
  other.start();
  // Feed host B a handshake for association 99: must be ignored.
  // (B is already established on association 7; a second establishment for
  // an unknown assoc id must not occur.)
  // Capture the frame the other host emitted:
  other_bus.attach(0, [&](ByteView frame) { pair.b->on_frame(frame, 0); });
  other_bus.pump();
  pair.a->submit(msg("check"), 0);
  pair.bus.pump();
  EXPECT_EQ(pair.at_b.size(), 1u);
}

}  // namespace
}  // namespace alpha::core
