// End-to-end chaos tests: the full stack (ProtectedPath over the simulated
// network) driven through the adversarial fault layer. The security
// invariants under test:
//   * duplication never causes duplicate application delivery,
//   * corruption never yields a forged (unauthentic) delivered payload,
//   * partitions delay but do not break exactly-once delivery,
//   * one chaos seed replays an entire adversarial run bit-for-bit.
// All randomized tests use the seed-replay harness: on failure the seed is
// printed and ALPHA_TEST_SEED reruns the identical schedule.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/path.hpp"
#include "test_bus.hpp"

namespace alpha::core {
namespace {

using crypto::Bytes;
using net::kMillisecond;
using net::kSecond;
using testing::SeedReporter;
using testing::chaos_seed;

Config chaos_config() {
  Config config;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;
  config.max_retries = 50;
  config.chain_length = 2048;
  return config;
}

/// A 4-node chain (initiator - relay - relay - responder) with the given
/// fault schedule on every link.
struct ChaosRig {
  net::Simulator sim;
  net::Network network;
  std::unique_ptr<ProtectedPath> path;

  ChaosRig(std::uint64_t seed, const net::FaultConfig& faults,
           const Config& config = chaos_config(), double loss = 0.0)
      : network(sim, /*seed=*/1337) {
    network.set_chaos_seed(seed);
    for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
    net::LinkConfig link;
    link.latency = 2 * kMillisecond;
    link.jitter = 3 * kMillisecond;
    link.loss_rate = loss;
    for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);
    path = std::make_unique<ProtectedPath>(network,
                                           std::vector<net::NodeId>{0, 1, 2, 3},
                                           config, 1, /*seed=*/99);
    for (net::NodeId id = 0; id < 3; ++id) {
      network.set_link_faults(id, id + 1, faults);
    }
  }

  /// Starts the handshake and keeps restarting (replenishing the retransmit
  /// budget) until established. Deterministic: restarts happen at fixed
  /// simulated times.
  void establish() {
    path->start();
    sim.run_until(sim.now() + 5 * kSecond);
    for (int attempt = 0; attempt < 50 && !path->initiator().established();
         ++attempt) {
      path->initiator().start();
      sim.run_until(sim.now() + 5 * kSecond);
    }
    ASSERT_TRUE(path->initiator().established()) << "handshake never completed";
  }

  std::size_t acked() const {
    std::size_t n = 0;
    for (const auto& [cookie, status] : path->initiator_deliveries()) {
      if (status == DeliveryStatus::kAcked) ++n;
    }
    return n;
  }
};

/// Counts occurrences of every delivered payload.
std::map<Bytes, int> delivery_histogram(const ProtectedPath& path) {
  std::map<Bytes, int> histogram;
  for (const auto& payload : path.delivered_to_responder()) {
    ++histogram[payload];
  }
  return histogram;
}

TEST(ChaosTest, DuplicationNeverCausesDuplicateDelivery) {
  const std::uint64_t seed = chaos_seed(0xd0b1e);
  SeedReporter reporter{seed};

  net::FaultConfig faults;
  faults.duplicate_rate = 0.5;  // half of all frames arrive twice
  ChaosRig rig{seed, faults};
  rig.establish();

  const int kMessages = 10;
  for (int i = 0; i < kMessages; ++i) {
    rig.path->initiator().submit(Bytes(64, static_cast<std::uint8_t>(i)),
                                 rig.sim.now());
  }
  rig.sim.run_until(rig.sim.now() + 300 * kSecond);

  EXPECT_GT(rig.network.total_stats().frames_duplicated, 0u);
  const auto histogram = delivery_histogram(*rig.path);
  ASSERT_EQ(histogram.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [payload, count] : histogram) {
    EXPECT_EQ(count, 1) << "payload " << int(payload[0])
                        << " delivered " << count << " times";
  }
  EXPECT_EQ(rig.acked(), static_cast<std::size_t>(kMessages));
}

TEST(ChaosTest, ReorderingIsToleratedWithoutLossOfMessages) {
  const std::uint64_t seed = chaos_seed(0x2e02de2);
  SeedReporter reporter{seed};

  net::FaultConfig faults;
  faults.reorder_rate = 0.3;
  faults.reorder_window = 80 * kMillisecond;
  ChaosRig rig{seed, faults};
  rig.establish();

  const int kMessages = 10;
  for (int i = 0; i < kMessages; ++i) {
    rig.path->initiator().submit(Bytes(64, static_cast<std::uint8_t>(i)),
                                 rig.sim.now());
  }
  rig.sim.run_until(rig.sim.now() + 300 * kSecond);

  EXPECT_GT(rig.network.total_stats().frames_reordered, 0u);
  const auto histogram = delivery_histogram(*rig.path);
  ASSERT_EQ(histogram.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [payload, count] : histogram) {
    EXPECT_EQ(count, 1);
  }
  EXPECT_EQ(rig.acked(), static_cast<std::size_t>(kMessages));
}

TEST(ChaosTest, CorruptionForgesNothingAndRetransmissionRecovers) {
  const std::uint64_t seed = chaos_seed(0xc0422);
  SeedReporter reporter{seed};

  // Establish over clean links first: the unprotected bootstrap cannot
  // detect a corrupted anchor (that is what Host::Options::identity is
  // for), and this test targets the data path.
  ChaosRig rig{seed, net::FaultConfig{}};
  rig.establish();
  net::FaultConfig faults;
  faults.corrupt_rate = 0.10;
  faults.corrupt_max_bits = 3;
  for (net::NodeId id = 0; id < 3; ++id) {
    rig.network.set_link_faults(id, id + 1, faults);
  }

  const int kMessages = 12;
  std::map<Bytes, int> submitted;
  for (int i = 0; i < kMessages; ++i) {
    Bytes payload(64, static_cast<std::uint8_t>(i));
    ++submitted[payload];
    rig.path->initiator().submit(std::move(payload), rig.sim.now());
  }
  rig.sim.run_until(rig.sim.now() + 600 * kSecond);

  EXPECT_GT(rig.network.total_stats().frames_corrupted, 0u);
  // Zero forged: every delivered payload is bit-for-bit one we submitted.
  for (const auto& payload : rig.path->delivered_to_responder()) {
    ASSERT_TRUE(submitted.contains(payload))
        << "forged payload delivered (" << payload.size() << " bytes)";
  }
  // And corruption only delays: everything still arrives exactly once.
  const auto histogram = delivery_histogram(*rig.path);
  ASSERT_EQ(histogram.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [payload, count] : histogram) {
    EXPECT_EQ(count, 1);
  }
  EXPECT_EQ(rig.acked(), static_cast<std::size_t>(kMessages));
}

TEST(ChaosTest, PartitionHealsIntoExactlyOnceDelivery) {
  const std::uint64_t seed = chaos_seed(0x9a27);
  SeedReporter reporter{seed};

  ChaosRig rig{seed, net::FaultConfig{}};
  rig.establish();

  // Cut the middle link before the first data frame can cross it (frames
  // need ~2 ms to reach the relay); heal it 30 simulated seconds later.
  // Backoff spreads the retransmissions out and the budget (50 retries,
  // 5 s cap) comfortably outlives the partition.
  const net::SimTime t0 = rig.sim.now();
  rig.network.schedule_partition(1, 2, t0 + 1, 30 * kSecond);

  const int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) {
    rig.path->initiator().submit(Bytes(64, static_cast<std::uint8_t>(i)),
                                 rig.sim.now());
  }
  rig.sim.run_until(t0 + 400 * kSecond);

  EXPECT_GT(rig.network.total_stats().frames_link_down, 0u);
  EXPECT_TRUE(rig.network.link_up(1, 2));
  const auto histogram = delivery_histogram(*rig.path);
  ASSERT_EQ(histogram.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [payload, count] : histogram) {
    EXPECT_EQ(count, 1) << "duplicate delivery after partition heal";
  }
  EXPECT_EQ(rig.acked(), static_cast<std::size_t>(kMessages));
  EXPECT_FALSE(rig.path->initiator().failed());
}

// One chaos seed must replay an entire adversarial run bit-for-bit: same
// frame fates at the same simulated times, same counters, same deliveries.
TEST(ChaosTest, SameChaosSeedReplaysIdenticalRun) {
  const std::uint64_t seed = chaos_seed(0x2e91a7);
  SeedReporter reporter{seed};

  using Trace = std::vector<std::tuple<net::SimTime, net::SimTime, net::NodeId,
                                       net::NodeId, std::size_t, int, bool,
                                       bool>>;
  struct RunResult {
    Trace trace;
    std::vector<Bytes> delivered;
    std::uint64_t sent = 0, lost = 0, duplicated = 0, corrupted = 0,
                  reordered = 0, link_down = 0;
  };

  const auto run_once = [seed]() {
    net::FaultConfig faults;
    faults.duplicate_rate = 0.10;
    faults.corrupt_rate = 0.05;
    faults.reorder_rate = 0.20;
    faults.reorder_window = 60 * kMillisecond;
    faults.burst = net::BurstLossConfig{};  // default Gilbert-Elliott

    ChaosRig rig{seed, faults, chaos_config(), /*loss=*/0.05};
    RunResult result;
    rig.network.set_tracer([&](const net::Network::TraceRecord& r) {
      result.trace.emplace_back(r.sent_at, r.delivery_at, r.from, r.to,
                                r.size, static_cast<int>(r.fate), r.corrupted,
                                r.reordered);
    });
    // Early enough to overlap the handshake and the data rounds.
    rig.network.schedule_partition(1, 2, 1 * kSecond, 10 * kSecond);

    rig.path->start();
    for (int i = 0; i < 10; ++i) {
      rig.path->initiator().submit(Bytes(64, static_cast<std::uint8_t>(i)),
                                   rig.sim.now());
    }
    rig.sim.run_until(120 * kSecond);

    result.delivered = rig.path->delivered_to_responder();
    const net::LinkStats totals = rig.network.total_stats();
    result.sent = totals.frames_sent;
    result.lost = totals.frames_lost;
    result.duplicated = totals.frames_duplicated;
    result.corrupted = totals.frames_corrupted;
    result.reordered = totals.frames_reordered;
    result.link_down = totals.frames_link_down;
    return result;
  };

  const RunResult a = run_once();
  const RunResult b = run_once();

  // The schedule actually exercised every fault class...
  EXPECT_GT(a.duplicated, 0u);
  EXPECT_GT(a.corrupted, 0u);
  EXPECT_GT(a.reordered, 0u);
  EXPECT_GT(a.lost, 0u);
  EXPECT_GT(a.link_down, 0u);
  // ...and both runs are bit-for-bit identical.
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_EQ(a.link_down, b.link_down);
}

}  // namespace
}  // namespace alpha::core
