// Flat node layout + keyed-root memo: interior nodes computed at build time
// must serve every auth_path without recomputation, and repeated keyed_root
// calls under one chain element (the ALPHA-M signer's per-S2 pattern) must
// hash only once.
#include <gtest/gtest.h>

#include "crypto/counter.hpp"
#include "merkle/merkle.hpp"

namespace alpha::merkle {
namespace {

using crypto::Digest;
using crypto::ScopedHashOps;

std::vector<Bytes> make_messages(std::size_t n) {
  std::vector<Bytes> msgs;
  for (std::size_t j = 0; j < n; ++j) {
    msgs.push_back(Bytes(32, static_cast<std::uint8_t>(j + 1)));
  }
  return msgs;
}

TEST(MerkleCache, AuthPathsAreServedFromResidentNodes) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{16}, std::size_t{33}}) {
    const MerkleTree tree(crypto::HashAlgo::kSha1, make_messages(n));
    for (std::size_t j = 0; j < n; ++j) {
      const ScopedHashOps ops;
      const AuthPath path = tree.auth_path(j);
      EXPECT_EQ(ops.delta().hash_finalizations, 0u) << "n=" << n << " j=" << j;
      EXPECT_TRUE(MerkleTree::verify(crypto::HashAlgo::kSha1, tree.leaf(j),
                                     path, tree.root()));
    }
  }
}

TEST(MerkleCache, KeyedRootMemoizedPerKey) {
  const MerkleTree tree(crypto::HashAlgo::kSha1, make_messages(8));
  const Digest k1{crypto::ByteView{Bytes(20, 0x11)}};
  const Digest k2{crypto::ByteView{Bytes(20, 0x22)}};

  const Digest r1 = tree.keyed_root(k1.view());
  {
    const ScopedHashOps ops;
    EXPECT_EQ(tree.keyed_root(k1.view()), r1);  // cache hit
    EXPECT_EQ(ops.delta().hash_finalizations, 0u);
  }
  {
    const ScopedHashOps ops;
    const Digest r2 = tree.keyed_root(k2.view());  // new key recomputes
    EXPECT_NE(r2, r1);
    EXPECT_EQ(ops.delta().hash_finalizations, 1u);
    EXPECT_EQ(tree.keyed_root(k1.view()), r1);  // and re-keys the memo
  }
  // Verification matches regardless of caching.
  const AuthPath path = tree.auth_path(3);
  EXPECT_TRUE(MerkleTree::verify_keyed(crypto::HashAlgo::kSha1, k1.view(),
                                       tree.leaf(3), path, r1));
}

}  // namespace
}  // namespace alpha::merkle
