#include "merkle/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/counter.hpp"
#include "crypto/random.hpp"

namespace alpha::merkle {
namespace {

using crypto::HmacDrbg;

std::vector<Bytes> make_messages(std::size_t n, std::uint64_t seed = 1) {
  HmacDrbg rng{seed};
  std::vector<Bytes> msgs;
  msgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) msgs.push_back(rng.bytes(32 + i % 64));
  return msgs;
}

TEST(MerkleTreeTest, SingleLeaf) {
  const std::vector<Bytes> msgs = make_messages(1);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.width(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.root(), crypto::hash(HashAlgo::kSha1, msgs[0]));
  EXPECT_TRUE(tree.auth_path(0).siblings.empty());
}

TEST(MerkleTreeTest, TwoLeavesRootStructure) {
  const std::vector<Bytes> msgs = make_messages(2);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  const Digest l0 = crypto::hash(HashAlgo::kSha1, msgs[0]);
  const Digest l1 = crypto::hash(HashAlgo::kSha1, msgs[1]);
  EXPECT_EQ(tree.root(), crypto::hash2(HashAlgo::kSha1, l0.view(), l1.view()));
}

TEST(MerkleTreeTest, EightLeavesMatchesPaperFigure4Structure) {
  // Fig. 4: root = H(k | b0 | b1), b0 = H(b00|b01), b00 = H(b000|b001),
  // b000 = H(m0); verify the full structure manually.
  const std::vector<Bytes> msgs = make_messages(8);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  const auto H = [](ByteView a, ByteView b) {
    return crypto::hash2(HashAlgo::kSha1, a, b);
  };
  std::vector<Digest> b(8);
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = crypto::hash(HashAlgo::kSha1, msgs[static_cast<std::size_t>(i)]);
  const Digest b00 = H(b[0].view(), b[1].view());
  const Digest b01 = H(b[2].view(), b[3].view());
  const Digest b10 = H(b[4].view(), b[5].view());
  const Digest b11 = H(b[6].view(), b[7].view());
  const Digest b0 = H(b00.view(), b01.view());
  const Digest b1 = H(b10.view(), b11.view());
  EXPECT_EQ(tree.root(), H(b0.view(), b1.view()));

  const crypto::Bytes key(20, 0xaa);
  EXPECT_EQ(tree.keyed_root(key),
            crypto::hash3(HashAlgo::kSha1, key, b0.view(), b1.view()));
}

class MerklePathTest
    : public ::testing::TestWithParam<std::tuple<HashAlgo, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MerklePathTest,
    ::testing::Combine(::testing::Values(HashAlgo::kSha1, HashAlgo::kSha256,
                                         HashAlgo::kMmo128),
                       ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u,
                                         64u)));

TEST_P(MerklePathTest, EveryLeafVerifies) {
  const auto [algo, n] = GetParam();
  const std::vector<Bytes> msgs = make_messages(n);
  const MerkleTree tree{algo, msgs};
  for (std::size_t j = 0; j < n; ++j) {
    const AuthPath path = tree.auth_path(j);
    const Digest leaf = crypto::hash(algo, msgs[j]);
    EXPECT_TRUE(MerkleTree::verify(algo, leaf, path, tree.root()))
        << "leaf " << j << " of " << n;
  }
}

TEST_P(MerklePathTest, EveryLeafVerifiesKeyed) {
  const auto [algo, n] = GetParam();
  const std::vector<Bytes> msgs = make_messages(n);
  const MerkleTree tree{algo, msgs};
  const crypto::Bytes key(crypto::digest_size(algo), 0x55);
  const Digest root = tree.keyed_root(key);
  for (std::size_t j = 0; j < n; ++j) {
    const AuthPath path = tree.auth_path(j);
    const Digest leaf = crypto::hash(algo, msgs[j]);
    EXPECT_TRUE(MerkleTree::verify_keyed(algo, key, leaf, path, root))
        << "leaf " << j << " of " << n;
  }
}

TEST_P(MerklePathTest, TamperedLeafRejected) {
  const auto [algo, n] = GetParam();
  std::vector<Bytes> msgs = make_messages(n);
  const MerkleTree tree{algo, msgs};
  const crypto::Bytes key(crypto::digest_size(algo), 0x55);
  const Digest root = tree.keyed_root(key);
  for (std::size_t j = 0; j < n; ++j) {
    Bytes tampered = msgs[j];
    tampered[0] ^= 0x01;
    const Digest bad_leaf = crypto::hash(algo, tampered);
    EXPECT_FALSE(
        MerkleTree::verify_keyed(algo, key, bad_leaf, tree.auth_path(j), root))
        << "leaf " << j;
  }
}

TEST(MerkleTreeTest, WrongKeyRejected) {
  const std::vector<Bytes> msgs = make_messages(4);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  const crypto::Bytes key(20, 0x55);
  const crypto::Bytes wrong(20, 0x56);
  const Digest root = tree.keyed_root(key);
  const Digest leaf = crypto::hash(HashAlgo::kSha1, msgs[0]);
  EXPECT_FALSE(
      MerkleTree::verify_keyed(HashAlgo::kSha1, wrong, leaf, tree.auth_path(0), root));
}

TEST(MerkleTreeTest, PathFromWrongLeafIndexRejected) {
  const std::vector<Bytes> msgs = make_messages(4);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  const Digest leaf0 = crypto::hash(HashAlgo::kSha1, msgs[0]);
  AuthPath path = tree.auth_path(1);  // path for leaf 1 used with leaf 0
  EXPECT_FALSE(MerkleTree::verify(HashAlgo::kSha1, leaf0, path, tree.root()));
}

TEST(MerkleTreeTest, SwappedSiblingRejected) {
  const std::vector<Bytes> msgs = make_messages(8);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  AuthPath path = tree.auth_path(3);
  std::swap(path.siblings[0], path.siblings[1]);
  const Digest leaf = crypto::hash(HashAlgo::kSha1, msgs[3]);
  EXPECT_FALSE(MerkleTree::verify(HashAlgo::kSha1, leaf, path, tree.root()));
}

TEST(MerkleTreeTest, NonPowerOfTwoPadding) {
  // 5 leaves pad to width 8; paths stay depth 3 and all real leaves verify.
  const std::vector<Bytes> msgs = make_messages(5);
  const MerkleTree tree{HashAlgo::kSha1, msgs};
  EXPECT_EQ(tree.width(), 8u);
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.auth_path(4).siblings.size(), 3u);
  EXPECT_THROW(tree.auth_path(5), std::out_of_range);
}

TEST(MerkleTreeTest, EmptyThrows) {
  EXPECT_THROW((MerkleTree{HashAlgo::kSha1, std::vector<Bytes>{}}),
               std::invalid_argument);
}

TEST(MerkleTreeTest, DifferentMessagesDifferentRoots) {
  const MerkleTree a{HashAlgo::kSha1, make_messages(8, 1)};
  const MerkleTree b{HashAlgo::kSha1, make_messages(8, 2)};
  EXPECT_NE(a.root(), b.root());
}

TEST(MerkleTreeTest, PathWireSizeGrowsLogarithmically) {
  for (std::size_t n : {2u, 4u, 16u, 256u, 1024u}) {
    const MerkleTree tree{HashAlgo::kSha1, make_messages(n)};
    const AuthPath path = tree.auth_path(0);
    EXPECT_EQ(path.siblings.size(), tree.depth());
    EXPECT_EQ(path.wire_size(), tree.depth() * 20);
  }
}

TEST(MerkleCostModelTest, VerifyCostIsLogPlusOne) {
  EXPECT_EQ(verify_hash_cost(1), 1u);
  EXPECT_EQ(verify_hash_cost(2), 2u);
  EXPECT_EQ(verify_hash_cost(16), 5u);
  EXPECT_EQ(verify_hash_cost(1024), 11u);
}

TEST(MerkleCostModelTest, BuildCostIsTwoNMinusOne) {
  EXPECT_EQ(build_hash_cost(1), 1u);
  EXPECT_EQ(build_hash_cost(8), 8u + 7u);
  EXPECT_EQ(build_hash_cost(1024), 1024u + 1023u);
}

TEST(MerkleCostModelTest, MeasuredVerifyCostMatchesModel) {
  for (std::size_t n : {2u, 8u, 64u}) {
    const std::vector<Bytes> msgs = make_messages(n);
    const MerkleTree tree{HashAlgo::kSha1, msgs};
    const crypto::Bytes key(20, 1);
    const Digest root = tree.keyed_root(key);
    const AuthPath path = tree.auth_path(0);
    const Digest leaf = crypto::hash(HashAlgo::kSha1, msgs[0]);

    const crypto::ScopedHashOps ops;
    ASSERT_TRUE(MerkleTree::verify_keyed(HashAlgo::kSha1, key, leaf, path, root));
    // verify_keyed performs path.size()-1 plain combines + 1 keyed combine;
    // + the leaf hash itself = verify_hash_cost (which counts leaf hashing).
    EXPECT_EQ(ops.delta().hash_finalizations, verify_hash_cost(n) - 1)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace alpha::merkle
