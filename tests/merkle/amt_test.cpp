#include "merkle/amt.hpp"

#include <gtest/gtest.h>

namespace alpha::merkle {
namespace {

using crypto::Bytes;
using crypto::HmacDrbg;

TEST(AmtTest, BasicAckVerifies) {
  HmacDrbg rng{1u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x11);
  const Digest root = amt.keyed_root(key);

  const auto proof = amt.prove(2, /*ack=*/true);
  EXPECT_TRUE(proof.is_ack);
  EXPECT_EQ(proof.msg_index, 2u);
  EXPECT_TRUE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 4));
}

TEST(AmtTest, BasicNackVerifies) {
  HmacDrbg rng{2u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x22);
  const Digest root = amt.keyed_root(key);

  const auto proof = amt.prove(1, /*ack=*/false);
  EXPECT_FALSE(proof.is_ack);
  EXPECT_TRUE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 4));
}

class AmtSweepTest
    : public ::testing::TestWithParam<std::tuple<HashAlgo, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AmtSweepTest,
    ::testing::Combine(::testing::Values(HashAlgo::kSha1, HashAlgo::kMmo128),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 31u)));

TEST_P(AmtSweepTest, EveryMessageAckAndNackVerify) {
  const auto [algo, n] = GetParam();
  HmacDrbg rng{99u};
  const AckMerkleTree amt{algo, n, rng};
  const Bytes key(crypto::digest_size(algo), 0x33);
  const Digest root = amt.keyed_root(key);

  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_TRUE(AckMerkleTree::verify(algo, key, amt.prove(j, true), root, n))
        << "ack " << j << "/" << n;
    EXPECT_TRUE(AckMerkleTree::verify(algo, key, amt.prove(j, false), root, n))
        << "nack " << j << "/" << n;
  }
}

TEST(AmtTest, AckCannotBeReplayedAsNack) {
  // The central AMT security property: flipping the is_ack bit on a genuine
  // proof must fail, because ack and nack leaves live in different halves.
  HmacDrbg rng{3u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x44);
  const Digest root = amt.keyed_root(key);

  auto proof = amt.prove(2, true);
  proof.is_ack = false;
  EXPECT_FALSE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 4));

  auto nproof = amt.prove(2, false);
  nproof.is_ack = true;
  EXPECT_FALSE(AckMerkleTree::verify(HashAlgo::kSha1, key, nproof, root, 4));
}

TEST(AmtTest, WrongSecretRejected) {
  HmacDrbg rng{4u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x55);
  const Digest root = amt.keyed_root(key);

  auto proof = amt.prove(0, true);
  proof.secret[0] ^= 1;
  EXPECT_FALSE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 4));
}

TEST(AmtTest, WrongIndexRejected) {
  HmacDrbg rng{5u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x66);
  const Digest root = amt.keyed_root(key);

  auto proof = amt.prove(0, true);
  proof.msg_index = 1;  // claim the ack belongs to another message
  EXPECT_FALSE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 4));
}

TEST(AmtTest, WrongKeyRejected) {
  HmacDrbg rng{6u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x77);
  const Bytes wrong(20, 0x78);
  const Digest root = amt.keyed_root(key);
  EXPECT_FALSE(
      AckMerkleTree::verify(HashAlgo::kSha1, wrong, amt.prove(0, true), root, 4));
}

TEST(AmtTest, OutOfRangeIndexRejected) {
  HmacDrbg rng{7u};
  const AckMerkleTree amt{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 0x88);
  const Digest root = amt.keyed_root(key);
  auto proof = amt.prove(3, true);
  EXPECT_FALSE(AckMerkleTree::verify(HashAlgo::kSha1, key, proof, root, 3));
  EXPECT_THROW(amt.prove(4, true), std::out_of_range);
}

TEST(AmtTest, SecretsAreDistinctPerLeaf) {
  HmacDrbg rng{8u};
  const AckMerkleTree amt{HashAlgo::kSha1, 8, rng};
  // Ack and nack proofs for the same message must carry different secrets
  // (paper: "The secret must be distinct for each leaf of the tree").
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NE(amt.prove(j, true).secret, amt.prove(j, false).secret);
  }
  EXPECT_NE(amt.prove(0, true).secret, amt.prove(1, true).secret);
}

TEST(AmtTest, FreshTreesHaveFreshSecrets) {
  // Replay protection across rounds (paper §3.2.2: fresh secrets thwart
  // replay): two AMTs from an advancing RNG share nothing.
  HmacDrbg rng{9u};
  const AckMerkleTree a{HashAlgo::kSha1, 4, rng};
  const AckMerkleTree b{HashAlgo::kSha1, 4, rng};
  const Bytes key(20, 1);
  EXPECT_NE(a.keyed_root(key), b.keyed_root(key));
  EXPECT_NE(a.prove(0, true).secret, b.prove(0, true).secret);
}

TEST(AmtTest, RejectsZeroAndOversizedCount) {
  HmacDrbg rng{10u};
  EXPECT_THROW((AckMerkleTree{HashAlgo::kSha1, 0, rng}), std::invalid_argument);
  EXPECT_THROW((AckMerkleTree{HashAlgo::kSha1, 65536, rng}),
               std::invalid_argument);
}

TEST(AmtTest, MemoryMatchesTable3Shape) {
  // Table 3 (verifier, ALPHA-M): n*s + (4n-1)*h. We count both secret sets
  // (2n*s) and tree nodes (4n-1)*h for power-of-two n.
  HmacDrbg rng{11u};
  const std::size_t n = 8, s = 16, h = 20;
  const AckMerkleTree amt{HashAlgo::kSha1, n, rng, s};
  EXPECT_EQ(amt.memory_bytes(), 2 * n * s + (4 * n - 1) * h);
}

TEST(AmtTest, ProofWireSizeIsLogarithmic) {
  HmacDrbg rng{12u};
  const AckMerkleTree amt{HashAlgo::kSha1, 16, rng};
  const auto proof = amt.prove(0, true);
  // 2n = 32 leaves -> depth 5 path.
  EXPECT_EQ(proof.path.siblings.size(), 5u);
  EXPECT_EQ(proof.wire_size(), 1 + 2 + 16 + 5 * 20);
}

}  // namespace
}  // namespace alpha::merkle
