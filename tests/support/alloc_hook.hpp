// Global allocation counter for zero-allocation assertions.
//
// Including this header in exactly ONE translation unit of a binary replaces
// the global operator new/delete family with counting versions, so tests and
// benches can assert that a code path performs no heap allocation (the
// "allocs/op" column of BENCH_hotpath.json and the AllocFree test suite).
// The replacement functions must not be defined twice in one binary --
// never include this from two TUs that link together.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace alpha::testsupport {

inline std::atomic<std::uint64_t> g_alloc_count{0};

/// Number of operator-new calls (any form) since process start.
inline std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// RAII scope reporting the allocations performed inside it.
class ScopedAllocCount {
 public:
  ScopedAllocCount() noexcept : start_(alloc_count()) {}
  std::uint64_t delta() const noexcept { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace alpha::testsupport

namespace alpha::testsupport::detail {
inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc rule
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
}  // namespace alpha::testsupport::detail

void* operator new(std::size_t size) {
  return alpha::testsupport::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return alpha::testsupport::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return alpha::testsupport::detail::counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return alpha::testsupport::detail::counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  alpha::testsupport::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  alpha::testsupport::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
