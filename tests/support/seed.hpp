// Seed-replay harness for randomized tests.
//
// Randomized tests draw their seed via chaos_seed(fallback) and register a
// SeedReporter on the stack. When the test fails, the reporter prints the
// active seed; exporting it as ALPHA_TEST_SEED reruns the exact same random
// schedule bit for bit:
//
//   ALPHA_TEST_SEED=12345 ./build/tests/core_test --gtest_filter=Chaos*
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>

namespace alpha::testing {

/// Seed for a randomized test: ALPHA_TEST_SEED from the environment if set
/// (replay mode), otherwise `fallback` (the test's pinned default).
inline std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("ALPHA_TEST_SEED");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return parsed;
  }
  return fallback;
}

/// Prints the active seed when the surrounding test fails, so the exact run
/// can be replayed with ALPHA_TEST_SEED=<seed>.
class SeedReporter {
 public:
  explicit SeedReporter(std::uint64_t seed) : seed_(seed) {}
  SeedReporter(const SeedReporter&) = delete;
  SeedReporter& operator=(const SeedReporter&) = delete;
  ~SeedReporter() {
    if (::testing::Test::HasFailure()) {
      std::cerr << "[seed-replay] failing seed: " << seed_
                << " (rerun with ALPHA_TEST_SEED=" << seed_ << ")\n";
    }
  }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace alpha::testing
